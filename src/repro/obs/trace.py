"""Hierarchical tracing spans with JSON-lines and ASCII-tree export.

Usage::

    from repro.obs import span, start_tracing, stop_tracing

    tracer = start_tracing()
    with span("search.run", query="dna repair") as sp:
        with span("search.select"):
            ...
        sp.set(hits=12)
    stop_tracing()
    tracer.write_jsonl("trace.jsonl")
    print(tracer.format_tree())

``span(...)`` also works as a decorator::

    @span("eval.precision.run")
    def run(...): ...

When no tracer is active (the default), ``span`` yields a shared no-op
span whose ``set`` does nothing, so instrumented code pays only an
attribute check -- the "observability disabled" fast path.

Span names follow the same dotted convention as metric names
(``stage.component`` or ``stage.component.detail``); wall time is taken
from the monotonic clock (``time.perf_counter``).
"""

from __future__ import annotations

import functools
import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One timed, attributed node of the span tree."""

    __slots__ = ("name", "attrs", "children", "_started", "_duration")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.children: List["Span"] = []
        self._started = time.perf_counter()
        self._duration: Optional[float] = None

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the span."""
        self.attrs.update(attrs)

    def finish(self) -> None:
        if self._duration is None:
            self._duration = time.perf_counter() - self._started

    @property
    def duration(self) -> float:
        """Seconds from start to finish (up to now if still open)."""
        if self._duration is None:
            return time.perf_counter() - self._started
        return self._duration

    # -- (de)serialisation -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "duration_ms": round(self.duration * 1000.0, 3),
            "attrs": self.attrs,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        node = cls(data["name"], data.get("attrs") or {})
        node._duration = float(data.get("duration_ms", 0.0)) / 1000.0
        node.children = [cls.from_dict(c) for c in data.get("children", ())]
        return node


class _NullSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects span trees; one stack per thread, shared root list."""

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def begin(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> Span:
        node = Span(name, attrs)
        stack = self._stack()
        if stack:
            stack[-1].children.append(node)
        else:
            with self._lock:
                self.roots.append(node)
        stack.append(node)
        return node

    def end(self, node: Span) -> None:
        node.finish()
        stack = self._stack()
        # Pop back to the node even if an inner span leaked (robustness
        # against instrumented code that returns mid-span).
        while stack:
            top = stack.pop()
            if top is node:
                break
            top.finish()

    # -- cross-thread parenting ------------------------------------------------------

    def adopt(self, parent: Span) -> None:
        """Push ``parent`` onto *this thread's* stack without timing it.

        The explicit-parent handle for work fanned out to other threads:
        a worker adopts the submitting thread's span so its own spans
        become children instead of orphan roots.  Balance with
        :meth:`release`; :func:`attach_span` wraps the pair.
        """
        self._stack().append(parent)

    def release(self, parent: Span) -> None:
        """Undo :meth:`adopt` (the parent is *not* finished)."""
        stack = self._stack()
        if stack and stack[-1] is parent:
            stack.pop()

    def discard_root(self, node: Span) -> None:
        """Forget one captured root (bounds memory for long-lived tracers).

        Request-scoped telemetry captures a root span per query and keeps
        the slow ones in its own bounded log; discarding the root here
        keeps an always-on tracer from growing without bound.  No-op when
        ``node`` is not a root (e.g. the request ran under an outer span).
        """
        with self._lock:
            for index in range(len(self.roots) - 1, -1, -1):
                if self.roots[index] is node:
                    del self.roots[index]
                    return

    # -- export --------------------------------------------------------------------

    def to_dicts(self) -> List[Dict[str, Any]]:
        with self._lock:
            roots = list(self.roots)
        return [root.to_dict() for root in roots]

    def write_jsonl(self, path) -> None:
        """One JSON object per *root* span (children nested) per line."""
        with open(path, "w", encoding="utf-8") as handle:
            for root in self.to_dicts():
                handle.write(json.dumps(root, sort_keys=True) + "\n")

    def format_tree(self) -> str:
        from repro.obs.report import render_trace

        return render_trace(self.to_dicts())


def read_trace_jsonl(path) -> List[Dict[str, Any]]:
    """Parse a trace dump written by :meth:`Tracer.write_jsonl`."""
    roots: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                roots.append(json.loads(line))
    return roots


_active_tracer: Optional[Tracer] = None


def start_tracing() -> Tracer:
    """Install (and return) a fresh process-wide tracer."""
    global _active_tracer
    _active_tracer = Tracer()
    return _active_tracer


def stop_tracing() -> Optional[Tracer]:
    """Deactivate tracing; returns the tracer that was active (if any)."""
    global _active_tracer
    tracer, _active_tracer = _active_tracer, None
    return tracer


def current_tracer() -> Optional[Tracer]:
    return _active_tracer


def current_span() -> Optional[Span]:
    """The innermost open span on *this thread* (None when untraced).

    Capture it in the submitting thread and hand it to pool workers via
    :func:`attach_span` so spans opened on worker threads are parented
    under the batch's span instead of becoming orphan roots.
    """
    tracer = _active_tracer
    if tracer is None:
        return None
    stack = tracer._stack()
    return stack[-1] if stack else None


@contextmanager
def attach_span(parent: Optional[Span]) -> Iterator[None]:
    """Parent this thread's spans under ``parent`` for the duration.

    The worker-side half of cross-thread span propagation::

        parent = current_span()              # submitting thread
        def task(item):
            with attach_span(parent):        # worker thread
                return work(item)            # spans nest under parent

    No-op when ``parent`` is None or tracing is inactive, so untraced
    fan-out pays only one attribute check per task.  Appending children
    to a shared parent from several workers is safe: ``list.append`` is
    atomic under the GIL and each worker keeps its own span stack.
    """
    tracer = _active_tracer
    if tracer is None or parent is None:
        yield
        return
    tracer.adopt(parent)
    try:
        yield
    finally:
        tracer.release(parent)


class _SpanHandle:
    """Context manager *and* decorator for one named span."""

    __slots__ = ("name", "attrs", "_node", "_tracer")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self._node: Optional[Span] = None
        self._tracer: Optional[Tracer] = None

    def __enter__(self):
        tracer = _active_tracer
        if tracer is None:
            return NULL_SPAN
        self._tracer = tracer
        self._node = tracer.begin(self.name, self.attrs)
        return self._node

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._node is not None:
            if exc is not None:
                self._node.set(error=f"{exc_type.__name__}: {exc}")
            assert self._tracer is not None
            self._tracer.end(self._node)
            self._node = None
            self._tracer = None
        return False

    def __call__(self, func):
        name, attrs = self.name, self.attrs

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with _SpanHandle(name, attrs):
                return func(*args, **kwargs)

        return wrapper


def span(name: str, **attrs: Any) -> _SpanHandle:
    """Open a named span (context manager) or wrap a function (decorator).

    Attributes passed here are captured at span start; more can be added
    through ``Span.set`` on the yielded span object.
    """
    return _SpanHandle(name, attrs)
