"""Related-work comparator -- the GoPubMed-style categoriser (section 6).

The paper positions GoPubMed as the only other context-hierarchy search
system and names two weaknesses: categorisation relies on GO term words
appearing in *abstracts* (only ~78% of PubMed abstracts contain any), and
results carry no ranking or importance scores.

This bench measures, on the synthetic corpus with known ground truth:

- **coverage** -- the fraction of papers GoPubMed can classify at all
  (the 78% phenomenon);
- **classification consistency** -- among classified papers, how often a
  GoPubMed category is hierarchically consistent with the paper's true
  generating context, compared against the pattern-based context
  assignment on the same criterion.
"""

from conftest import write_result

from repro.baselines.gopubmed import GoPubMedClassifier


def _consistent(ontology, assigned_terms, true_terms):
    """Some assigned term equals / is an ancestor of a true context."""
    for assigned in assigned_terms:
        for true_term in true_terms:
            if assigned == true_term or ontology.is_ancestor(assigned, true_term):
                return True
    return False


def test_baseline_gopubmed(benchmark, pipeline, dataset, results_dir):
    classifier = GoPubMedClassifier(
        pipeline.corpus, pipeline.ontology, pipeline.keyword_engine
    )

    def run():
        sample = [paper.paper_id for paper in pipeline.corpus][:400]
        classified = 0
        consistent = 0
        for paper_id in sample:
            terms = classifier.classify_paper(paper_id)
            if not terms:
                continue
            classified += 1
            true_terms = dataset.corpus.paper(paper_id).true_context_ids
            if _consistent(pipeline.ontology, terms, true_terms):
                consistent += 1
        # Context-based comparison: pattern paper-set membership on the
        # same sample and criterion.
        pattern_set = pipeline.pattern_paper_set
        member_consistent = 0
        member_classified = 0
        for paper_id in sample:
            contexts = pattern_set.contexts_of_paper(paper_id)
            if not contexts:
                continue
            member_classified += 1
            true_terms = dataset.corpus.paper(paper_id).true_context_ids
            if _consistent(pipeline.ontology, contexts, true_terms):
                member_consistent += 1
        return sample, classified, consistent, member_classified, member_consistent

    sample, classified, consistent, member_classified, member_consistent = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )

    coverage = classified / len(sample)
    gopubmed_rate = consistent / classified if classified else float("nan")
    context_coverage = member_classified / len(sample)
    context_rate = (
        member_consistent / member_classified if member_classified else float("nan")
    )
    lines = [
        f"papers sampled:                       {len(sample)}",
        f"GoPubMed coverage (classifiable):     {coverage:.1%}  "
        "(PubMed-scale figure in the paper: 78%)",
        f"GoPubMed classification consistency:  {gopubmed_rate:.1%}",
        f"context-assignment coverage:          {context_coverage:.1%}",
        f"context-assignment consistency:       {context_rate:.1%}",
    ]
    write_result(results_dir, "baseline_gopubmed", "\n".join(lines))

    # GoPubMed must miss a nontrivial share of papers (its blind spot)...
    assert coverage < 1.0
    # ...while the context assignment covers at least as many.
    assert context_coverage >= coverage - 0.05
