"""A GoPubMed-style categoriser (paper section 6, reference [22]).

GoPubMed "queries are submitted to PubMed, and the corresponding PubMed
paper *abstracts* are retrieved and categorized by GO terms.  However,
categorization fully relies on the existence of GO term words in the
abstracts ... GoPubMed does not rank results or provide importance
scores."

This module implements that behaviour faithfully so the context-based
system has its related-work comparator:

- retrieval is the keyword engine's unranked boolean search;
- a result paper lands under ontology term T iff T's (analysed) name
  phrase occurs contiguously in the paper's **abstract** (title optional);
- output is a term -> papers categorisation with **no scores**.

The known weakness the paper calls out -- only ~78% of abstracts contain
any GO term words -- is measurable here via :meth:`coverage`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.patterns import find_occurrences
from repro.corpus.corpus import Corpus
from repro.corpus.paper import Section
from repro.index.search import KeywordSearchEngine
from repro.ontology.ontology import Ontology
from repro.text.analyze import Analyzer, default_analyzer


class GoPubMedClassifier:
    """Categorise search results by term-name occurrence in abstracts."""

    def __init__(
        self,
        corpus: Corpus,
        ontology: Ontology,
        keyword_engine: KeywordSearchEngine,
        analyzer: Optional[Analyzer] = None,
        include_title: bool = False,
    ) -> None:
        self.corpus = corpus
        self.ontology = ontology
        self.keyword_engine = keyword_engine
        self.analyzer = analyzer if analyzer is not None else default_analyzer()
        self.include_title = include_title
        self._term_phrases: Optional[List[Tuple[str, Tuple[str, ...]]]] = None
        self._abstract_tokens: Dict[str, Tuple[str, ...]] = {}

    # -- classification ---------------------------------------------------------------

    def classify_paper(self, paper_id: str) -> List[str]:
        """Ontology terms whose name phrase occurs in the paper's abstract."""
        tokens = self._tokens(paper_id)
        if not tokens:
            return []
        matched = []
        for term_id, phrase in self._phrases():
            if find_occurrences(tokens, phrase):
                matched.append(term_id)
        return matched

    def search(self, query: str) -> Dict[str, List[str]]:
        """GoPubMed's pipeline: keyword search, then categorise the results.

        Returns ``term_id -> [paper ids]`` (unscored, unranked).  Papers
        matching no term land under the pseudo-category ``"(unclassified)"``
        -- GoPubMed's blind spot.
        """
        result_ids = self.keyword_engine.search_unranked(query, self.corpus)
        categories: Dict[str, List[str]] = {}
        for paper_id in result_ids:
            terms = self.classify_paper(paper_id)
            if not terms:
                categories.setdefault("(unclassified)", []).append(paper_id)
                continue
            for term_id in terms:
                categories.setdefault(term_id, []).append(paper_id)
        return categories

    # -- diagnostics --------------------------------------------------------------------

    def coverage(self) -> float:
        """Fraction of corpus papers classifiable at all.

        The paper measures this weakness on real data: "only 78% of the
        14 million PubMed abstracts contain words occurring in a GO term".
        """
        if len(self.corpus) == 0:
            return 0.0
        classified = sum(
            1 for paper in self.corpus if self.classify_paper(paper.paper_id)
        )
        return classified / len(self.corpus)

    # -- internals -------------------------------------------------------------------------

    def _phrases(self) -> List[Tuple[str, Tuple[str, ...]]]:
        if self._term_phrases is None:
            phrases = []
            for term_id in self.ontology.term_ids():
                analysed = tuple(
                    self.analyzer.analyze(self.ontology.term(term_id).name)
                )
                if analysed:
                    phrases.append((term_id, analysed))
            self._term_phrases = phrases
        return self._term_phrases

    def _tokens(self, paper_id: str) -> Tuple[str, ...]:
        cached = self._abstract_tokens.get(paper_id)
        if cached is None:
            paper = self.corpus.paper(paper_id)
            text = paper.section_text(Section.ABSTRACT)
            if self.include_title:
                text = f"{paper.title} {text}"
            cached = tuple(self.analyzer.analyze(text))
            self._abstract_tokens[paper_id] = cached
        return cached
