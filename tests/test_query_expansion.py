"""Unit tests for query expansion."""

import pytest

from repro.core.query_expansion import ContextQueryExpander, PseudoRelevanceExpander
from repro.core.vectors import PaperVectorStore
from repro.index.inverted import InvertedIndex
from repro.index.search import KeywordSearchEngine


@pytest.fixture(scope="module")
def setup(request):
    corpus = request.getfixturevalue("tiny_corpus")
    index = InvertedIndex().index_corpus(corpus)
    return {
        "vectors": PaperVectorStore(corpus, index.analyzer),
        "keyword": KeywordSearchEngine(index),
    }


class TestContextQueryExpander:
    def test_adds_context_vocabulary(self, setup):
        expander = ContextQueryExpander(
            setup["vectors"], {"met": "M1"}, max_added_terms=2
        )
        expanded = expander.expand("glucose", ["met"])
        assert expanded.startswith("glucose ")
        added = expanded.split()[1:]
        assert 1 <= len(added) <= 2
        # Added terms come from M1's vocabulary, analysed form.
        m1_terms = set(
            setup["vectors"].analyzer.analyze(
                "glucose metabolic process flux yeast glycolysis pathway "
                "measured rates cells stress metabolism"
            )
        )
        assert set(added) <= m1_terms

    def test_no_duplicate_query_terms(self, setup):
        expander = ContextQueryExpander(
            setup["vectors"], {"met": "M1"}, max_added_terms=5
        )
        expanded = expander.expand("glucose glycolysis", ["met"])
        terms = setup["vectors"].analyzer.analyze(expanded)
        assert len(terms) == len(set(terms))

    def test_unknown_context_unchanged(self, setup):
        expander = ContextQueryExpander(setup["vectors"], {"met": "M1"})
        assert expander.expand("glucose", ["nope"]) == "glucose"

    def test_zero_budget_unchanged(self, setup):
        expander = ContextQueryExpander(
            setup["vectors"], {"met": "M1"}, max_added_terms=0
        )
        assert expander.expand("glucose", ["met"]) == "glucose"

    def test_validation(self, setup):
        with pytest.raises(ValueError):
            ContextQueryExpander(setup["vectors"], {}, max_added_terms=-1)

    def test_multiple_contexts_use_centroid(self, setup):
        expander = ContextQueryExpander(
            setup["vectors"], {"met": "M1", "sig": "S1"}, max_added_terms=3
        )
        expanded = expander.expand("process", ["met", "sig"])
        assert expanded != "process"


class TestPseudoRelevanceExpander:
    def test_adds_feedback_terms(self, setup):
        expander = PseudoRelevanceExpander(
            setup["keyword"], setup["vectors"], feedback_depth=3, max_added_terms=2
        )
        expanded = expander.expand("glucose")
        assert expanded.startswith("glucose")
        assert len(expanded.split()) > 1

    def test_no_results_unchanged(self, setup):
        expander = PseudoRelevanceExpander(setup["keyword"], setup["vectors"])
        assert expander.expand("zebra quagga") == "zebra quagga"

    def test_zero_budget_unchanged(self, setup):
        expander = PseudoRelevanceExpander(
            setup["keyword"], setup["vectors"], max_added_terms=0
        )
        assert expander.expand("glucose") == "glucose"

    def test_validation(self, setup):
        with pytest.raises(ValueError):
            PseudoRelevanceExpander(setup["keyword"], setup["vectors"], feedback_depth=0)
        with pytest.raises(ValueError):
            PseudoRelevanceExpander(
                setup["keyword"], setup["vectors"], max_added_terms=-2
            )

    def test_expansion_improves_recall_on_tiny_corpus(self, setup):
        """Expanded query reaches papers the bare term misses."""
        bare_hits = {h.paper_id for h in setup["keyword"].search("glycolysis")}
        expander = PseudoRelevanceExpander(
            setup["keyword"], setup["vectors"], max_added_terms=3
        )
        expanded = expander.expand("glycolysis")
        expanded_hits = {h.paper_id for h in setup["keyword"].search(expanded)}
        assert bare_hits <= expanded_hits
