#!/usr/bin/env python
"""Explore the ontology substrate: hierarchy, information content, OBO IO.

Demonstrates the pieces of :mod:`repro.ontology` a user needs to bring
their own Gene Ontology: levels, descendants, information content
I(C) = log(1/p(C)), RateOfDecay, and the OBO round trip (a real
``go-basic.obo`` loads through the same ``read_obo`` call).

Run:  python examples/ontology_explorer.py
"""

import io

from repro.datagen import OntologyGenerator
from repro.ontology import read_obo, write_obo


def main() -> None:
    ontology = OntologyGenerator(n_terms=60, max_depth=5).generate(seed=3)
    print(f"Generated {ontology!r}\n")

    root = ontology.roots[0]
    print("Hierarchy walk (first 12 terms, breadth-first):")
    for term_id in list(ontology.walk_breadth_first())[:12]:
        term = ontology.term(term_id)
        indent = "  " * (ontology.level(term_id) - 1)
        print(
            f"  {indent}{term.term_id}  level={ontology.level(term_id)}  "
            f"IC={ontology.information_content(term_id):.2f}  {term.name}"
        )

    # Information content grows with depth: roots say nothing, leaves a lot.
    print("\nMean information content per level:")
    for level in range(1, ontology.max_level + 1):
        terms = ontology.terms_at_level(level)
        mean_ic = sum(ontology.information_content(t) for t in terms) / len(terms)
        print(f"  level {level}: {mean_ic:.2f}  ({len(terms)} terms)")

    # RateOfDecay: what a context loses by inheriting its ancestor's papers.
    leaf = ontology.terms_at_level(ontology.max_level)[0]
    chain = sorted(
        ontology.ancestors(leaf), key=ontology.level, reverse=True
    )
    print(f"\nRateOfDecay toward {ontology.term(leaf).name!r}:")
    for ancestor in chain[:3]:
        decay = ontology.rate_of_decay(ancestor, leaf)
        print(f"  from {ontology.term(ancestor).name!r}: {decay:.3f}")

    # OBO round trip -- the path for loading the real Gene Ontology.
    buffer = io.StringIO()
    write_obo(ontology, buffer)
    buffer.seek(0)
    reloaded = read_obo(buffer)
    assert len(reloaded) == len(ontology)
    print(f"\nOBO round trip OK: {len(reloaded)} terms reloaded")
    print("(point read_obo at a go-basic.obo file to use the real GO)")


if __name__ == "__main__":
    main()
