"""Text-processing substrate: tokenisation, stemming, TF-IDF, similarity.

Everything the paper's scoring functions need from classic IR:

- :mod:`repro.text.tokenize` -- word/sentence tokenisation and n-grams.
- :mod:`repro.text.stopwords` -- English stopword list used throughout.
- :mod:`repro.text.stem` -- a full Porter stemmer implementation.
- :mod:`repro.text.analyze` -- the composed analysis pipeline
  (tokenise -> lowercase -> stopword filter -> stem).
- :mod:`repro.text.vocabulary` -- term <-> id mapping with document
  frequencies.
- :mod:`repro.text.vectorize` -- sparse vectors and the TF-IDF model of
  Salton's *Automatic Text Processing* (paper reference [6]).
- :mod:`repro.text.similarity` -- cosine, Jaccard, Dice, overlap.
- :mod:`repro.text.phrases` -- apriori-style frequent phrase mining
  (paper reference [5]) used by pattern construction.
"""

from repro.text.analyze import Analyzer, default_analyzer
from repro.text.phrases import FrequentPhraseMiner, Phrase
from repro.text.similarity import (
    cosine_similarity,
    dice_coefficient,
    jaccard_similarity,
    overlap_coefficient,
)
from repro.text.stem import PorterStemmer, stem
from repro.text.stopwords import STOPWORDS, is_stopword
from repro.text.tokenize import ngrams, sentences, tokenize
from repro.text.vectorize import SparseVector, TfidfModel
from repro.text.vocabulary import Vocabulary

__all__ = [
    "Analyzer",
    "default_analyzer",
    "FrequentPhraseMiner",
    "Phrase",
    "cosine_similarity",
    "jaccard_similarity",
    "dice_coefficient",
    "overlap_coefficient",
    "PorterStemmer",
    "stem",
    "STOPWORDS",
    "is_stopword",
    "tokenize",
    "sentences",
    "ngrams",
    "SparseVector",
    "TfidfModel",
    "Vocabulary",
]
