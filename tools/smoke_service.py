#!/usr/bin/env python3
"""CI smoke for the HTTP search service: start, scrape, search, stop.

Boots a :class:`~repro.serving.service.SearchService` over a small
generated corpus on an ephemeral port, then exercises the full surface
once over real HTTP:

1. ``GET /health``        -- must answer ``{"status": "ok", ...}``;
2. ``GET /ready``         -- readiness probe must report the view;
3. ``GET /metrics``       -- must expose the serving gauges;
4. ``GET /search``        -- body hits must match the same
   ``Pipeline.search`` call serialized with the same helpers
   (the byte-identical acceptance property, end to end);
5. ``GET /search`` (bad)  -- an unknown score function must be a 400;
6. ``GET /analytics``     -- must report the live zero-result rate and
   shadow rank agreement for the non-primary ``citation`` function
   (the service runs with ``shadow_functions=["citation"]`` at a 100%
   sample rate so the scrape is deterministic);
7. ``POST /admin/reload`` -- must swap the serving view (revision
   bumps); with drift probes armed, an identical-substrate reload must
   report zero drift, an injected ranking regression must be refused
   with a 409 (the old view keeps serving), and ``?force=1`` must push
   the swap through;
8. stop, then restart on the same port -- the rebind path must not
   raise ``EADDRINUSE``.

Seconds, not minutes: this is the "does the service even serve" check
between the lints and the full test suite in ``tools/ci.sh``, not a
benchmark (that is ``benchmarks/test_perf_serving_http.py``).
"""

from __future__ import annotations

import json
import sys
import urllib.error
import urllib.parse
import urllib.request

REPO_ROOT = __import__("pathlib").Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.scores import PrestigeScores  # noqa: E402
from repro.datagen import CorpusGenerator, OntologyGenerator  # noqa: E402
from repro.obs import configure_telemetry, reset_telemetry  # noqa: E402
from repro.pipeline import Pipeline  # noqa: E402
from repro.serving.service import hit_to_dict  # noqa: E402
from repro.serving import SearchService  # noqa: E402

QUERY = "gene expression"
ZERO_HIT_QUERY = "qqqq zzzz xxxx"  # generated vocab never contains these


def _fetch(base_url: str, path: str, method: str = "GET", **params):
    """(status, parsed body) -- JSON when the endpoint speaks it, else text."""
    url = base_url + path
    if params:
        url += "?" + urllib.parse.urlencode(params)
    request = urllib.request.Request(url, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            status, raw = response.status, response.read()
    except urllib.error.HTTPError as error:
        status, raw = error.code, error.read()
    try:
        return status, json.loads(raw)
    except json.JSONDecodeError:
        return status, raw.decode("utf-8")


def _check(condition: bool, message: str) -> None:
    if not condition:
        print(f"smoke_service: FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"smoke_service: ok: {message}")


def main() -> int:
    dataset = CorpusGenerator(
        n_papers=200,
        ontology_generator=OntologyGenerator(n_terms=80, max_depth=5),
    ).generate(seed=7)
    pipeline = Pipeline.from_dataset(dataset, min_context_size=5)

    # Analytics listens to finished telemetry records, so the smoke runs
    # with telemetry on (the serve CLI does the same); 100% shadow
    # sampling makes the /analytics scrape deterministic.
    configure_telemetry(enabled=True, sample_rate=0.0, seed=7)
    service = SearchService(
        pipeline, port=0,
        shadow_functions=["citation"], shadow_sample_rate=1.0, shadow_seed=7,
    )
    service.start()
    base_url = f"http://{service.host}:{service.port}"
    try:
        status, health = _fetch(base_url, "/health")
        _check(
            status == 200 and health.get("status") == "ok",
            f"/health answers ok (view revision {health.get('view_revision')})",
        )

        status, ready = _fetch(base_url, "/ready")
        _check(
            status == 200
            and ready.get("ready") is True
            and ready.get("view_present") is True
            and isinstance(ready.get("substrate_revision"), int),
            "/ready reports a live serving view",
        )

        status, text = _fetch(base_url, "/metrics")
        _check(
            status == 200 and "serving_view" in text,
            "/metrics scrapes the serving-view gauges",
        )

        status, body = _fetch(
            base_url, "/search", q=QUERY, top_k=5, score_function="text"
        )
        expected = [
            hit_to_dict(hit)
            for hit in pipeline.search(QUERY, function="text", limit=5)
        ]
        _check(
            status == 200 and body["hits"] == expected,
            f"/search matches Pipeline.search ({len(expected)} hits)",
        )

        status, body = _fetch(
            base_url, "/search", q=QUERY, score_function="no-such-function"
        )
        _check(
            status == 400 and "score_function" in body.get("error", ""),
            "bad score_function is a 400",
        )

        status, body = _fetch(base_url, "/search", q=ZERO_HIT_QUERY)
        _check(
            status == 200 and body["hits"] == [],
            "nonsense query returns zero hits",
        )

        service.shadow.drain(timeout_s=30.0)
        status, analytics = _fetch(base_url, "/analytics")
        window = analytics.get("analytics", {})
        agreement = (analytics.get("shadow") or {}).get("agreement", {})
        citation = agreement.get("citation", {})
        _check(
            status == 200
            and window.get("zero_result_rate") is not None
            and window.get("zero_results", 0) >= 1
            and citation.get("samples", 0) >= 1
            and citation.get("mean_jaccard") is not None,
            "/analytics reports zero-result rate "
            f"({window.get('zero_result_rate')}) and citation shadow "
            f"agreement over {citation.get('samples')} samples",
        )

        view_before = pipeline.serving_view
        status, body = _fetch(base_url, "/admin/reload", method="POST")
        _check(
            status == 200
            and body.get("status") == "reloaded"
            and pipeline.serving_view is not view_before,
            f"/admin/reload swaps the view (revision {body.get('view_revision')})",
        )

        # -- drift-gated reload, end to end ------------------------------------------
        pipeline.configure_drift(
            [QUERY, "dna repair"], functions=["text"], max_drift=0.2
        )
        status, body = _fetch(base_url, "/admin/reload", method="POST")
        _check(
            status == 200
            and body.get("drift", {}).get("max_churn") == 0.0,
            "identical-substrate reload reports zero drift",
        )

        # Invert the text prestige ordering: the current top-5 for the
        # probe query collapse to ~0 while everything else jumps ahead.
        store = pipeline._store
        engine = pipeline.serving_view.engine("text", "text", "probe")
        top_ids = {h.paper_id for h in engine.search(QUERY, limit=5)}
        old_scores = store.scores["text/text"]
        perturbed = {
            ctx: {
                pid: (0.001 if pid in top_ids else value + 10.0)
                for pid, value in old_scores.of(ctx).items()
            }
            for ctx in old_scores.context_ids()
        }
        store.install_scores("text/text", PrestigeScores("text", perturbed))

        view_before = pipeline.serving_view
        status, body = _fetch(base_url, "/admin/reload", method="POST")
        _check(
            status == 409
            and body.get("status") == "refused"
            and body.get("drift", {}).get("max_churn", 0.0) > 0.2
            and pipeline.serving_view is view_before,
            "regressed reload is refused with a 409 "
            f"(drift {body.get('drift', {}).get('max_churn')}); "
            "old view keeps serving",
        )

        status, body = _fetch(
            base_url, "/admin/reload", method="POST", force=1
        )
        _check(
            status == 200
            and body.get("status") == "reloaded"
            and pipeline.serving_view is not view_before,
            "forced reload pushes the regressed view through",
        )
    finally:
        service.stop()
        reset_telemetry()
        port = service.port

    # Rebind on the port just released must not raise EADDRINUSE.
    service = SearchService(pipeline, port=port)
    service.start()
    try:
        status, _ = _fetch(base_url, "/health")
        _check(status == 200, f"restart rebinds port {port}")
    finally:
        service.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
