"""Unit tests for synthetic ontology generation."""

import pytest

from repro.datagen.ontology_gen import OntologyGenerator


class TestOntologyGenerator:
    def test_term_count(self):
        onto = OntologyGenerator(n_terms=100).generate(seed=1)
        assert len(onto) == 100

    def test_single_root(self):
        onto = OntologyGenerator(n_terms=80).generate(seed=1)
        assert onto.roots == ["T:000000"]
        assert onto.term("T:000000").name == "biological process"

    def test_max_depth_respected(self):
        onto = OntologyGenerator(n_terms=300, max_depth=5).generate(seed=2)
        assert onto.max_level <= 5

    def test_deterministic(self):
        gen = OntologyGenerator(n_terms=120)
        a = gen.generate(seed=9)
        b = gen.generate(seed=9)
        assert a.term_ids() == b.term_ids()
        assert [a.term(t).name for t in a.term_ids()] == [
            b.term(t).name for t in b.term_ids()
        ]

    def test_seeds_differ(self):
        gen = OntologyGenerator(n_terms=120)
        names_a = {gen.generate(seed=1).term(t).name for t in gen.generate(seed=1).term_ids()}
        names_b = {gen.generate(seed=2).term(t).name for t in gen.generate(seed=2).term_ids()}
        assert names_a != names_b

    def test_child_names_extend_parent_names(self):
        onto = OntologyGenerator(n_terms=60).generate(seed=3)
        for term in onto:
            for parent_id in term.parent_ids[:1]:  # primary parent only
                parent_name = onto.term(parent_id).name
                assert term.name.endswith(parent_name)
                assert len(term.name) > len(parent_name)

    def test_sibling_names_distinct(self):
        onto = OntologyGenerator(n_terms=150).generate(seed=4)
        for term_id in onto.term_ids():
            child_names = [onto.term(c).name for c in onto.children(term_id)]
            assert len(child_names) == len(set(child_names))

    def test_deeper_terms_have_longer_names(self):
        onto = OntologyGenerator(n_terms=200, max_depth=6).generate(seed=5)
        by_level = {}
        for term_id in onto.term_ids():
            level = onto.level(term_id)
            by_level.setdefault(level, []).append(len(onto.term(term_id).name_words()))
        means = {lv: sum(v) / len(v) for lv, v in by_level.items()}
        levels = sorted(means)
        assert means[levels[0]] < means[levels[-1]]

    def test_some_terms_have_two_parents(self):
        onto = OntologyGenerator(
            n_terms=400, second_parent_probability=0.25
        ).generate(seed=6)
        multi = [t for t in onto if len(t.parent_ids) >= 2]
        assert multi, "expected at least one DAG diamond"

    def test_validation(self):
        with pytest.raises(ValueError):
            OntologyGenerator(n_terms=0).generate()
        with pytest.raises(ValueError):
            OntologyGenerator(max_depth=0).generate()

    def test_levels_populated_up_to_depth(self):
        onto = OntologyGenerator(n_terms=300, max_depth=7).generate(seed=7)
        # Growth is breadth-first-ish: at least levels 1..4 must exist.
        for level in (1, 2, 3, 4):
            assert onto.terms_at_level(level), f"no terms at level {level}"
