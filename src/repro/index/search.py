"""The keyword search engine (PubMed-style baseline).

Two retrieval modes, matching the two roles the baseline plays in the
paper:

- :meth:`KeywordSearchEngine.search` -- ranked retrieval (TF-IDF by
  default, BM25 optionally) with section weighting and optional score
  threshold.  Scores are normalised to [0, 1] by the maximum achievable
  self-score of the query, so the "high threshold" seed step of
  AC-answer-set construction has an absolute scale to cut against.
- :meth:`KeywordSearchEngine.search_unranked` -- the PubMed behaviour the
  introduction criticises: every paper containing all query terms, listed
  in descending year/id order with *no* relevance score.

Quoted segments (``'"gene expression" yeast'``) are exact-phrase filters
when the engine runs over a :class:`~repro.index.positional.PositionalIndex`.

The serving fast path is :meth:`KeywordSearchEngine.evaluate`: one
postings scan produces a :class:`QueryEvaluation` holding every paper's
normalised match score, which ranked retrieval, per-paper match scoring,
context selection, and explain all share.  A single context-based search
therefore touches each posting list exactly once.
"""

from __future__ import annotations

import heapq
import math
import re
import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.corpus.corpus import Corpus
from repro.corpus.paper import Section
from repro.index.backends.base import SearchBackend
from repro.obs import get_registry

_PHRASE_RE = re.compile(r'"([^"]*)"')

#: Default per-section match weights: a title hit is worth more than a body
#: hit, mirroring standard digital-library ranking practice.
DEFAULT_SECTION_WEIGHTS: Mapping[Section, float] = {
    Section.TITLE: 3.0,
    Section.ABSTRACT: 2.0,
    Section.INDEX_TERMS: 2.0,
    Section.BODY: 1.0,
}


@dataclass(frozen=True)
class KeywordHit:
    """One ranked search result."""

    paper_id: str
    score: float
    matched_terms: int


@dataclass(frozen=True)
class QueryEvaluation:
    """Everything one postings scan learns about a query.

    Produced by :meth:`KeywordSearchEngine.evaluate`; shared by ranked
    retrieval (:meth:`KeywordSearchEngine.search`), per-paper match
    scoring (:meth:`KeywordSearchEngine.match_score`), and the context
    search engine's selection/scoring/explain stages, so a single search
    request never rescans the index.

    ``scores`` are normalised to [0, 1] by the query's maximum achievable
    self-score and already respect any quoted-phrase filter.
    """

    query: str
    #: Distinct analysed scoring terms, in query order.
    terms: Tuple[str, ...]
    #: Analysed quoted phrases (each a term tuple); applied as filters.
    phrases: Tuple[Tuple[str, ...], ...]
    #: Normalised match score per paper (papers cut by a phrase filter
    #: or scoring 0 are absent).
    scores: Mapping[str, float]
    #: Distinct query terms matched per paper (same key set as scores).
    matched_terms: Mapping[str, int]
    #: The normalisation bound (0.0 when no term is in the vocabulary).
    max_score: float
    #: Postings touched by the scan (observability).
    postings_scanned: int

    def score(self, paper_id: str) -> float:
        """Normalised match score of one paper (0.0 when not matched)."""
        return self.scores.get(paper_id, 0.0)

    def hits(
        self,
        limit: Optional[int] = None,
        threshold: float = 0.0,
        require_all_terms: bool = False,
    ) -> List[KeywordHit]:
        """Materialise ranked :class:`KeywordHit` rows from the scan."""
        n_terms = len(self.terms)
        hits = [
            KeywordHit(
                paper_id=paper_id,
                score=score,
                matched_terms=self.matched_terms[paper_id],
            )
            for paper_id, score in self.scores.items()
            if score >= threshold
            and (not require_all_terms or self.matched_terms[paper_id] >= n_terms)
        ]
        if limit is not None and limit < len(hits):
            # Partial selection beats sorting every match when only the
            # head of the ranking is wanted (probe selection, top-k UIs).
            return heapq.nsmallest(
                limit, hits, key=lambda hit: (-hit.score, hit.paper_id)
            )
        hits.sort(key=lambda hit: (-hit.score, hit.paper_id))
        return hits

    def top_scores(self, limit: int) -> List[Tuple[str, float]]:
        """The ``limit`` best ``(paper_id, score)`` pairs, best first.

        Same ranking as :meth:`hits` without materialising a
        :class:`KeywordHit` per matched paper -- the cheap form consumers
        on the hot path (probe selection) want.
        """
        items = self.scores.items()
        if limit < len(self.scores):
            return heapq.nsmallest(
                limit, items, key=lambda item: (-item[1], item[0])
            )
        return sorted(items, key=lambda item: (-item[1], item[0]))


class KeywordSearchEngine:
    """Ranked keyword search over any :class:`SearchBackend`.

    Parameters
    ----------
    scoring:
        ``"tfidf"`` (sublinear tf x smoothed idf, the default used by the
        reproduction experiments) or ``"bm25"`` (Okapi BM25 with
        per-section length normalisation).
    k1, b:
        BM25 saturation and length-normalisation constants (ignored for
        TF-IDF).
    """

    def __init__(
        self,
        index: SearchBackend,
        section_weights: Optional[Mapping[Section, float]] = None,
        scoring: str = "tfidf",
        k1: float = 1.5,
        b: float = 0.75,
    ) -> None:
        if scoring not in ("tfidf", "bm25"):
            raise ValueError(f"scoring must be 'tfidf' or 'bm25', got {scoring!r}")
        if k1 <= 0 or not 0.0 <= b <= 1.0:
            raise ValueError(f"need k1 > 0 and 0 <= b <= 1, got k1={k1}, b={b}")
        self.index = index
        self.section_weights = (
            dict(section_weights)
            if section_weights is not None
            else dict(DEFAULT_SECTION_WEIGHTS)
        )
        self.scoring = scoring
        self.k1 = k1
        self.b = b
        self._section_lengths: Optional[Dict[Tuple[str, Section], int]] = None
        self._avg_section_length: Optional[Dict[Section, float]] = None
        self._lengths_revision: Optional[int] = None
        self._lengths_lock = threading.Lock()
        # Per-term contribution cache: ``weight * tf_component * idf`` is
        # query-independent, so the per-posting contributions of a term
        # (and its distinct matched papers) are computed once per index
        # revision and replayed on later queries in the same order --
        # scores stay bitwise identical to a fresh scan.
        self._contrib_cache: Dict[
            str, Optional[Tuple[List[Tuple[str, float]], List[str]]]
        ] = {}
        self._contrib_revision: Optional[int] = None
        self._contrib_lock = threading.Lock()

    # -- the single-scan evaluation ------------------------------------------------

    def evaluate(self, query: str) -> QueryEvaluation:
        """Scan the postings of every query term exactly once.

        The returned :class:`QueryEvaluation` answers every downstream
        question about the query -- ranked hits, per-paper match scores,
        probe selection -- without touching the index again.
        """
        distinct_terms, phrases = self._parse_query(query)
        lengths = averages = None
        if self.scoring == "bm25" and distinct_terms:
            # Fetch the section-length state once per query, not once per
            # posting; the cache-hit counter therefore counts queries.
            lengths, averages, was_cached = self._lengths_state()
            if was_cached:
                get_registry().counter("index.keyword.lengths_cache_hits").inc()
        scores: Dict[str, float] = {}
        matches: Dict[str, int] = {}
        postings_scanned = 0
        for term in distinct_terms:
            entry = self._term_contributions(term, lengths, averages)
            if entry is None:
                continue
            contributions, matched_papers = entry
            postings_scanned += len(contributions)
            for paper_id, contribution in contributions:
                scores[paper_id] = scores.get(paper_id, 0.0) + contribution
            for paper_id in matched_papers:
                matches[paper_id] = matches.get(paper_id, 0) + 1
        if distinct_terms:
            registry = get_registry()
            registry.counter("index.keyword.queries").inc()
            registry.counter("index.keyword.postings_scanned").inc(postings_scanned)

        allowed = self._phrase_filter(phrases)
        max_score = self._max_possible_score(distinct_terms)
        normalised: Dict[str, float] = {}
        matched: Dict[str, int] = {}
        for paper_id, raw in scores.items():
            if allowed is not None and paper_id not in allowed:
                continue
            value = min(raw / max_score, 1.0) if max_score > 0 else 0.0
            if value <= 0.0:
                continue
            normalised[paper_id] = value
            matched[paper_id] = matches[paper_id]
        return QueryEvaluation(
            query=query,
            terms=tuple(distinct_terms),
            phrases=tuple(tuple(p) for p in phrases),
            scores=normalised,
            matched_terms=matched,
            max_score=max_score,
            postings_scanned=postings_scanned,
        )

    # -- ranked retrieval ----------------------------------------------------------

    def search(
        self,
        query: str,
        limit: Optional[int] = None,
        threshold: float = 0.0,
        require_all_terms: bool = False,
    ) -> List[KeywordHit]:
        """Ranked TF-IDF retrieval.

        Parameters
        ----------
        query:
            Free-text query; analysed with the index's analyzer.
        limit:
            Return at most this many hits (None = all).
        threshold:
            Drop hits scoring below this value (scores are in [0, 1]).
        require_all_terms:
            If True, keep only papers matching *every* distinct query term
            (boolean AND semantics, like PubMed).
        """
        evaluation = self.evaluate(query)
        if not evaluation.terms:
            return []
        return evaluation.hits(
            limit=limit, threshold=threshold, require_all_terms=require_all_terms
        )

    def _parse_query(self, query: str) -> Tuple[List[str], List[List[str]]]:
        """Split a query into distinct scoring terms + quoted phrase filters."""
        phrases = []
        for raw_phrase in _PHRASE_RE.findall(query):
            terms = self.index.analyzer.analyze(raw_phrase)
            if terms:
                phrases.append(terms)
        unquoted = _PHRASE_RE.sub(" ", query)
        terms = self.index.analyzer.analyze(unquoted)
        for phrase in phrases:
            terms.extend(phrase)  # phrase words still contribute to scoring
        return list(dict.fromkeys(terms)), phrases

    def _phrase_filter(self, phrases: Sequence[Sequence[str]]) -> Optional[set]:
        """Papers containing every quoted phrase (None = no phrase filter)."""
        if not phrases:
            return None
        papers_containing_phrase = getattr(
            self.index, "papers_containing_phrase", None
        )
        if papers_containing_phrase is None:
            raise TypeError(
                "quoted-phrase queries need a PositionalIndex "
                "(repro.index.positional); this engine's index has no "
                "positional data"
            )
        allowed: Optional[set] = None
        for phrase in phrases:
            containing = set(papers_containing_phrase(list(phrase)))
            allowed = containing if allowed is None else allowed & containing
            if not allowed:
                break
        return allowed if allowed is not None else set()

    # -- scoring components ----------------------------------------------------------

    def _term_contributions(
        self, term, lengths=None, averages=None
    ) -> Optional[Tuple[List[Tuple[str, float]], List[str]]]:
        """Cached per-posting score contributions of one term.

        Returns ``(contributions, matched_papers)`` where
        ``contributions`` holds one ``(paper_id, weight * tf * idf)`` pair
        per posting in postings order and ``matched_papers`` the distinct
        paper ids in first-posting order; ``None`` when the term is out of
        vocabulary (idf 0).  Cached per index revision, so repeat queries
        replay the same float additions a fresh scan would perform.
        """
        revision = getattr(self.index, "revision", None)
        with self._contrib_lock:
            if self._contrib_revision != revision:
                self._contrib_cache = {}
                self._contrib_revision = revision
            cached = self._contrib_cache.get(term, False)
        if cached is not False:
            return cached
        idf = self._idf(term)
        if idf == 0.0:
            entry = None
        else:
            contributions: List[Tuple[str, float]] = []
            matched_papers: List[str] = []
            seen: set = set()
            for posting in self.index.postings(term):
                weight = self.section_weights.get(posting.section, 1.0)
                tf_component = self._tf_component(posting, lengths, averages)
                paper_id = posting.paper_id
                contributions.append(
                    (paper_id, weight * tf_component * idf)
                )
                if paper_id not in seen:
                    seen.add(paper_id)
                    matched_papers.append(paper_id)
            entry = (contributions, matched_papers)
        with self._contrib_lock:
            if self._contrib_revision == revision:
                self._contrib_cache[term] = entry
        return entry

    def _tf_component(self, posting, lengths=None, averages=None) -> float:
        """Per-posting term-frequency factor under the active scheme."""
        if self.scoring == "tfidf":
            return 1.0 + math.log(posting.term_frequency)
        # BM25 with per-section length normalisation.
        if lengths is None:
            lengths, averages, _ = self._lengths_state()
        length = lengths.get((posting.paper_id, posting.section), 0)
        average = averages.get(posting.section, 0.0)
        denominator_norm = 1.0 - self.b + (
            self.b * (length / average) if average > 0 else 0.0
        )
        tf = posting.term_frequency
        return tf * (self.k1 + 1.0) / (tf + self.k1 * denominator_norm)

    def _lengths_state(self):
        """The BM25 section-length tables plus whether they were cached.

        The cache keys on the index's mutation *revision*, not its paper
        count: replacing a paper (remove + add) keeps ``n_papers`` stable
        but must still invalidate the stored lengths.
        """
        with self._lengths_lock:
            if (
                self._section_lengths is not None
                and self._lengths_revision
                != getattr(self.index, "revision", None)
            ):
                self._section_lengths = None
                self._avg_section_length = None
            if self._section_lengths is not None:
                return self._section_lengths, self._avg_section_length, True
            lengths: Dict[Tuple[str, Section], int] = {}
            totals: Dict[Section, int] = {}
            counts: Dict[Section, int] = {}
            for term in self.index.vocabulary():
                for posting in self.index.postings(term):
                    key = (posting.paper_id, posting.section)
                    lengths[key] = lengths.get(key, 0) + posting.term_frequency
            for (_, section), length in lengths.items():
                totals[section] = totals.get(section, 0) + length
                counts[section] = counts.get(section, 0) + 1
            self._section_lengths = lengths
            self._avg_section_length = {
                section: totals[section] / counts[section] for section in totals
            }
            self._lengths_revision = getattr(self.index, "revision", None)
            return self._section_lengths, self._avg_section_length, False

    def _ensure_lengths(self):
        """Backward-compatible accessor for the BM25 length tables."""
        lengths, averages, _ = self._lengths_state()
        return lengths, averages

    def match_score(self, query: str, paper_id: str) -> float:
        """Text-matching score of one (query, paper) pair in [0, 1].

        This is the ``text_matching_score(p, q)`` component of the
        relevancy formula in section 3.  Identical by construction to the
        score :meth:`search` would give the paper (both read the same
        :class:`QueryEvaluation`), including quoted-phrase filters.
        """
        return self.evaluate(query).score(paper_id)

    # -- PubMed-style unranked retrieval --------------------------------------------

    def search_unranked(self, query: str, corpus: Corpus) -> List[str]:
        """Boolean-AND retrieval listed by descending (year, id) -- no scores.

        Reproduces the PubMed behaviour described in the introduction:
        "PubMed simply lists search results in descending order of their
        PubMed ids or publication years."  Within one year, higher
        (later-assigned) paper ids come first.
        """
        query_terms = list(dict.fromkeys(self.index.analyzer.analyze(query)))
        if not query_terms:
            return []
        candidate_sets = [set(self.index.papers_containing(t)) for t in query_terms]
        if not candidate_sets or any(not s for s in candidate_sets):
            return []
        result = set.intersection(*candidate_sets)
        return sorted(
            result,
            key=lambda pid: (corpus.paper(pid).year, pid),
            reverse=True,
        )

    # -- internals --------------------------------------------------------------------

    def _idf(self, term: str) -> float:
        df = self.index.document_frequency(term)
        if df == 0:
            return 0.0
        if self.scoring == "bm25":
            n = self.index.n_papers
            return math.log(1.0 + (n - df + 0.5) / (df + 0.5))
        return math.log((1.0 + self.index.n_papers) / (1.0 + df)) + 1.0

    def _max_possible_score(self, distinct_terms: Sequence[str]) -> float:
        """Upper bound: every term matched in every section at a saturating tf.

        Using a shared bound for all papers keeps scores comparable across
        papers and bounded by 1 without per-paper renormalisation.  For
        TF-IDF a tf of e^2 (~7 occurrences) is treated as saturation; for
        BM25 the tf component saturates at k1 + 1 by construction.
        """
        total_weight = sum(self.section_weights.values())
        saturating_tf = (self.k1 + 1.0) if self.scoring == "bm25" else 3.0
        return sum(
            total_weight * saturating_tf * self._idf(term)
            for term in distinct_terms
            if self._idf(term) > 0.0
        )
