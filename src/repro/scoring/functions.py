"""Registrations of the paper's score functions (sections 3.1-3.3).

Importing this module (which :mod:`repro.scoring` does on package
import) registers the built-in functions.  Each factory receives the
pipeline's :class:`~repro.serving.substrate.SubstrateStore` and returns
a ready :class:`~repro.core.scores.base.PrestigeScoreFunction`; the
``substrates`` tuples name the workspace artifacts the computed scores
depend on, which is exactly the fingerprint chain each persisted
``scores_<function>_<paper_set>.json`` artifact declares.

The declared ``paper_sets`` reproduce the paper's experiment arms:

- ``text`` scores on the text-based paper set (3.2 needs the
  representatives only the text set has);
- ``citation`` scores on both paper sets (3.1 is set-agnostic);
- ``pattern`` scores on the pattern-based paper set (3.3 needs the
  mined pattern sets);
- ``hits`` is the section-3.1 road-not-taken: registered so it stays
  searchable and tunable, but with no arms -- it joins no sweep and is
  not persisted, matching the paper's choice of PageRank.
"""

from __future__ import annotations

from repro.core.scores import (
    CitationPrestige,
    HitsPrestige,
    PatternPrestige,
    TextPrestige,
)
from repro.scoring.registry import ScoreFunctionSpec, register


def _citation_factory(substrates) -> CitationPrestige:
    return CitationPrestige(substrates.citation_graph)


def _hits_factory(substrates) -> HitsPrestige:
    return HitsPrestige(substrates.citation_graph)


def _text_factory(substrates) -> TextPrestige:
    return TextPrestige(
        substrates.corpus,
        substrates.vectors,
        substrates.citation_graph,
        substrates.representatives,
    )


def _pattern_factory(substrates) -> PatternPrestige:
    return PatternPrestige(
        substrates.pattern_assigner.pattern_sets,
        substrates.tokens,
        middle_only=True,
    )


register(
    ScoreFunctionSpec(
        name="text",
        factory=_text_factory,
        substrates=("vectors", "citation_graph", "representatives"),
        paper_sets=("text",),
        description="multi-facet similarity to the context representative (3.2)",
        in_overlap=True,
    )
)

register(
    ScoreFunctionSpec(
        name="citation",
        factory=_citation_factory,
        substrates=("citation_graph",),
        paper_sets=("text", "pattern"),
        description="per-context PageRank over the induced citation subgraph (3.1)",
        in_overlap=True,
        # PageRank runs on the subgraph induced by the context's own
        # paper ids: a delta that leaves a context's paper set unchanged
        # leaves its induced subgraph -- and its scores -- unchanged.
        delta_scope="contexts",
    )
)

register(
    ScoreFunctionSpec(
        name="pattern",
        factory=_pattern_factory,
        substrates=("tokens",),
        paper_sets=("pattern",),
        description="pattern-matching prestige over mined patterns (3.3)",
        in_overlap=True,
    )
)

register(
    ScoreFunctionSpec(
        name="hits",
        factory=_hits_factory,
        substrates=("citation_graph",),
        paper_sets=(),
        description="per-context HITS authority (3.1 alternative; searchable only)",
        # Like citation: HITS sees only the context-induced subgraph.
        delta_scope="contexts",
    )
)
