"""Persistence for expensive pipeline artefacts.

Context paper sets and prestige scores take minutes to build on large
corpora; these helpers serialise them to JSON so a deployment computes
them once (the paper's "query independent pre-processing steps") and
serves searches from disk thereafter.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.context import Context, ContextPaperSet
from repro.core.scores.base import PrestigeScores
from repro.ontology.ontology import Ontology

PathLike = Union[str, Path]

_PAPER_SET_FORMAT = "repro/context-paper-set/v1"
_SCORES_FORMAT = "repro/prestige-scores/v1"


def write_context_paper_set(paper_set: ContextPaperSet, path: PathLike) -> None:
    """Serialise a context paper set (ontology is *not* embedded)."""
    payload = {
        "format": _PAPER_SET_FORMAT,
        "contexts": [
            {
                "term_id": context.term_id,
                "paper_ids": list(context.paper_ids),
                "training_paper_ids": list(context.training_paper_ids),
                "inherited_from": context.inherited_from,
                "decay": context.decay,
            }
            for context in paper_set
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def read_context_paper_set(path: PathLike, ontology: Ontology) -> ContextPaperSet:
    """Load a context paper set against the ontology it was built on.

    Terms missing from ``ontology`` raise (a paper set only makes sense
    with its ontology; silently dropping contexts would skew experiments).
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != _PAPER_SET_FORMAT:
        raise ValueError(
            f"{path}: not a context paper set file "
            f"(format={payload.get('format')!r})"
        )
    contexts = [
        Context(
            term_id=raw["term_id"],
            paper_ids=tuple(raw["paper_ids"]),
            training_paper_ids=tuple(raw.get("training_paper_ids", ())),
            inherited_from=raw.get("inherited_from"),
            decay=float(raw.get("decay", 1.0)),
        )
        for raw in payload["contexts"]
    ]
    return ContextPaperSet(ontology, contexts)


def write_prestige_scores(scores: PrestigeScores, path: PathLike) -> None:
    """Serialise prestige scores (function name + per-context maps)."""
    payload = {
        "format": _SCORES_FORMAT,
        "function": scores.function_name,
        "by_context": {
            context_id: scores.of(context_id)
            for context_id in scores.context_ids()
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def read_prestige_scores(path: PathLike) -> PrestigeScores:
    """Load prestige scores written by :func:`write_prestige_scores`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != _SCORES_FORMAT:
        raise ValueError(
            f"{path}: not a prestige-scores file "
            f"(format={payload.get('format')!r})"
        )
    by_context = {
        context_id: {pid: float(v) for pid, v in scores.items()}
        for context_id, scores in payload["by_context"].items()
    }
    return PrestigeScores(payload["function"], by_context)
