"""Comparator systems from the paper's related-work section.

- :mod:`repro.baselines.gopubmed` -- the GoPubMed-style classifier
  (section 6): categorise keyword-search results by Gene Ontology terms
  whose words appear in paper *abstracts*, with no ranking or prestige.
"""

from repro.baselines.gopubmed import GoPubMedClassifier

__all__ = ["GoPubMedClassifier"]
