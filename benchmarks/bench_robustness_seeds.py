"""Robustness R1 -- do the headline findings survive re-seeding?

The figure benches run on one seed.  This bench regenerates smaller
corpora at three different seeds and checks the two headline *signs* on
each:

- text precision > citation precision at t = 0.3 (figure 5.1's ordering);
- citation separability worse than text separability (figure 5.4's
  ordering).

A reproduction whose findings flip with the seed would be noise, not
signal.
"""

from conftest import write_result

from repro.datagen import generate_queries, get_preset
from repro.eval.experiments import PrecisionExperiment, SeparabilityExperiment
from repro.pipeline import Pipeline

SEEDS = (101, 202, 303)
THRESHOLD = 0.3


def test_robustness_across_seeds(benchmark, results_dir):
    preset = get_preset("small")

    def run():
        rows = []
        for seed in SEEDS:
            dataset = preset.generate(seed=seed)
            pipeline = Pipeline.from_dataset(
                dataset, min_context_size=preset.min_context_size
            )
            queries = [
                w.query
                for w in generate_queries(dataset, n_queries=15, seed=seed)
            ]
            experiment = PrecisionExperiment(
                pipeline, queries, thresholds=(THRESHOLD,)
            )
            text_precision = experiment.run("text", "text").average[0]
            citation_precision = experiment.run("citation", "text").average[0]
            text_sd = (
                SeparabilityExperiment(pipeline.experiment_paper_set("text"))
                .run(pipeline.prestige("text", "text"))
                .mean_sd()
            )
            citation_sd = (
                SeparabilityExperiment(pipeline.experiment_paper_set("text"))
                .run(pipeline.prestige("citation", "text"))
                .mean_sd()
            )
            rows.append(
                {
                    "seed": seed,
                    "text_precision": text_precision,
                    "citation_precision": citation_precision,
                    "text_sd": text_sd,
                    "citation_sd": citation_sd,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"scale: {preset.name} ({preset.n_papers} papers, "
        f"{preset.n_terms} terms), t={THRESHOLD}",
        "seed   prec(text)  prec(cite)  SD(text)  SD(cite)",
    ]
    for row in rows:
        lines.append(
            f"{row['seed']:<6} {row['text_precision']:.3f}       "
            f"{row['citation_precision']:.3f}       "
            f"{row['text_sd']:.2f}     {row['citation_sd']:.2f}"
        )
    precision_holds = sum(
        1 for r in rows if r["text_precision"] > r["citation_precision"]
    )
    separability_holds = sum(1 for r in rows if r["citation_sd"] > r["text_sd"])
    lines.append(
        f"precision ordering holds on {precision_holds}/{len(rows)} seeds; "
        f"separability ordering on {separability_holds}/{len(rows)}"
    )
    write_result(results_dir, "robustness_seeds", "\n".join(lines))

    # Separability is the structural finding: it must hold on every seed.
    assert separability_holds == len(rows)
    # Precision involves noisier AC answer sets: a majority must hold.
    assert precision_holds >= 2
