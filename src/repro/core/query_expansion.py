"""Query expansion from context vocabulary.

The related-work section discusses contextual web search that builds
"augmented queries ... from the selected context words" (references
[16, 18]).  In the context-based paradigm the selected *ontology
contexts* provide exactly that vocabulary, so expansion falls out
naturally:

- :class:`ContextQueryExpander` -- append the strongest TF-IDF terms of
  the selected contexts' representative papers;
- :class:`PseudoRelevanceExpander` -- classic Rocchio-style feedback:
  append the strongest centroid terms of the top keyword results.

Both return a new query string, leaving the original untouched, and both
cap how many terms they add -- expansion helps recall but each added term
dilutes precision, so the knob is explicit.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.vectors import PaperVectorStore
from repro.index.search import KeywordSearchEngine
from repro.text.vectorize import SparseVector, centroid


def _strongest_new_terms(
    vector: SparseVector,
    vectors: PaperVectorStore,
    existing: Sequence[str],
    max_terms: int,
) -> List[str]:
    """Top-weighted vocabulary terms of ``vector`` not already in the query."""
    existing_set = set(existing)
    vocabulary = vectors.full_model.vocabulary
    added: List[str] = []
    for term_id, _weight in vector.top_terms(max_terms + len(existing_set) + 5):
        term = vocabulary.term_of(term_id)
        if term in existing_set or term in added:
            continue
        added.append(term)
        if len(added) >= max_terms:
            break
    return added


class ContextQueryExpander:
    """Expand queries with the selected contexts' representative vocabulary."""

    def __init__(
        self,
        vectors: PaperVectorStore,
        representatives: Mapping[str, str],
        max_added_terms: int = 3,
    ) -> None:
        if max_added_terms < 0:
            raise ValueError(f"max_added_terms must be >= 0, got {max_added_terms}")
        self.vectors = vectors
        self.representatives = dict(representatives)
        self.max_added_terms = max_added_terms

    def expand(self, query: str, context_ids: Sequence[str]) -> str:
        """Return ``query`` plus the contexts' strongest shared vocabulary.

        The expansion vector is the centroid of the selected contexts'
        representative papers, so terms common to the selected contexts
        dominate terms idiosyncratic to one representative.
        """
        if self.max_added_terms == 0:
            return query
        representative_ids = [
            self.representatives[cid]
            for cid in context_ids
            if cid in self.representatives
        ]
        if not representative_ids:
            return query
        expansion_vector = centroid(
            self.vectors.full_vector(pid) for pid in representative_ids
        )
        query_terms = self.vectors.analyzer.analyze(query)
        added = _strongest_new_terms(
            expansion_vector, self.vectors, query_terms, self.max_added_terms
        )
        if not added:
            return query
        return f"{query} {' '.join(added)}"


class PseudoRelevanceExpander:
    """Rocchio-style pseudo-relevance feedback over keyword results."""

    def __init__(
        self,
        keyword_engine: KeywordSearchEngine,
        vectors: PaperVectorStore,
        feedback_depth: int = 10,
        max_added_terms: int = 3,
    ) -> None:
        if feedback_depth < 1:
            raise ValueError(f"feedback_depth must be >= 1, got {feedback_depth}")
        if max_added_terms < 0:
            raise ValueError(f"max_added_terms must be >= 0, got {max_added_terms}")
        self.keyword_engine = keyword_engine
        self.vectors = vectors
        self.feedback_depth = feedback_depth
        self.max_added_terms = max_added_terms

    def expand(self, query: str) -> str:
        """Return ``query`` plus the top results' strongest centroid terms.

        No results, or nothing new to add, returns the query unchanged.
        """
        if self.max_added_terms == 0:
            return query
        hits = self.keyword_engine.search(query, limit=self.feedback_depth)
        if not hits:
            return query
        feedback_vector = centroid(
            self.vectors.full_vector(hit.paper_id) for hit in hits
        )
        query_terms = self.vectors.analyzer.analyze(query)
        added = _strongest_new_terms(
            feedback_vector, self.vectors, query_terms, self.max_added_terms
        )
        if not added:
            return query
        return f"{query} {' '.join(added)}"
