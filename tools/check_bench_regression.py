#!/usr/bin/env python3
"""Fail CI when a stored benchmark result regresses past its floor.

Each gate reads one payload from ``benchmarks/results/`` (written by the
corresponding ``benchmarks/test_perf_*.py`` bench) and compares a
recorded metric against the floor the benchmark asserts.  Floors travel
*inside* the payloads so bench and gate cannot drift apart.

Gates:

- ``BENCH_query_serving_speedup.json`` -- the single-query speedup of
  the single-scan serving path over the legacy two-scan path must stay
  **at or above** its floor (``benchmarks/test_perf_query_serving.py``);
- ``BENCH_obs_overhead.json`` -- the telemetry-disabled fast path must
  stay **at or below** 2% overhead versus a stripped baseline, and the
  sampled-tracing path at or below 10%; likewise shadow scoring with
  sampling off must stay at or below 2% of the no-shadow serving loop
  and 10% shadow sampling (including draining the re-scoring backlog)
  at or below its budget (``benchmarks/test_perf_obs_overhead.py``);
- ``BENCH_index_backend.json`` -- the ondisk backend's cold open
  (mmap + header parse) must stay **at or above** 10x faster than the
  memory backend's full-parse load
  (``benchmarks/test_perf_index_backend.py``);
- ``BENCH_serving_http.json`` -- the HTTP service's closed-loop
  sustained throughput must stay **at or above** its QPS floor
  (``benchmarks/test_perf_serving_http.py``);
- ``BENCH_incremental_update.json`` -- absorbing a 1% corpus delta and
  answering a probe query must stay **at or above** its speedup floor
  versus a from-scratch rebuild of the same final corpus
  (``benchmarks/test_perf_incremental.py``).

When a result file does not exist (that bench has not been run on this
checkout) its gate is skipped with exit 0 -- the gate guards recorded
results, it does not force a bench run into every CI invocation.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"


@dataclass(frozen=True)
class Gate:
    """One recorded metric compared against a floor in the same payload."""

    payload: str          # filename under benchmarks/results/
    metric: str           # payload key holding the recorded value
    floor_key: str        # payload key holding the floor
    default_floor: float  # fallback when an old payload carries none
    direction: str        # "min" = value must be >= floor, "max" = <= floor
    label: str            # human name used in gate output
    unit: str = ""
    hint: str = ""        # pointer printed on failure

    def check(self) -> Tuple[bool, str]:
        """(passed, message); a missing payload passes with a skip note."""
        path = RESULTS_DIR / self.payload
        if not path.exists():
            return True, (
                f"skip {self.label}: {path.relative_to(REPO_ROOT)} not found "
                "(run the benchmarks to record a result)"
            )
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            return False, f"cannot read {self.payload}: {error}"
        value = payload.get(self.metric)
        floor = payload.get(self.floor_key, self.default_floor)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return False, (
                f"{self.payload} has no numeric {self.metric!r}: {payload!r}"
            )
        if self.direction == "min":
            passed, op = value >= floor, ">="
        else:
            passed, op = value <= floor, "<="
        message = f"{self.label}: {value}{self.unit} {op} {floor}{self.unit} floor"
        if not passed:
            message = (
                f"{self.label} regressed: {value}{self.unit} violates the "
                f"{floor}{self.unit} floor"
                + (f" ({self.hint})" if self.hint else "")
            )
        return passed, message


GATES = (
    Gate(
        payload="BENCH_query_serving_speedup.json",
        metric="single_query_speedup",
        floor_key="floor",
        default_floor=3.0,
        direction="min",
        label="serving speedup",
        unit="x",
        hint="see benchmarks/test_perf_query_serving.py",
    ),
    Gate(
        payload="BENCH_obs_overhead.json",
        metric="disabled_overhead_pct",
        floor_key="disabled_floor_pct",
        default_floor=2.0,
        direction="max",
        label="telemetry-disabled overhead",
        unit="%",
        hint="see benchmarks/test_perf_obs_overhead.py",
    ),
    Gate(
        payload="BENCH_obs_overhead.json",
        metric="sampled_overhead_pct",
        floor_key="sampled_floor_pct",
        default_floor=10.0,
        direction="max",
        label="sampled-tracing overhead",
        unit="%",
        hint="see benchmarks/test_perf_obs_overhead.py",
    ),
    Gate(
        payload="BENCH_obs_overhead.json",
        metric="shadow_disabled_overhead_pct",
        floor_key="shadow_disabled_floor_pct",
        default_floor=2.0,
        direction="max",
        label="shadow-disabled serving overhead",
        unit="%",
        hint="see benchmarks/test_perf_obs_overhead.py",
    ),
    Gate(
        payload="BENCH_obs_overhead.json",
        metric="shadow_sampled_overhead_pct",
        floor_key="shadow_sampled_floor_pct",
        default_floor=50.0,
        direction="max",
        label="shadow-sampled serving overhead",
        unit="%",
        hint="see benchmarks/test_perf_obs_overhead.py",
    ),
    Gate(
        payload="BENCH_index_backend.json",
        metric="cold_open_speedup",
        floor_key="floor",
        default_floor=10.0,
        direction="min",
        label="ondisk cold-open speedup",
        unit="x",
        hint="see benchmarks/test_perf_index_backend.py",
    ),
    Gate(
        payload="BENCH_serving_http.json",
        metric="sustained_qps",
        floor_key="floor",
        default_floor=20.0,
        direction="min",
        label="HTTP serving throughput",
        unit=" qps",
        hint="see benchmarks/test_perf_serving_http.py",
    ),
    Gate(
        payload="BENCH_incremental_update.json",
        metric="speedup",
        floor_key="floor",
        default_floor=20.0,
        direction="min",
        label="incremental-update speedup",
        unit="x",
        hint="see benchmarks/test_perf_incremental.py",
    ),
)


def main(gates: Optional[Tuple[Gate, ...]] = None) -> int:
    failed = False
    for gate in gates or GATES:
        passed, message = gate.check()
        print(f"check_bench_regression: {message}")
        failed = failed or not passed
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
