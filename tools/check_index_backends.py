#!/usr/bin/env python3
"""Lint the index-backend registry against its derived surfaces.

The registry in ``src/repro/index/backends/`` is the single source of
truth for index storage engines.  This lint (modeled on
``check_score_registry.py``) fails CI when any derived surface drifts:

1. the CLI ``--index-backend`` choice lists (``repro search`` /
   ``repro build`` / ``repro precompute`` / ``repro workspace status``)
   must equal the registered names, with the registry default as the
   argparse default;
2. every spec must carry a callable ``build``/``save``/``load`` and a
   unique ``format_tag`` (the workspace load path dispatches on it),
   and the workspace ``index`` artifact must declare ``index_backend``
   among its config keys so switching backends marks it stale;
3. the "Registered index backends" table of ``docs/architecture.md``
   must list exactly the registered names;
4. no concrete index class (``InvertedIndex``, ``PositionalIndex``,
   ``OndiskPostingsBackend``) may be referenced in ``src/`` outside
   ``src/repro/index/`` -- every other layer talks to the
   ``SearchBackend`` protocol via the registry.

Exit status 1 on any violation; intended for tools/ci.sh.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DOCS_PATH = "docs/architecture.md"
#: The index package itself is where the concrete classes belong.
EXEMPT_PREFIX = "src/repro/index/"
#: Subcommands required to expose --index-backend.
REQUIRED_SUBCOMMANDS = {"search", "build", "precompute"}


def check_cli_choices(backends) -> list:
    """CLI --index-backend choices/default must come from the registry."""
    from repro.cli import build_parser

    problems = []
    names = tuple(backends.backend_names())
    subparsers = next(
        action
        for action in build_parser()._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    seen = set()

    def scan(subcommand, parser):
        for action in parser._actions:
            if isinstance(action, argparse._SubParsersAction):
                for nested_name, nested in action.choices.items():
                    scan(f"{subcommand} {nested_name}", nested)
                continue
            if "--index-backend" not in action.option_strings:
                continue
            seen.add(subcommand.split()[0])
            if tuple(action.choices or ()) != names:
                problems.append(
                    f"cli: `{subcommand} --index-backend` choices "
                    f"{tuple(action.choices or ())} != registry {names}"
                )
            if action.default != backends.DEFAULT_BACKEND:
                problems.append(
                    f"cli: `{subcommand} --index-backend` default "
                    f"{action.default!r} != registry default "
                    f"{backends.DEFAULT_BACKEND!r}"
                )

    for subcommand, parser in subparsers.choices.items():
        scan(subcommand, parser)
    missing = REQUIRED_SUBCOMMANDS - seen
    for subcommand in sorted(missing):
        problems.append(f"cli: `{subcommand}` has no --index-backend flag")
    return problems


def check_registry_and_workspace(backends) -> list:
    """Spec shape, unique format tags, workspace config-key coupling."""
    from repro.workspace import ARTIFACTS

    problems = []
    tags = {}
    for spec in backends.specs():
        for role in ("build", "save", "load"):
            if not callable(getattr(spec, role, None)):
                problems.append(f"registry: backend {spec.name!r} {role} not callable")
        if spec.format_tag in tags:
            problems.append(
                f"registry: backends {tags[spec.format_tag]!r} and "
                f"{spec.name!r} share format tag {spec.format_tag!r}"
            )
        tags[spec.format_tag] = spec.name
    if backends.DEFAULT_BACKEND not in backends.backend_names():
        problems.append(
            f"registry: default backend {backends.DEFAULT_BACKEND!r} "
            f"is not registered"
        )
    index_artifact = ARTIFACTS.get("index")
    if index_artifact is None:
        problems.append("workspace: no 'index' artifact registered")
    elif "index_backend" not in index_artifact.config_keys:
        problems.append(
            "workspace: the index artifact must list 'index_backend' in "
            "config_keys (backend switches must fingerprint as stale)"
        )
    return problems


#: First cell of a "Registered index backends" table row.
DOCS_ROW_RE = re.compile(r"^\|\s*`([a-z][a-z0-9_]*)`\s*\|")


def docs_table_names() -> list:
    """Backend names listed in the architecture docs table, in order."""
    text = (REPO_ROOT / DOCS_PATH).read_text(encoding="utf-8")
    names = []
    in_section = False
    for line in text.splitlines():
        if line.strip() == "Registered index backends:":
            in_section = True
            continue
        if in_section:
            row = DOCS_ROW_RE.match(line)
            if row:
                names.append(row.group(1))
            elif names:
                break  # table ended
    return names


def check_docs(backends) -> list:
    documented = docs_table_names()
    registered = list(backends.backend_names())
    problems = []
    if not documented:
        problems.append(
            f"docs: no 'Registered index backends' table found in {DOCS_PATH}"
        )
        return problems
    for name in registered:
        if name not in documented:
            problems.append(
                f"docs: registered backend {name!r} missing from the "
                f"{DOCS_PATH} table"
            )
    for name in documented:
        if name not in registered:
            problems.append(
                f"docs: {DOCS_PATH} table lists unregistered backend {name!r}"
            )
    return problems


#: Concrete index classes that must stay inside src/repro/index/.
CONCRETE_RE = re.compile(
    r"\b(InvertedIndex|PositionalIndex|OndiskPostingsBackend)\b"
)
COMMENT_RE = re.compile(r"#.*$")


def scan_for_concrete_references() -> list:
    """No concrete index types outside the index package itself."""
    problems = []
    for path in sorted((REPO_ROOT / "src").rglob("*.py")):
        relative = str(path.relative_to(REPO_ROOT))
        if relative.startswith(EXEMPT_PREFIX):
            continue
        for lineno, raw in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            line = COMMENT_RE.sub("", raw)
            match = CONCRETE_RE.search(line)
            if match:
                problems.append(
                    f"src: {relative}:{lineno}: concrete index type "
                    f"{match.group(1)} (talk to the SearchBackend protocol "
                    f"via repro.index.backends instead)"
                )
    return problems


def main() -> int:
    from repro.index import backends

    problems = []
    problems.extend(check_cli_choices(backends))
    problems.extend(check_registry_and_workspace(backends))
    problems.extend(check_docs(backends))
    problems.extend(scan_for_concrete_references())
    if problems:
        print("index-backend violations:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(
        f"check_index_backends: {len(backends.backend_names())} backends "
        f"({', '.join(backends.backend_names())}) -- CLI, workspace, and "
        f"docs agree with the registry"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
