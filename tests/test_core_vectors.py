"""Unit tests for the paper vector store."""

import pytest

from repro.core.vectors import PaperVectorStore
from repro.corpus.paper import Section


@pytest.fixture(scope="module")
def store(request):
    corpus = request.getfixturevalue("tiny_corpus")
    return PaperVectorStore(corpus)


class TestSectionVectors:
    def test_unit_norm(self, store):
        vector = store.section_vector("M1", Section.TITLE)
        assert vector.norm == pytest.approx(1.0)

    def test_empty_section_empty_vector(self, store, tiny_corpus):
        # All tiny_corpus papers have all sections; check via a paper with
        # minimal body text instead: vector still built, possibly non-empty.
        vector = store.section_vector("X1", Section.INDEX_TERMS)
        assert vector is not None

    def test_caching_returns_same_object(self, store):
        a = store.section_vector("M1", Section.BODY)
        b = store.section_vector("M1", Section.BODY)
        assert a is b

    def test_related_papers_more_similar(self, store):
        same_topic = store.section_similarity("M1", "M2", Section.BODY)
        cross_topic = store.section_similarity("M1", "S1", Section.BODY)
        off_topic = store.section_similarity("M1", "X1", Section.BODY)
        assert same_topic > cross_topic
        assert cross_topic >= off_topic

    def test_self_similarity_is_one(self, store):
        assert store.section_similarity("M1", "M1", Section.ABSTRACT) == pytest.approx(
            1.0
        )


class TestFullVectors:
    def test_full_similarity_topical(self, store):
        assert store.full_similarity("M1", "M2") > store.full_similarity("M1", "X1")

    def test_query_vector_matches_topic(self, store):
        query = store.query_vector("glucose metabolic glycolysis")
        m1 = store.full_vector("M1")
        x1 = store.full_vector("X1")
        assert query.cosine(m1) > query.cosine(x1)

    def test_query_vector_unknown_words_empty(self, store):
        assert len(store.query_vector("xylophone zeppelin")) == 0

    def test_centroid_of(self, store):
        center = store.centroid_of(["M1", "M2"])
        assert center.cosine(store.full_vector("M1")) > center.cosine(
            store.full_vector("X1")
        )

    def test_centroid_of_empty(self, store):
        assert len(store.centroid_of([])) == 0
