"""Cold-start benchmark: `Pipeline.open_workspace` vs a from-scratch build.

The workspace exists to amortise the paper's query-independent
pre-processing (section 4): once `repro build` has run, a serving
process should hydrate every substrate from disk instead of re-analysing
the corpus.  This bench measures both cold-start paths on the shared
bench dataset and asserts the >= 5x speedup the workspace is meant to
deliver (in practice it is far larger; the bar is deliberately
conservative so CI noise cannot flake it).

Emits ``benchmarks/results/BENCH_test_perf_workspace.json`` via the
conftest hook plus a human-readable ``perf_workspace.txt`` table.
"""

import json
import time

from conftest import write_result

from repro.corpus import write_corpus_jsonl
from repro.ontology import write_obo
from repro.pipeline import Pipeline

#: (function, paper_set) pairs whose prestige scores a warm pipeline holds.
SCORE_ARMS = (("text", "text"), ("citation", "text"),
              ("pattern", "pattern"), ("citation", "pattern"))

MIN_SPEEDUP = 5.0


def _touch_everything(pipeline):
    """Force every artifact the workspace stores to be live in memory."""
    for function, paper_set in SCORE_ARMS:
        pipeline.prestige(function, paper_set)
    pipeline.representatives
    pipeline.citation_graph


def test_perf_workspace(dataset, results_dir, tmp_path_factory):
    directory = tmp_path_factory.mktemp("workspace-bench")
    write_corpus_jsonl(dataset.corpus, directory / "corpus.jsonl")
    write_obo(dataset.ontology, directory / "ontology.obo")
    with open(directory / "training.json", "w", encoding="utf-8") as handle:
        json.dump(dataset.training_papers, handle)

    # Cold start A: read the raw data and compute every artifact in memory.
    started = time.perf_counter()
    scratch = Pipeline.from_directory(directory)
    _touch_everything(scratch)
    scratch_seconds = time.perf_counter() - started

    # One-off: persist the workspace (reuses the objects already in memory).
    started = time.perf_counter()
    scratch.build_workspace(directory / "workspace")
    build_seconds = time.perf_counter() - started

    # Cold start B: hydrate a brand-new pipeline from the workspace.
    started = time.perf_counter()
    hydrated = Pipeline.open_workspace(directory)
    open_seconds = time.perf_counter() - started

    # The hydrated pipeline must be immediately searchable and agree with
    # the from-scratch one -- speed means nothing if the results drift.
    query = "metabolic process activity"
    assert [
        (h.paper_id, h.relevancy) for h in hydrated.search(query, limit=10)
    ] == [(h.paper_id, h.relevancy) for h in scratch.search(query, limit=10)]

    speedup = scratch_seconds / max(open_seconds, 1e-9)
    table = "\n".join([
        f"corpus size              {len(dataset.corpus)} papers",
        f"from-scratch cold start  {scratch_seconds * 1000.0:10.1f} ms",
        f"workspace serialisation  {build_seconds * 1000.0:10.1f} ms",
        f"open_workspace cold start{open_seconds * 1000.0:10.1f} ms",
        f"speedup                  {speedup:10.1f}x  (floor {MIN_SPEEDUP:.0f}x)",
    ])
    write_result(results_dir, "perf_workspace", table)
    assert speedup >= MIN_SPEEDUP
