"""Shared fixtures: a tiny hand-crafted testbed and a small generated one.

The hand-crafted corpus gives tests exact control over similarities,
citations, and pattern matches; the generated dataset exercises realistic
statistical structure.  Both are session-scoped -- building them is the
expensive part of the suite.
"""

import pytest

from repro.corpus.corpus import Corpus
from repro.obs import reset_registry, reset_telemetry
from repro.corpus.paper import Paper
from repro.datagen.corpus_gen import CorpusGenerator
from repro.datagen.ontology_gen import OntologyGenerator
from repro.ontology.ontology import Ontology
from repro.ontology.term import Term


@pytest.fixture(autouse=True)
def _fresh_obs_state():
    """Every test starts and ends with fresh process-wide obs state.

    Counters accumulated by session-scoped fixture builds (or earlier
    tests) must never leak into a test's metric assertions, and query
    telemetry enabled by one test must not capture another's requests.
    Tracing is deliberately left alone: tests manage their own tracers
    via start_tracing()/stop_tracing().
    """
    reset_registry()
    reset_telemetry()
    yield
    reset_registry()
    reset_telemetry()


@pytest.fixture(scope="session")
def tiny_ontology():
    """root -> {metabolism, signaling}; metabolism -> glucose."""
    return Ontology(
        [
            Term("root", "biological process"),
            Term("met", "metabolic process", parent_ids=("root",)),
            Term("sig", "signaling process", parent_ids=("root",)),
            Term("glu", "glucose metabolic process", parent_ids=("met",)),
        ]
    )


@pytest.fixture(scope="session")
def tiny_corpus():
    """Six papers: three metabolic (two glucose), two signaling, one off-topic.

    Citations: M1 <- M2 <- M3 within metabolism, S1 <- S2 in signaling,
    and a cross-topic edge S2 -> M1.
    """
    return Corpus(
        [
            Paper(
                paper_id="M1",
                title="glucose metabolic process flux",
                abstract="glucose metabolic process in yeast glycolysis pathway",
                body="we measured glucose metabolic process rates and "
                "glycolysis pathway flux in yeast cells under stress",
                index_terms=("glucose", "metabolism"),
                authors=("A. Alpha", "B. Beta"),
                year=1995,
            ),
            Paper(
                paper_id="M2",
                title="metabolic process regulation by glucose sensing",
                abstract="regulation of the metabolic process through glucose "
                "sensing receptors",
                body="metabolic process regulation depends on glucose sensing "
                "and downstream glycolysis pathway components",
                index_terms=("metabolism", "regulation"),
                authors=("B. Beta", "C. Gamma"),
                references=("M1",),
                year=1999,
            ),
            Paper(
                paper_id="M3",
                title="survey of metabolic process studies",
                abstract="a survey of metabolic process research directions",
                body="this survey covers the metabolic process literature "
                "including glycolysis and energy pathways",
                index_terms=("metabolism", "survey"),
                authors=("D. Delta",),
                references=("M1", "M2"),
                year=2003,
            ),
            Paper(
                paper_id="S1",
                title="signaling process cascades",
                abstract="kinase cascades in the signaling process",
                body="the signaling process uses kinase cascades and receptor "
                "phosphorylation to transmit information",
                index_terms=("signaling", "kinase"),
                authors=("E. Epsilon", "F. Zeta"),
                year=1996,
            ),
            Paper(
                paper_id="S2",
                title="receptor signaling process dynamics",
                abstract="dynamics of receptor driven signaling process",
                body="receptor dynamics shape the signaling process and kinase "
                "activity over time",
                index_terms=("signaling", "receptor"),
                authors=("F. Zeta",),
                references=("S1", "M1"),
                year=2000,
            ),
            Paper(
                paper_id="X1",
                title="astronomy of distant quasars",
                abstract="quasar luminosity surveys",
                body="telescope observations of quasars and galactic nuclei",
                index_terms=("astronomy",),
                authors=("G. Eta",),
                year=2001,
            ),
        ]
    )


@pytest.fixture(scope="session")
def tiny_training():
    return {"met": ["M1", "M2"], "sig": ["S1"], "glu": ["M1"]}


@pytest.fixture(scope="session")
def small_dataset():
    """A generated dataset big enough for statistical structure."""
    generator = CorpusGenerator(
        n_papers=300,
        ontology_generator=OntologyGenerator(n_terms=60, max_depth=5),
    )
    return generator.generate(seed=17)
