"""Unit tests for the section-3.1 PageRank variant."""

import pytest

from repro.citations.graph import CitationGraph
from repro.citations.pagerank import PageRankResult, TeleportKind, pagerank


def star_graph():
    """Everyone cites HUB."""
    return CitationGraph(edges=[("A", "HUB"), ("B", "HUB"), ("C", "HUB")])


def cycle_graph():
    return CitationGraph(edges=[("A", "B"), ("B", "C"), ("C", "A")])


class TestE2Uniform:
    def test_scores_sum_to_one(self):
        result = pagerank(star_graph())
        assert sum(result.scores.values()) == pytest.approx(1.0)

    def test_hub_wins_star(self):
        result = pagerank(star_graph())
        assert result.top(1) == ["HUB"]
        hub = result.scores["HUB"]
        for node in ("A", "B", "C"):
            assert hub > result.scores[node]

    def test_cycle_is_uniform(self):
        result = pagerank(cycle_graph())
        values = list(result.scores.values())
        assert max(values) - min(values) < 1e-9

    def test_converges(self):
        result = pagerank(cycle_graph())
        assert result.converged
        assert result.residual < 1e-9

    def test_empty_graph(self):
        result = pagerank(CitationGraph())
        assert result.scores == {}
        assert result.converged

    def test_single_node(self):
        result = pagerank(CitationGraph(nodes=["X"]))
        assert result.scores["X"] == pytest.approx(1.0)

    def test_edgeless_graph_uniform(self):
        g = CitationGraph(nodes=["A", "B", "C", "D"])
        result = pagerank(g)
        for score in result.scores.values():
            assert score == pytest.approx(0.25)

    def test_dangling_mass_preserved(self):
        # B has no outgoing citations: its mass must be redistributed.
        g = CitationGraph(edges=[("A", "B")])
        result = pagerank(g)
        assert sum(result.scores.values()) == pytest.approx(1.0)
        assert result.scores["B"] > result.scores["A"]

    def test_initial_vector_does_not_change_fixed_point(self):
        g = star_graph()
        uniform = pagerank(g)
        skewed = pagerank(g, initial={"A": 1.0})
        for node in g.nodes():
            assert uniform.scores[node] == pytest.approx(
                skewed.scores[node], abs=1e-6
            )

    def test_hand_computed_two_node_chain(self):
        # A -> B with d = 0.15:
        #   p(A) = 0.15/2 + 0.85 * dangling(B)/2
        #   p(B) = 0.15/2 + 0.85 * (p(A) + dangling(B)/2)
        # Solve: p_A = (d/2 + 0.85*p_B/2) with dangling B donating p_B/2...
        # easier to just assert the converged invariants:
        result = pagerank(CitationGraph(edges=[("A", "B")]), d=0.15)
        p_a, p_b = result.scores["A"], result.scores["B"]
        assert p_a + p_b == pytest.approx(1.0)
        # Fixed point equations with dangling redistribution:
        assert p_a == pytest.approx(0.15 / 2 + 0.85 * (p_b / 2), abs=1e-8)
        assert p_b == pytest.approx(0.15 / 2 + 0.85 * (p_a + p_b / 2), abs=1e-8)


class TestE1Constant:
    def test_scores_exceed_teleport_floor(self):
        result = pagerank(star_graph(), teleport=TeleportKind.E1_CONSTANT, d=0.15)
        for score in result.scores.values():
            assert score >= 0.15 - 1e-12

    def test_ranking_matches_e2(self):
        g = CitationGraph(
            edges=[("A", "B"), ("C", "B"), ("B", "D"), ("A", "D"), ("D", "A")]
        )
        rank_e1 = pagerank(g, teleport=TeleportKind.E1_CONSTANT).top(4)
        rank_e2 = pagerank(g, teleport=TeleportKind.E2_UNIFORM).top(4)
        assert rank_e1 == rank_e2

    def test_converges(self):
        result = pagerank(cycle_graph(), teleport=TeleportKind.E1_CONSTANT)
        assert result.converged


class TestValidation:
    @pytest.mark.parametrize("bad_d", [0.0, 1.0, -0.1, 1.5])
    def test_d_range(self, bad_d):
        with pytest.raises(ValueError):
            pagerank(star_graph(), d=bad_d)

    def test_zero_mass_initial_rejected(self):
        with pytest.raises(ValueError, match="positive mass"):
            pagerank(star_graph(), initial={"A": 0.0})


class TestResult:
    def test_top_k_tie_break_by_id(self):
        result = PageRankResult(
            scores={"b": 0.5, "a": 0.5, "c": 0.1},
            iterations=1,
            converged=True,
            residual=0.0,
        )
        assert result.top(2) == ["a", "b"]


class TestVectorizedParity:
    """The CSR/bincount inner loop must match a straight list-of-lists
    reference implementation of the same recurrence to 1e-10."""

    @staticmethod
    def _reference_pagerank(graph, teleport, d=0.15, max_iterations=200,
                            tolerance=1e-10):
        """Pre-vectorization formulation: Python loop over in-neighbour lists."""
        import numpy as np

        nodes = graph.nodes()
        n = len(nodes)
        index = {node: position for position, node in enumerate(nodes)}
        out_degree = np.array(
            [graph.out_degree(node) for node in nodes], dtype=float
        )
        dangling = out_degree == 0.0
        in_lists = [
            [index[u] for u in graph.in_neighbors(node)] for node in nodes
        ]
        p = np.full(n, 1.0 / n)
        damping = 1.0 - d
        for _ in range(1, max_iterations + 1):
            spread = np.where(dangling, 0.0, p / np.maximum(out_degree, 1.0))
            flowed = np.array(
                [sum(spread[u] for u in sources) for sources in in_lists],
                dtype=float,
            )
            flowed += p[dangling].sum() / n
            if teleport is TeleportKind.E2_UNIFORM:
                new_p = damping * flowed + d / n
            else:
                new_p = damping * flowed + d
            residual = float(np.abs(new_p - p).sum())
            p = new_p
            if teleport is TeleportKind.E2_UNIFORM and residual < tolerance:
                break
            if teleport is TeleportKind.E1_CONSTANT and residual < tolerance * max(
                p.sum(), 1.0
            ):
                break
        return {node: float(p[index[node]]) for node in nodes}

    @staticmethod
    def _random_graph(seed, n_nodes=60, n_edges=300):
        import random

        rng = random.Random(seed)
        names = [f"P{i:03d}" for i in range(n_nodes)]
        graph = CitationGraph()
        for name in names:
            graph.add_node(name)
        for _ in range(n_edges):
            src, dst = rng.sample(names, 2)
            graph.add_edge(src, dst)
        return graph

    @pytest.mark.parametrize("teleport", list(TeleportKind))
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_reference_on_random_graphs(self, teleport, seed):
        graph = self._random_graph(seed)
        expected = self._reference_pagerank(graph, teleport)
        result = pagerank(graph, teleport=teleport)
        assert result.scores.keys() == expected.keys()
        for node, score in expected.items():
            assert result.scores[node] == pytest.approx(score, abs=1e-10)

    @pytest.mark.parametrize("teleport", list(TeleportKind))
    def test_matches_reference_with_dangling_and_isolated_nodes(self, teleport):
        graph = CitationGraph(
            edges=[("A", "B"), ("A", "C"), ("B", "C"), ("D", "A")]
        )
        graph.add_node("ISOLATED")  # no edges at all
        # C and ISOLATED are dangling (no outgoing citations).
        expected = self._reference_pagerank(graph, teleport)
        result = pagerank(graph, teleport=teleport)
        for node, score in expected.items():
            assert result.scores[node] == pytest.approx(score, abs=1e-10)
