"""Slow-query log: bounded slowest-N retention and ASCII rendering."""

import pytest

from repro.obs import SlowQueryLog, configure_telemetry, render_slowlog, span


class _FakeRecord:
    """Just enough of a QueryRecord for the log's ordering logic."""

    def __init__(self, duration_s, query_id="q"):
        self.duration_s = duration_s
        self.query_id = query_id

    def to_dict(self):
        return {"query_id": self.query_id, "duration_ms": self.duration_s * 1e3}


class TestSlowQueryLog:
    def test_keeps_everything_under_capacity(self):
        log = SlowQueryLog(capacity=4)
        for duration in (0.3, 0.1, 0.2):
            assert log.offer(_FakeRecord(duration)) is True
        assert len(log) == 3

    def test_evicts_fastest_once_full(self):
        log = SlowQueryLog(capacity=3)
        for duration in (0.3, 0.1, 0.2):
            log.offer(_FakeRecord(duration))
        assert log.offer(_FakeRecord(0.5)) is True  # evicts the 0.1
        assert [r.duration_s for r in log.records()] == [0.5, 0.3, 0.2]

    def test_rejects_records_faster_than_the_floor(self):
        log = SlowQueryLog(capacity=2)
        log.offer(_FakeRecord(0.3))
        log.offer(_FakeRecord(0.2))
        assert log.offer(_FakeRecord(0.1)) is False
        assert len(log) == 2

    def test_records_slowest_first_ties_in_arrival_order(self):
        log = SlowQueryLog(capacity=4)
        log.offer(_FakeRecord(0.2, "first"))
        log.offer(_FakeRecord(0.2, "second"))
        log.offer(_FakeRecord(0.4, "slowest"))
        assert [r.query_id for r in log.records()] == [
            "slowest", "first", "second",
        ]

    def test_capacity_one_tracks_the_single_slowest(self):
        log = SlowQueryLog(capacity=1)
        for duration in (0.1, 0.5, 0.3):
            log.offer(_FakeRecord(duration))
        (record,) = log.records()
        assert record.duration_s == 0.5

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            SlowQueryLog(capacity=0)

    def test_clear(self):
        log = SlowQueryLog(capacity=2)
        log.offer(_FakeRecord(0.1))
        log.clear()
        assert len(log) == 0 and log.to_dicts() == []


class TestRenderSlowlog:
    def _entries(self):
        """Real captured entries via an enabled telemetry."""
        telemetry = configure_telemetry(
            enabled=True, sample_rate=0.0, slow_ms=0.0
        )
        with telemetry.request("search", query="glucose flux") as request:
            with span("search.run"):
                pass
            request.cache(hit=True)
        with pytest.raises(RuntimeError):
            with telemetry.request("search", query="broken"):
                raise RuntimeError("exploded")
        return telemetry.slowlog.to_dicts()

    def test_renders_header_flags_cache_and_span_tree(self):
        text = render_slowlog(self._entries())
        assert "#1" in text and "#2" in text
        assert "[slow]" in text
        assert "cache=1/1" in text
        assert "query='glucose flux'" in text
        assert "error=RuntimeError: exploded" in text
        # The span tree is indented under its entry's header line.
        assert "request.search" in text
        assert "search.run" in text

    def test_limit_truncates(self):
        entries = self._entries()
        text = render_slowlog(entries, limit=1)
        assert "#1" in text and "#2" not in text

    def test_empty(self):
        assert render_slowlog([]) == "(slow-query log is empty)"
