"""Unit tests for Context and ContextPaperSet."""

import pytest

from repro.core.context import Context, ContextPaperSet
from repro.ontology.ontology import Ontology
from repro.ontology.term import Term


@pytest.fixture
def ontology():
    return Ontology(
        [
            Term("root", "process"),
            Term("a", "a process", parent_ids=("root",)),
            Term("b", "b process", parent_ids=("root",)),
            Term("a1", "deep a process", parent_ids=("a",)),
        ]
    )


@pytest.fixture
def paper_set(ontology):
    return ContextPaperSet(
        ontology,
        [
            Context("root", ("P1", "P2", "P3", "P4")),
            Context("a", ("P1", "P2"), training_paper_ids=("P1",)),
            Context("a1", ("P1",), inherited_from="a", decay=0.5),
            Context("b", ("P3",)),
        ],
    )


class TestContext:
    def test_size_and_contains(self):
        context = Context("a", ("P1", "P2"))
        assert context.size == 2
        assert "P1" in context and "P9" not in context

    def test_defaults(self):
        context = Context("a", ())
        assert context.training_paper_ids == ()
        assert context.inherited_from is None
        assert context.decay == 1.0


class TestContextPaperSet:
    def test_len_iter(self, paper_set):
        assert len(paper_set) == 4
        assert {c.term_id for c in paper_set} == {"root", "a", "a1", "b"}

    def test_context_lookup(self, paper_set):
        assert paper_set.context("a").paper_ids == ("P1", "P2")
        with pytest.raises(KeyError):
            paper_set.context("nope")

    def test_unknown_term_rejected(self, ontology):
        with pytest.raises(ValueError, match="not an ontology term"):
            ContextPaperSet(ontology, [Context("ghost", ())])

    def test_duplicate_context_rejected(self, ontology):
        with pytest.raises(ValueError, match="duplicate"):
            ContextPaperSet(ontology, [Context("a", ()), Context("a", ())])

    def test_contexts_of_paper(self, paper_set):
        assert set(paper_set.contexts_of_paper("P1")) == {"root", "a", "a1"}
        assert paper_set.contexts_of_paper("P9") == ()

    def test_filter_small(self, paper_set):
        filtered = paper_set.filter_small(2)
        assert set(filtered.context_ids()) == {"root", "a"}

    def test_filter_small_keeps_ontology(self, paper_set):
        assert paper_set.filter_small(2).ontology is paper_set.ontology

    def test_contexts_at_level(self, paper_set):
        level2 = paper_set.contexts_at_level(2)
        assert {c.term_id for c in level2} == {"a", "b"}

    def test_descendants_in_set(self, paper_set):
        assert paper_set.descendants_in_set("root") == ["a", "a1", "b"] or set(
            paper_set.descendants_in_set("root")
        ) == {"a", "a1", "b"}
        assert paper_set.descendants_in_set("a") == ["a1"]
        assert paper_set.descendants_in_set("a1") == []

    def test_size_histogram(self, paper_set):
        histogram = paper_set.size_histogram()
        assert histogram[1] == 2  # a1 and b
        assert histogram[2] == 1
        assert histogram[4] == 1
