"""The workspace manifest: one JSON file describing every built artifact.

``manifest.json`` sits at the workspace root and records, per artifact,
the file it lives in, the content fingerprint it was built from, its
schema version, dependency edges, and build cost.  Freshness checks
compare manifest fingerprints against recomputed ones -- the manifest is
the *only* state the builder trusts between runs.

Schema (``repro/workspace-manifest/v1``)::

    {
      "format": "repro/workspace-manifest/v1",
      "generation": 2,
      "parent": "<sha256 of the parent manifest payload>",
      "delta": {"added": ["P123"], "removed": ["P045"]},
      "inputs": {"corpus": "<sha256>", "ontology": "...", "training": "..."},
      "artifacts": {
        "<name>": {
          "file": "<name>.json",
          "fingerprint": "<sha256>",
          "schema_version": 1,
          "deps": ["..."],
          "built_at": 1754000000.0,
          "wall_seconds": 1.234,
          "size_bytes": 56789
        }
      }
    }

``generation``, ``parent`` and ``delta`` are optional -- manifests written
before incremental ingestion existed lack them and read as generation 0
with no parent.  Each delta ingestion bumps the generation, records the
ids it added/removed, and chains to its parent by
:func:`manifest_fingerprint` of the parent payload; the superseded
manifest is archived as ``manifest.gen-<N>.json`` so the lineage stays
walkable (:func:`read_generation_chain`).  ``manifest.json`` itself is
always the *newest* generation, which is why ``open_workspace`` needs no
lineage awareness to load the latest state.

``tools/check_workspace_manifest.py`` validates the same schema from the
command line via :func:`validate_manifest_payload`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

PathLike = Union[str, Path]

MANIFEST_FORMAT = "repro/workspace-manifest/v1"
MANIFEST_FILE = "manifest.json"

#: Required per-artifact entry fields and their JSON types.
_ENTRY_FIELDS: Tuple[Tuple[str, type], ...] = (
    ("file", str),
    ("fingerprint", str),
    ("schema_version", int),
    ("deps", list),
    ("built_at", float),
    ("wall_seconds", float),
    ("size_bytes", int),
)


@dataclass(frozen=True)
class ManifestEntry:
    """Manifest record of one built artifact."""

    file: str
    fingerprint: str
    schema_version: int
    deps: List[str]
    built_at: float
    wall_seconds: float
    size_bytes: int


def validate_manifest_payload(payload: object, origin: str = "manifest") -> Dict:
    """Validate a parsed manifest; return it or raise ``ValueError``.

    Checks the format tag, the input-digest block, and that every
    artifact entry carries every required field with the right type.
    Registry-level checks (known names, codec coverage) live in
    ``tools/check_workspace_manifest.py`` so this stays import-light.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"{origin}: manifest must be a JSON object")
    if payload.get("format") != MANIFEST_FORMAT:
        raise ValueError(
            f"{origin}: expected format {MANIFEST_FORMAT!r}, "
            f"found {payload.get('format')!r}"
        )
    inputs = payload.get("inputs")
    if not isinstance(inputs, dict) or set(inputs) != {
        "corpus", "ontology", "training",
    }:
        raise ValueError(
            f"{origin}: 'inputs' must map exactly corpus/ontology/training "
            "to digests"
        )
    generation = payload.get("generation", 0)
    if not isinstance(generation, int) or isinstance(generation, bool) or generation < 0:
        raise ValueError(
            f"{origin}: 'generation' must be a non-negative integer, "
            f"got {generation!r}"
        )
    parent = payload.get("parent")
    if parent is not None and not isinstance(parent, str):
        raise ValueError(f"{origin}: 'parent' must be a fingerprint string or null")
    if generation > 0 and parent is None:
        raise ValueError(
            f"{origin}: generation {generation} must name a 'parent' fingerprint"
        )
    if generation == 0 and parent is not None:
        raise ValueError(f"{origin}: generation 0 cannot have a 'parent'")
    delta = payload.get("delta")
    if delta is not None:
        if not isinstance(delta, dict) or set(delta) != {"added", "removed"}:
            raise ValueError(
                f"{origin}: 'delta' must map exactly added/removed to id lists"
            )
        for key in ("added", "removed"):
            ids = delta[key]
            if not isinstance(ids, list) or not all(
                isinstance(pid, str) for pid in ids
            ):
                raise ValueError(
                    f"{origin}: 'delta'.{key} must be a list of paper-id strings"
                )
        if generation == 0:
            raise ValueError(f"{origin}: generation 0 cannot carry a 'delta'")
    artifacts = payload.get("artifacts")
    if not isinstance(artifacts, dict):
        raise ValueError(f"{origin}: 'artifacts' must be a JSON object")
    for name, entry in artifacts.items():
        if not isinstance(entry, dict):
            raise ValueError(f"{origin}: artifact {name!r} entry must be an object")
        for fieldname, expected in _ENTRY_FIELDS:
            if fieldname not in entry:
                raise ValueError(
                    f"{origin}: artifact {name!r} is missing {fieldname!r}"
                )
            value = entry[fieldname]
            # ints are acceptable where floats are expected (JSON 1 vs 1.0).
            if expected is float and isinstance(value, int):
                continue
            if not isinstance(value, expected):
                raise ValueError(
                    f"{origin}: artifact {name!r} field {fieldname!r} must be "
                    f"{expected.__name__}, got {type(value).__name__}"
                )
    return payload


def read_manifest(directory: PathLike) -> Optional[Dict[str, object]]:
    """Load and validate ``manifest.json`` from ``directory``.

    Returns None when the file does not exist (an unbuilt workspace);
    corrupt or invalid manifests raise ``ValueError`` with the path.
    """
    path = Path(directory) / MANIFEST_FILE
    if not path.exists():
        return None
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}: corrupt JSON ({error})") from error
    return validate_manifest_payload(payload, origin=str(path))


def write_manifest(
    directory: PathLike,
    inputs: Dict[str, str],
    entries: Dict[str, ManifestEntry],
    generation: int = 0,
    parent: Optional[str] = None,
    delta: Optional[Dict[str, List[str]]] = None,
) -> Path:
    """Write ``manifest.json`` atomically-ish (write then replace).

    ``generation``/``parent``/``delta`` record the workspace's place in
    its generation chain; full builds of a fresh workspace use the
    defaults (generation 0, no parent).
    """
    path = Path(directory) / MANIFEST_FILE
    payload: Dict[str, object] = {
        "format": MANIFEST_FORMAT,
        "generation": generation,
        "parent": parent,
        "inputs": dict(inputs),
        "artifacts": {name: asdict(entry) for name, entry in sorted(entries.items())},
    }
    if delta is not None:
        payload["delta"] = {
            "added": list(delta.get("added", ())),
            "removed": list(delta.get("removed", ())),
        }
    validate_manifest_payload(payload, origin=str(path))
    tmp = path.with_suffix(".json.tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    tmp.replace(path)
    return path


def manifest_fingerprint(payload: Dict[str, object]) -> str:
    """SHA-256 over the canonical JSON of a manifest payload.

    This is the chaining key of the generation lineage: a child manifest
    stores the fingerprint of its parent's *entire payload*, so any
    tampering with an archived generation breaks the chain visibly.
    """
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def generation_archive_name(generation: int) -> str:
    """File name a superseded generation's manifest is archived under."""
    return f"manifest.gen-{generation}.json"


def read_generation_chain(directory: PathLike) -> List[Dict[str, object]]:
    """The manifest lineage, newest first.

    Element 0 is the live ``manifest.json``; each subsequent element is
    the archived parent (``manifest.gen-<N>.json``) whose
    :func:`manifest_fingerprint` matches the child's ``parent`` field.
    The walk stops cleanly when an archive is absent (archives may be
    pruned) and raises ``ValueError`` when a present archive does not
    match the fingerprint its child recorded, or when generation numbers
    do not descend by exactly one.
    """
    directory = Path(directory)
    payload = read_manifest(directory)
    if payload is None:
        return []
    chain: List[Dict[str, object]] = [payload]
    while True:
        child = chain[-1]
        generation = int(child.get("generation", 0))
        parent_fingerprint = child.get("parent")
        if generation == 0 or parent_fingerprint is None:
            return chain
        archive = directory / generation_archive_name(generation - 1)
        if not archive.exists():
            return chain  # older generations pruned; lineage ends here
        with open(archive, "r", encoding="utf-8") as handle:
            try:
                parent = json.load(handle)
            except json.JSONDecodeError as error:
                raise ValueError(f"{archive}: corrupt JSON ({error})") from error
        parent = validate_manifest_payload(parent, origin=str(archive))
        if manifest_fingerprint(parent) != parent_fingerprint:
            raise ValueError(
                f"{archive}: fingerprint does not match the 'parent' recorded "
                f"by generation {generation}"
            )
        if int(parent.get("generation", 0)) != generation - 1:
            raise ValueError(
                f"{archive}: generation {parent.get('generation', 0)} does not "
                f"precede child generation {generation}"
            )
        chain.append(parent)


def entries_from_payload(payload: Dict[str, object]) -> Dict[str, ManifestEntry]:
    """Typed entries from a validated manifest payload."""
    return {
        name: ManifestEntry(
            file=raw["file"],
            fingerprint=raw["fingerprint"],
            schema_version=int(raw["schema_version"]),
            deps=list(raw["deps"]),
            built_at=float(raw["built_at"]),
            wall_seconds=float(raw["wall_seconds"]),
            size_bytes=int(raw["size_bytes"]),
        )
        for name, raw in payload["artifacts"].items()
    }
