"""Unit tests for the OBO reader/writer."""

import io

import pytest

from repro.ontology.obo import read_obo, write_obo
from repro.ontology.ontology import Ontology
from repro.ontology.term import Term

SAMPLE_OBO = """format-version: 1.2
ontology: go-test

[Term]
id: GO:0008150
name: biological_process
namespace: biological_process

[Term]
id: GO:0008152
name: metabolic process
namespace: biological_process
is_a: GO:0008150 ! biological_process

[Term]
id: GO:0009987
name: cellular process
namespace: biological_process
is_a: GO:0008150 ! biological_process

[Term]
id: GO:0044237
name: cellular metabolic process
namespace: biological_process
is_a: GO:0008152 ! metabolic process
is_a: GO:0009987 ! cellular process

[Term]
id: GO:9999999
name: withdrawn thing
is_obsolete: true
is_a: GO:0008150

[Typedef]
id: part_of
name: part of
"""


class TestReadObo:
    def test_parses_terms(self):
        onto = read_obo(io.StringIO(SAMPLE_OBO))
        assert len(onto) == 4
        assert onto.term("GO:0008152").name == "metabolic process"

    def test_is_a_edges(self):
        onto = read_obo(io.StringIO(SAMPLE_OBO))
        assert set(onto.parents("GO:0044237")) == {"GO:0008152", "GO:0009987"}
        assert onto.roots == ["GO:0008150"]

    def test_obsolete_skipped_by_default(self):
        onto = read_obo(io.StringIO(SAMPLE_OBO))
        assert "GO:9999999" not in onto

    def test_obsolete_kept_when_requested(self):
        onto = read_obo(io.StringIO(SAMPLE_OBO), skip_obsolete=False)
        assert "GO:9999999" in onto

    def test_trailing_comment_stripped(self):
        onto = read_obo(io.StringIO(SAMPLE_OBO))
        assert "GO:0008150" in onto.parents("GO:0008152")

    def test_namespace_parsed(self):
        onto = read_obo(io.StringIO(SAMPLE_OBO))
        assert onto.term("GO:0008150").namespace == "biological_process"

    def test_typedef_stanza_ignored(self):
        onto = read_obo(io.StringIO(SAMPLE_OBO))
        assert "part_of" not in onto

    def test_reads_from_path(self, tmp_path):
        path = tmp_path / "sample.obo"
        path.write_text(SAMPLE_OBO, encoding="utf-8")
        onto = read_obo(path)
        assert len(onto) == 4

    def test_dangling_is_a_dropped(self):
        text = (
            "[Term]\nid: A\nname: a\n\n"
            "[Term]\nid: B\nname: b\nis_a: MISSING\nis_a: A\n"
        )
        onto = read_obo(io.StringIO(text))
        assert onto.parents("B") == ["A"]


class TestWriteObo:
    def test_round_trip(self, tmp_path):
        original = Ontology(
            [
                Term("T:1", "root thing", namespace="test"),
                Term("T:2", "child thing", namespace="test", parent_ids=("T:1",)),
            ]
        )
        path = tmp_path / "out.obo"
        write_obo(original, path)
        loaded = read_obo(path)
        assert len(loaded) == 2
        assert loaded.term("T:2").name == "child thing"
        assert loaded.parents("T:2") == ["T:1"]
        assert loaded.term("T:1").namespace == "test"

    def test_write_to_handle(self):
        onto = Ontology([Term("T:1", "solo")])
        buffer = io.StringIO()
        write_obo(onto, buffer)
        assert "id: T:1" in buffer.getvalue()
