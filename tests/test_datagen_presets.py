"""Unit tests for scale presets and builder logging."""

import logging

import pytest

from repro.datagen.presets import PRESETS, get_preset


class TestPresets:
    def test_known_names(self):
        assert {"tiny", "small", "default", "large", "paper"} <= set(PRESETS)

    def test_get_preset(self):
        assert get_preset("tiny").n_papers == 200

    def test_unknown_preset_lists_options(self):
        with pytest.raises(ValueError, match="tiny"):
            get_preset("gigantic")

    def test_scales_monotone(self):
        order = ["tiny", "small", "default", "large", "paper"]
        papers = [PRESETS[name].n_papers for name in order]
        terms = [PRESETS[name].n_terms for name in order]
        assert papers == sorted(papers)
        assert terms == sorted(terms)

    def test_tiny_preset_generates(self):
        dataset = get_preset("tiny").generate(seed=2)
        assert len(dataset.corpus) == 200
        assert len(dataset.ontology) == 40

    def test_generation_deterministic(self):
        preset = get_preset("tiny")
        a = preset.generate(seed=9)
        b = preset.generate(seed=9)
        assert [p.paper_id for p in a.corpus] == [p.paper_id for p in b.corpus]


class TestBuilderLogging:
    def test_assigners_log_summary(self, caplog, small_dataset):
        from repro.pipeline import Pipeline

        pipeline = Pipeline.from_dataset(small_dataset)
        with caplog.at_level(logging.INFO, logger="repro.core.assignment"):
            _ = pipeline.text_paper_set
            _ = pipeline.pattern_paper_set
        messages = [record.getMessage() for record in caplog.records]
        assert any("text context paper set" in m for m in messages)
        assert any("pattern context paper set" in m for m in messages)
