"""Integration tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def data_dir(tmp_path_factory):
    """A small generated dataset directory, shared by the CLI tests."""
    directory = tmp_path_factory.mktemp("cli-data")
    code = main(
        [
            "generate",
            "--papers", "150",
            "--terms", "40",
            "--seed", "5",
            "--out", str(directory),
        ]
    )
    assert code == 0
    return directory


class TestGenerate:
    def test_files_written(self, data_dir):
        assert (data_dir / "corpus.jsonl").exists()
        assert (data_dir / "ontology.obo").exists()
        assert (data_dir / "training.json").exists()

    def test_training_map_valid(self, data_dir):
        with open(data_dir / "training.json", encoding="utf-8") as handle:
            training = json.load(handle)
        assert isinstance(training, dict)
        assert any(papers for papers in training.values())

    def test_preset_generation(self, tmp_path, capsys):
        code = main(
            ["generate", "--preset", "tiny", "--seed", "2",
             "--out", str(tmp_path / "p")]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "wrote 200 papers, 40 terms" in output

    def test_deterministic(self, tmp_path):
        for out in ("a", "b"):
            main(
                [
                    "generate", "--papers", "40", "--terms", "15",
                    "--seed", "9", "--out", str(tmp_path / out),
                ]
            )
        content_a = (tmp_path / "a" / "corpus.jsonl").read_text(encoding="utf-8")
        content_b = (tmp_path / "b" / "corpus.jsonl").read_text(encoding="utf-8")
        assert content_a == content_b


class TestSearch:
    def test_search_runs(self, data_dir, capsys):
        # Derive a query that must hit: words from a term name.
        obo_text = (data_dir / "ontology.obo").read_text(encoding="utf-8")
        name_line = next(
            line for line in obo_text.splitlines()
            if line.startswith("name: ") and len(line.split()) > 3
        )
        query = " ".join(name_line.split()[1:3])
        code = main(["search", "--data", str(data_dir), "--query", query])
        output = capsys.readouterr().out
        if code == 0:
            assert "prestige=" in output
        else:
            assert "no results" in output

    def test_missing_data_dir_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["search", "--data", str(tmp_path), "--query", "x"])

    def test_selection_strategy_flag(self, data_dir, capsys):
        code = main([
            "search", "--data", str(data_dir), "--query", "anything goes",
            "--selection-strategy", "name",
        ])
        capsys.readouterr()
        assert code in (0, 1)  # parsed and served (1 = no results)

    def test_selection_strategy_rejects_unknown(self, data_dir, capsys):
        with pytest.raises(SystemExit):
            main([
                "search", "--data", str(data_dir), "--query", "x",
                "--selection-strategy", "oracle",
            ])

    def test_queries_file_batch(self, data_dir, tmp_path, capsys):
        obo_text = (data_dir / "ontology.obo").read_text(encoding="utf-8")
        names = [
            " ".join(line.split()[1:3])
            for line in obo_text.splitlines()
            if line.startswith("name: ") and len(line.split()) > 3
        ]
        queries_file = tmp_path / "queries.txt"
        queries_file.write_text(
            "# validation queries\n" + "\n".join(names[:3]) + "\n\n",
            encoding="utf-8",
        )
        code = main([
            "search", "--data", str(data_dir),
            "--queries-file", str(queries_file), "--workers", "2",
        ])
        output = capsys.readouterr().out
        assert code in (0, 1)
        for query in names[:3]:
            assert f"== {query}" in output

    def test_queries_file_missing_fails(self, data_dir):
        with pytest.raises(SystemExit, match="queries file"):
            main([
                "search", "--data", str(data_dir),
                "--queries-file", "/nonexistent/queries.txt",
            ])

    def test_query_and_queries_file_are_exclusive(self, data_dir, tmp_path):
        queries_file = tmp_path / "q.txt"
        queries_file.write_text("x\n", encoding="utf-8")
        with pytest.raises(SystemExit):
            main([
                "search", "--data", str(data_dir), "--query", "x",
                "--queries-file", str(queries_file),
            ])

    def test_one_query_source_required(self, data_dir):
        with pytest.raises(SystemExit):
            main(["search", "--data", str(data_dir)])


class TestBuild:
    def test_workspace_written(self, data_dir, capsys):
        # `precompute` is the legacy alias of `build`; both target the
        # artifact workspace under <data>/workspace.
        code = main(["precompute", "--data", str(data_dir)])
        assert code == 0
        output = capsys.readouterr().out
        from repro.workspace import ARTIFACTS

        assert f"built {len(ARTIFACTS)}" in output
        workspace = data_dir / "workspace"
        assert (workspace / "manifest.json").exists()
        assert (workspace / "text_paper_set.json").exists()
        assert (workspace / "pattern_paper_set.json").exists()
        assert (workspace / "scores_text_text.json").exists()
        assert (workspace / "scores_citation_pattern.json").exists()

    def test_artifacts_load_back(self, data_dir):
        from repro.core.io import read_prestige_scores

        scores = read_prestige_scores(
            data_dir / "workspace" / "scores_text_text.json"
        )
        assert scores.function_name == "text"
        assert len(scores) > 0

    def test_second_build_is_noop(self, data_dir, capsys):
        code = main(["build", "--data", str(data_dir)])
        assert code == 0
        output = capsys.readouterr().out
        assert "workspace is up to date (no-op)" in output

    def test_only_flag_limits_build(self, tmp_path, capsys):
        main(
            ["generate", "--papers", "60", "--terms", "15",
             "--seed", "8", "--out", str(tmp_path)]
        )
        code = main(
            ["build", "--data", str(tmp_path), "--only", "citation_graph"]
        )
        assert code == 0
        workspace = tmp_path / "workspace"
        assert (workspace / "citation_graph.json").exists()
        assert not (workspace / "index.json").exists()


class TestWorkspaceStatus:
    def test_fresh_workspace_reports_clean(self, data_dir, capsys):
        code = main(["workspace", "status", "--data", str(data_dir)])
        assert code == 0
        output = capsys.readouterr().out
        assert "all artifacts fresh" in output

    def test_unbuilt_workspace_reports_stale(self, tmp_path, capsys):
        main(
            ["generate", "--papers", "60", "--terms", "15",
             "--seed", "8", "--out", str(tmp_path)]
        )
        code = main(["workspace", "status", "--data", str(tmp_path)])
        assert code == 1
        output = capsys.readouterr().out
        assert "missing" in output
        assert "need `repro build`" in output


class TestServe:
    def test_serve_banner_reports_actual_bound_port(self, data_dir, capsys):
        """``--port 0`` must surface the resolved ephemeral port in the
        banner, never the literal 0 that was asked for."""
        import re

        code = main([
            "serve", "--data", str(data_dir), "--port", "0",
            "--for-seconds", "0.01",
        ])
        assert code == 0
        output = capsys.readouterr().out
        match = re.search(r"on http://127\.0\.0\.1:(\d+)", output)
        assert match is not None, output
        assert int(match.group(1)) != 0
        assert "/search" in output and "/admin/reload" in output

    def test_serve_answers_search_over_http(self, data_dir, capsys):
        import json
        import re
        import threading
        import time
        import urllib.request

        thread = threading.Thread(
            target=lambda: main([
                "serve", "--data", str(data_dir), "--port", "0",
                "--for-seconds", "3", "--warmup", "2",
            ]),
            daemon=True,
        )
        thread.start()
        # Poll captured output for the banner (the server thread prints
        # it once the pipeline is loaded and the socket is bound).
        deadline = time.monotonic() + 30
        port = None
        captured = ""
        while port is None and time.monotonic() < deadline:
            captured += capsys.readouterr().out
            match = re.search(r"on http://127\.0\.0\.1:(\d+)", captured)
            if match:
                port = int(match.group(1))
            else:
                time.sleep(0.05)
        assert port is not None, captured
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/search?q=anything+goes&top_k=3",
            timeout=10,
        ) as response:
            payload = json.loads(response.read())
        assert response.status == 200
        assert payload["query"] == "anything goes"
        assert isinstance(payload["hits"], list)
        thread.join(timeout=30)
        assert not thread.is_alive()


class TestEvaluate:
    def test_evaluate_runs(self, data_dir, capsys):
        code = main(["evaluate", "--data", str(data_dir), "--queries", "4"])
        assert code == 0
        output = capsys.readouterr().out
        assert "precision[text]" in output
        assert "separability[" in output


class TestValidate:
    def test_clean_generated_corpus_passes(self, data_dir, capsys):
        code = main(["validate", "--data", str(data_dir)])
        assert code == 0
        output = capsys.readouterr().out
        assert "validated" in output

    def test_dirty_corpus_fails(self, tmp_path, capsys):
        (tmp_path / "corpus.jsonl").write_text(
            '{"paper_id": "BAD", "title": ""}\n', encoding="utf-8"
        )
        code = main(["validate", "--data", str(tmp_path), "--verbose"])
        assert code == 1
        output = capsys.readouterr().out
        assert "no-text" in output

    def test_missing_corpus_file(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["validate", "--data", str(tmp_path)])


class TestTune:
    def test_tune_runs(self, data_dir, capsys):
        code = main(["tune", "--data", str(data_dir), "--queries", "4"])
        assert code == 0
        output = capsys.readouterr().out
        assert "best: w_prestige=" in output
        assert "F1=" in output


class TestIngest:
    def test_end_to_end(self, tmp_path, capsys):
        medline = tmp_path / "export.xml"
        medline.write_text(
            """<?xml version="1.0"?>
            <PubmedArticleSet>
              <PubmedArticle><MedlineCitation><PMID>100</PMID>
                <Article><ArticleTitle>metabolic process work</ArticleTitle>
                <Abstract><AbstractText>metabolic process details</AbstractText></Abstract>
                </Article></MedlineCitation></PubmedArticle>
            </PubmedArticleSet>""",
            encoding="utf-8",
        )
        obo = tmp_path / "go.obo"
        obo.write_text(
            "[Term]\nid: GO:0008150\nname: biological process\n\n"
            "[Term]\nid: GO:0008152\nname: metabolic process\n"
            "is_a: GO:0008150\n",
            encoding="utf-8",
        )
        gaf = tmp_path / "goa.gaf"
        gaf.write_text(
            "!gaf-version: 2.2\n"
            "DB\tID\tSYM\t\tGO:0008152\tPMID:100\tIDA\t\tP\t\t\tp\tt\td\ts\t\t\n"
            "DB\tID\tSYM\t\tGO:9999999\tPMID:100\tIDA\t\tP\t\t\tp\tt\td\ts\t\t\n",
            encoding="utf-8",
        )
        out = tmp_path / "data"
        code = main(
            [
                "ingest",
                "--medline", str(medline),
                "--obo", str(obo),
                "--gaf", str(gaf),
                "--out", str(out),
            ]
        )
        assert code == 0
        assert (out / "corpus.jsonl").exists()
        with open(out / "training.json", encoding="utf-8") as handle:
            training = json.load(handle)
        # Unknown GO:9999999 dropped; known term kept with the PMID.
        assert training == {"GO:0008152": ["PMID:100"]}
        # The ingested directory loads into a pipeline and searches.
        from repro.pipeline import Pipeline

        pipeline = Pipeline.from_directory(out, min_context_size=1)
        hits = pipeline.search("metabolic process")
        assert [h.paper_id for h in hits] == ["PMID:100"]


class TestObsTelemetry:
    def _queries(self, data_dir, n=3):
        obo_text = (data_dir / "ontology.obo").read_text(encoding="utf-8")
        names = [
            " ".join(line.split()[1:3])
            for line in obo_text.splitlines()
            if line.startswith("name: ") and len(line.split()) > 3
        ]
        return names[:n]

    @pytest.fixture()
    def telemetry_dump(self, data_dir, tmp_path, capsys):
        """Run a batch search with --telemetry-out and return the dump path."""
        queries_file = tmp_path / "queries.txt"
        queries_file.write_text(
            "\n".join(self._queries(data_dir)) + "\n", encoding="utf-8"
        )
        out = tmp_path / "telemetry.json"
        code = main([
            "search", "--data", str(data_dir),
            "--queries-file", str(queries_file), "--workers", "2",
            "--telemetry-out", str(out), "--sample-rate", "1.0",
        ])
        capsys.readouterr()
        assert code in (0, 1)
        return out

    def test_telemetry_out_written_with_spans(self, telemetry_dump):
        data = json.loads(telemetry_dump.read_text(encoding="utf-8"))
        assert data["enabled"] is True
        assert data["window_events"] >= 1
        (entry,) = data["slowlog"]
        assert entry["kind"] == "search_many"
        assert entry["spans"]["name"] == "request.search_many"
        assert {status["name"] for status in data["slo"]} >= {
            "search-latency-p95", "search-errors",
        }

    def test_obs_slowlog_renders_dump(self, telemetry_dump, capsys):
        code = main(["obs", "slowlog", "--file", str(telemetry_dump)])
        output = capsys.readouterr().out
        assert code == 0
        assert "#1" in output and "search_many" in output
        assert "request.search_many" in output  # span tree included

    def test_obs_slo_renders_dump(self, telemetry_dump, capsys):
        code = main(["obs", "slo", "--file", str(telemetry_dump)])
        output = capsys.readouterr().out
        assert code == 0
        assert "search-latency-p95" in output
        assert "OK" in output or "VIOLATED" in output or "no data" in output

    def test_obs_slowlog_json_format(self, telemetry_dump, capsys):
        code = main([
            "obs", "slowlog", "--file", str(telemetry_dump),
            "--format", "json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        (entry,) = payload["slowlog"]
        assert entry["kind"] == "search_many"
        assert entry["spans"]["name"] == "request.search_many"

    def test_obs_slo_json_format(self, telemetry_dump, capsys):
        code = main([
            "obs", "slo", "--file", str(telemetry_dump), "--format", "json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        names = {status["name"] for status in payload["slo"]}
        assert {"search-latency-p95", "search-errors"} <= names

    def _analytics_payload(self):
        return {
            "analytics": {
                "window_s": 600.0, "queries": 4, "qps": 0.5,
                "zero_results": 1, "counted_results": 4,
                "zero_result_rate": 0.25,
                "by_kind": {"search": 4},
                "by_function": {"text": 4},
            },
            "shadow": {
                "functions": ["citation"], "sample_rate": 1.0, "k": 10,
                "agreement": {
                    "citation": {
                        "samples": 2, "mean_jaccard": 0.9,
                        "mean_kendall_tau": 0.8,
                    },
                },
            },
            "drift": None,
        }

    def test_obs_analytics_renders_saved_payload(self, tmp_path, capsys):
        saved = tmp_path / "analytics.json"
        saved.write_text(
            json.dumps(self._analytics_payload()), encoding="utf-8"
        )
        code = main(["obs", "analytics", "--file", str(saved)])
        output = capsys.readouterr().out
        assert code == 0
        assert "zero-result rate" in output and "25.00%" in output
        assert "citation" in output and "jaccard=0.900" in output

    def test_obs_analytics_json_format_round_trips(self, tmp_path, capsys):
        saved = tmp_path / "analytics.json"
        saved.write_text(
            json.dumps(self._analytics_payload()), encoding="utf-8"
        )
        code = main([
            "obs", "analytics", "--file", str(saved), "--format", "json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["analytics"]["zero_result_rate"] == 0.25
        assert payload["shadow"]["agreement"]["citation"]["samples"] == 2

    def test_obs_analytics_requires_exactly_one_source(self, capsys):
        code = main(["obs", "analytics"])
        assert code == 1
        assert "exactly one" in capsys.readouterr().err

    def test_custom_slo_spec_flows_into_dump(
        self, data_dir, tmp_path, capsys
    ):
        out = tmp_path / "telemetry.json"
        query = self._queries(data_dir, n=1)[0]
        main([
            "search", "--data", str(data_dir), "--query", query,
            "--telemetry-out", str(out),
            "--slo", "my-p99:latency:2s:99%:60s",
        ])
        capsys.readouterr()
        data = json.loads(out.read_text(encoding="utf-8"))
        assert [status["name"] for status in data["slo"]] == ["my-p99"]

    def test_bad_slo_spec_fails_fast(self, data_dir, tmp_path):
        with pytest.raises(SystemExit, match="bad SLO spec"):
            main([
                "search", "--data", str(data_dir), "--query", "x",
                "--telemetry-out", str(tmp_path / "t.json"),
                "--slo", "nope:latency:95%",
            ])

    def test_obs_slowlog_missing_file_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["obs", "slowlog", "--file", str(tmp_path / "absent.json")])

    def test_obs_serve_smoke(self, data_dir, capsys):
        from repro.obs import get_registry

        code = main([
            "obs", "serve", "--data", str(data_dir),
            "--port", "0", "--warmup", "3", "--for-seconds", "0",
        ])
        output = capsys.readouterr().out
        assert code == 0
        assert "warmed up with 3 queries" in output
        assert "serving /metrics /health /slo /slowlog on http://" in output
        # Warmup exercised both request kinds, so a scrape would expose
        # both latency histograms (routes themselves are covered by
        # tests/test_obs_server.py).
        registry = get_registry()
        assert registry.histogram("search.run.latency").count >= 3
        assert registry.histogram("search.batch.latency").count == 1


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
