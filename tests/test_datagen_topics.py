"""Direct unit tests for the topic model (TermTopic mechanics)."""

import random

import pytest

from repro.datagen.lexicon import Lexicon
from repro.datagen.ontology_gen import OntologyGenerator
from repro.datagen.topics import TermTopic, TopicModel


class TestTermTopic:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            TermTopic("t", chunks=[("a",)], weights=[1.0, 2.0], jargon=[])

    def test_zero_mass_rejected(self):
        with pytest.raises(ValueError, match="probability mass"):
            TermTopic("t", chunks=[("a",)], weights=[0.0], jargon=[])

    def test_sampling_respects_weights(self):
        topic = TermTopic(
            "t",
            chunks=[("heavy",), ("light",)],
            weights=[9.0, 1.0],
            jargon=[],
        )
        rng = random.Random(0)
        draws = [topic.sample_chunk(rng) for _ in range(2000)]
        heavy_share = draws.count(("heavy",)) / len(draws)
        assert 0.85 < heavy_share < 0.95

    def test_single_chunk_always_sampled(self):
        topic = TermTopic("t", chunks=[("only",)], weights=[1.0], jargon=[])
        rng = random.Random(1)
        assert all(topic.sample_chunk(rng) == ("only",) for _ in range(20))


class TestTopicModel:
    @pytest.fixture(scope="class")
    def model(self):
        rng = random.Random(5)
        ontology = OntologyGenerator(n_terms=30, max_depth=4).generate(seed=5)
        return ontology, TopicModel(ontology, Lexicon(rng), rng)

    def test_len_matches_ontology(self, model):
        ontology, topics = model
        assert len(topics) == len(ontology)

    def test_unknown_term_raises(self, model):
        _, topics = model
        with pytest.raises(KeyError):
            topics.topic("T:999999")

    def test_jargon_inherited_with_lower_weight(self, model):
        """An ancestor's jargon appears in the child's chunks, but the
        child's own jargon dominates by weight (checked via sampling)."""
        ontology, topics = model
        child = next(
            tid for tid in ontology.term_ids() if ontology.level(tid) == 3
        )
        parent = ontology.parents(child)[0]
        child_topic = topics.topic(child)
        parent_jargon = set(topics.jargon_of(parent))
        own_jargon = set(topics.jargon_of(child))
        flat_chunks = {w for chunk in child_topic.chunks for w in chunk}
        assert parent_jargon & flat_chunks, "ancestor vocabulary must leak in"
        rng = random.Random(2)
        draws = [child_topic.sample_chunk(rng) for _ in range(3000)]
        own_hits = sum(1 for c in draws for w in c if w in own_jargon)
        parent_hits = sum(1 for c in draws for w in c if w in parent_jargon)
        assert own_hits > parent_hits
