"""Structured logging: one wrapper, two wire formats.

:func:`get_logger` returns an :class:`ObsLogger` whose methods take an
*event* string plus keyword fields::

    logger = get_logger(__name__)
    logger.warning("pagerank hit iteration cap", iterations=200, residual=3e-9)

The emitted line is either plain text::

    WARNING repro.citations.pagerank: pagerank hit iteration cap iterations=200 residual=3e-09

or a JSON object per line (machine-readable)::

    {"level": "warning", "logger": "repro.citations.pagerank", "event": "...", "iterations": 200, ...}

The format is chosen by (highest precedence first): an explicit
``configure_logging(json_format=...)`` call (the CLI's ``--log-json``
flag), the ``REPRO_LOG_FORMAT`` environment variable (``json`` or
``text``), else plain text.  Everything funnels through the stdlib
``logging`` tree under the ``"repro"`` root, so applications embedding
the library can silence or redirect it the usual way.
"""

from __future__ import annotations

import json
import logging
import os
import sys
from typing import Any, Dict, Optional

ROOT_LOGGER_NAME = "repro"
ENV_LOG_FORMAT = "REPRO_LOG_FORMAT"

_FIELDS_ATTR = "obs_fields"


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record; structured fields inline."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        payload.update(getattr(record, _FIELDS_ATTR, None) or {})
        return json.dumps(payload, sort_keys=False, default=str)


class TextLineFormatter(logging.Formatter):
    """``LEVEL logger: event key=value ...`` -- grep-friendly plain text."""

    def format(self, record: logging.LogRecord) -> str:
        fields = getattr(record, _FIELDS_ATTR, None) or {}
        suffix = "".join(f" {key}={value}" for key, value in fields.items())
        return f"{record.levelname} {record.name}: {record.getMessage()}{suffix}"


def _env_wants_json() -> bool:
    return os.environ.get(ENV_LOG_FORMAT, "").strip().lower() == "json"


def configure_logging(
    json_format: Optional[bool] = None,
    level: int = logging.INFO,
    stream=None,
) -> logging.Logger:
    """(Re)install the repro log handler with the chosen format.

    ``json_format=None`` defers to ``REPRO_LOG_FORMAT``.  Safe to call
    repeatedly -- the previously installed obs handler is replaced, not
    stacked.
    """
    use_json = _env_wants_json() if json_format is None else json_format
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, "_obs_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler._obs_handler = True  # type: ignore[attr-defined]
    handler.setFormatter(JsonLineFormatter() if use_json else TextLineFormatter())
    root.addHandler(handler)
    root.setLevel(level)
    return root


class ObsLogger:
    """Thin structured facade over one stdlib logger."""

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    def _log(self, level: int, event: str, fields: Dict[str, Any]) -> None:
        if self._logger.isEnabledFor(level):
            self._logger.log(level, event, extra={_FIELDS_ATTR: fields})

    def debug(self, event: str, **fields: Any) -> None:
        self._log(logging.DEBUG, event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._log(logging.INFO, event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._log(logging.WARNING, event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._log(logging.ERROR, event, fields)


def get_logger(name: str) -> ObsLogger:
    """A structured logger under the ``repro`` logging tree.

    ``name`` is typically ``__name__``; names outside the tree are
    re-rooted (``"benchmarks.x"`` becomes ``"repro.benchmarks.x"``) so
    one handler covers everything.
    """
    if name != ROOT_LOGGER_NAME and not name.startswith(ROOT_LOGGER_NAME + "."):
        name = f"{ROOT_LOGGER_NAME}.{name}"
    return ObsLogger(logging.getLogger(name))
