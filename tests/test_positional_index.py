"""Unit tests for the positional index and phrase/BM25 search features."""

import pytest

from repro.corpus.corpus import Corpus
from repro.corpus.paper import Paper, Section
from repro.index.inverted import InvertedIndex
from repro.index.positional import PositionalIndex
from repro.index.search import KeywordSearchEngine


@pytest.fixture(scope="module")
def corpus():
    return Corpus(
        [
            Paper(
                paper_id="P1",
                title="Gene expression patterns",
                abstract="Analysis of gene expression in yeast",
                body="The expression of each gene differs. Gene expression "
                "profiles were clustered.",
            ),
            Paper(
                paper_id="P2",
                title="Expression of one gene",
                abstract="The gene was expressed strongly",
                body="expression followed the gene induction protocol",
            ),
            Paper(paper_id="P3", title="Protein folding"),
        ]
    )


@pytest.fixture(scope="module")
def index(corpus):
    return PositionalIndex().index_corpus(corpus)


class TestPositions:
    def test_positions_recorded(self, index):
        # Title 'Gene expression patterns' -> gene@0, express@1, pattern@2.
        assert index.positions("P1", "gene", Section.TITLE) == [0]
        assert index.positions("P1", "express", Section.TITLE) == [1]

    def test_positions_absent_term(self, index):
        assert index.positions("P1", "zebra", Section.TITLE) == []
        assert index.positions("MISSING", "gene", Section.TITLE) == []

    def test_phrase_positions(self, index):
        assert index.phrase_positions("P1", ["gene", "express"], Section.TITLE) == [0]

    def test_phrase_positions_multiple_occurrences(self, index):
        positions = index.phrase_positions("P1", ["gene", "express"], Section.BODY)
        assert len(positions) == 1

    def test_phrase_positions_not_contiguous(self, index):
        # P2 title: 'Expression of one gene' -> 'gene express' never adjacent.
        assert index.phrase_positions("P2", ["gene", "express"], Section.TITLE) == []

    def test_phrase_frequency_sums_sections(self, index):
        # P1: title (1) + abstract (1) + body (1) = 3.
        assert index.phrase_frequency("P1", ["gene", "express"]) == 3

    def test_papers_containing_phrase(self, index):
        # Positions live in the *analysed* stream: stopwords vanish, so
        # P2's "the gene was expressed" also matches "gene express".
        assert index.papers_containing_phrase(["gene", "express"]) == ["P1", "P2"]

    def test_papers_containing_phrase_single_word(self, index):
        assert set(index.papers_containing_phrase(["gene"])) == {"P1", "P2"}

    def test_empty_phrase(self, index):
        assert index.papers_containing_phrase([]) == []
        assert index.phrase_positions("P1", [], Section.TITLE) == []


class TestQuotedPhraseSearch:
    def test_phrase_filters_results(self, index):
        engine = KeywordSearchEngine(index)
        hits = engine.search('"gene expression"')
        assert {h.paper_id for h in hits} == {"P1", "P2"}
        assert all(h.paper_id != "P3" for h in hits)

    def test_phrase_plus_free_terms(self, index):
        engine = KeywordSearchEngine(index)
        hits = engine.search('"gene expression" yeast')
        # The phrase filter keeps P1/P2; 'yeast' boosts P1 to the top.
        assert hits[0].paper_id == "P1"

    def test_unmatched_phrase_empty(self, index):
        engine = KeywordSearchEngine(index)
        assert engine.search('"folding gene"') == []

    def test_phrase_on_plain_index_raises(self, corpus):
        plain = InvertedIndex().index_corpus(corpus)
        engine = KeywordSearchEngine(plain)
        with pytest.raises(TypeError, match="PositionalIndex"):
            engine.search('"gene expression"')

    def test_plain_query_unaffected(self, index):
        engine = KeywordSearchEngine(index)
        assert engine.search("gene expression")  # no quotes, no filter


class TestBm25:
    @pytest.fixture(scope="class")
    def bm25(self, index):
        return KeywordSearchEngine(index, scoring="bm25")

    def test_scores_in_unit_interval(self, bm25):
        for hit in bm25.search("gene expression yeast"):
            assert 0.0 <= hit.score <= 1.0

    def test_relevance_ordering_sensible(self, bm25):
        hits = bm25.search("gene expression")
        ids = [h.paper_id for h in hits]
        assert ids[0] in {"P1", "P2"}
        assert "P3" not in ids

    def test_match_score_agrees_with_search(self, bm25):
        hits = {h.paper_id: h.score for h in bm25.search("gene expression")}
        assert bm25.match_score("gene expression", "P1") == pytest.approx(
            hits["P1"]
        )

    def test_differs_from_tfidf(self, index):
        tfidf = KeywordSearchEngine(index).search("gene expression")
        bm25 = KeywordSearchEngine(index, scoring="bm25").search("gene expression")
        tfidf_scores = {h.paper_id: h.score for h in tfidf}
        bm25_scores = {h.paper_id: h.score for h in bm25}
        assert tfidf_scores != bm25_scores

    def test_bm25_length_cache_invalidated_on_removal(self, corpus):
        from repro.corpus.paper import Paper

        mutable = PositionalIndex()
        for paper in corpus:
            mutable.index_paper(paper)
        engine = KeywordSearchEngine(mutable, scoring="bm25")
        engine.search("gene")  # populate the length cache
        mutable.remove_paper("P2")
        hits = engine.search("gene")
        assert all(h.paper_id != "P2" for h in hits)
        # Lengths were recomputed for the shrunken index.
        lengths, _ = engine._ensure_lengths()
        assert all(pid != "P2" for pid, _section in lengths)

    def test_validation(self, index):
        with pytest.raises(ValueError, match="scoring"):
            KeywordSearchEngine(index, scoring="lucene")
        with pytest.raises(ValueError, match="k1"):
            KeywordSearchEngine(index, scoring="bm25", k1=0.0)
        with pytest.raises(ValueError, match="k1"):
            KeywordSearchEngine(index, scoring="bm25", b=1.5)
