"""Unit tests for bibliographic coupling and co-citation."""

import pytest

from repro.citations.coupling import (
    bibliographic_coupling,
    citation_similarity,
    cocitation,
)
from repro.citations.graph import CitationGraph


@pytest.fixture
def graph():
    """P1 and P2 both cite R1, R2; P1 also cites R3.
    C1 cites both P1 and P2; C2 cites only P1."""
    return CitationGraph(
        edges=[
            ("P1", "R1"),
            ("P1", "R2"),
            ("P1", "R3"),
            ("P2", "R1"),
            ("P2", "R2"),
            ("C1", "P1"),
            ("C1", "P2"),
            ("C2", "P1"),
        ]
    )


class TestBibliographicCoupling:
    def test_common_references(self, graph):
        # |common| = 2, sizes 3 and 2 -> 2 / sqrt(6).
        assert bibliographic_coupling(graph, "P1", "P2") == pytest.approx(
            2 / (6 ** 0.5)
        )

    def test_no_references(self, graph):
        assert bibliographic_coupling(graph, "R1", "R2") == 0.0

    def test_same_paper_with_refs(self, graph):
        assert bibliographic_coupling(graph, "P1", "P1") == 1.0

    def test_same_paper_without_refs(self, graph):
        assert bibliographic_coupling(graph, "R1", "R1") == 0.0

    def test_symmetry(self, graph):
        assert bibliographic_coupling(graph, "P1", "P2") == bibliographic_coupling(
            graph, "P2", "P1"
        )


class TestCocitation:
    def test_common_citers(self, graph):
        # P1 cited by {C1, C2}, P2 by {C1}: 1 / sqrt(2).
        assert cocitation(graph, "P1", "P2") == pytest.approx(1 / (2 ** 0.5))

    def test_never_cited(self, graph):
        assert cocitation(graph, "C1", "C2") == 0.0

    def test_same_paper_cited(self, graph):
        assert cocitation(graph, "P1", "P1") == 1.0

    def test_symmetry(self, graph):
        assert cocitation(graph, "P1", "P2") == cocitation(graph, "P2", "P1")


class TestCitationSimilarity:
    def test_combination(self, graph):
        bib = bibliographic_coupling(graph, "P1", "P2")
        coc = cocitation(graph, "P1", "P2")
        assert citation_similarity(graph, "P1", "P2", bib_weight=0.7) == pytest.approx(
            0.7 * bib + 0.3 * coc
        )

    def test_extreme_weights(self, graph):
        bib = bibliographic_coupling(graph, "P1", "P2")
        coc = cocitation(graph, "P1", "P2")
        assert citation_similarity(graph, "P1", "P2", bib_weight=1.0) == pytest.approx(bib)
        assert citation_similarity(graph, "P1", "P2", bib_weight=0.0) == pytest.approx(coc)

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_weight_validation(self, graph, bad):
        with pytest.raises(ValueError):
            citation_similarity(graph, "P1", "P2", bib_weight=bad)

    def test_bounded(self, graph):
        value = citation_similarity(graph, "P1", "P2")
        assert 0.0 <= value <= 1.0
