"""Unit tests for the section-7 cross-context extension."""

import pytest

from repro.citations.graph import CitationGraph
from repro.core.context import Context, ContextPaperSet
from repro.core.extensions import (
    CrossContextCitationPrestige,
    CrossContextWeights,
    weighted_pagerank,
)
from repro.core.scores import CitationPrestige


class TestWeightedPagerank:
    def test_sums_to_one(self):
        scores = weighted_pagerank(
            ["a", "b", "c"], {("a", "b"): 1.0, ("b", "c"): 1.0}
        )
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_heavier_edge_transfers_more(self):
        scores = weighted_pagerank(
            ["src", "heavy", "light"],
            {("src", "heavy"): 10.0, ("src", "light"): 1.0},
        )
        assert scores["heavy"] > scores["light"]

    def test_zero_weight_edges_ignored(self):
        with_zero = weighted_pagerank(["a", "b"], {("a", "b"): 0.0})
        assert with_zero["a"] == pytest.approx(with_zero["b"])

    def test_empty(self):
        assert weighted_pagerank([], {}) == {}

    def test_self_loop_ignored(self):
        scores = weighted_pagerank(["a", "b"], {("a", "a"): 5.0, ("a", "b"): 1.0})
        assert scores["b"] > scores["a"]

    def test_invalid_d(self):
        with pytest.raises(ValueError):
            weighted_pagerank(["a"], {}, d=0.0)

    def test_matches_unweighted_pagerank_on_unit_weights(self):
        from repro.citations.pagerank import pagerank

        graph = CitationGraph(edges=[("a", "b"), ("b", "c"), ("c", "a"), ("a", "c")])
        unweighted = pagerank(graph).scores
        weighted = weighted_pagerank(
            sorted(graph.nodes()),
            {edge: 1.0 for edge in graph.edges()},
        )
        for node in graph.nodes():
            assert weighted[node] == pytest.approx(unweighted[node], abs=1e-6)


class TestCrossContextWeights:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            CrossContextWeights(within=0.1, related=0.5, unrelated=0.9).validate()

    def test_defaults_valid(self):
        CrossContextWeights().validate()


@pytest.fixture(scope="module")
def setup(request):
    corpus = request.getfixturevalue("tiny_corpus")
    ontology = request.getfixturevalue("tiny_ontology")
    graph = CitationGraph.from_corpus(corpus)
    paper_set = ContextPaperSet(
        ontology,
        [
            Context("met", ("M1", "M2", "M3")),
            Context("sig", ("S1", "S2")),
            Context("glu", ("M1", "M2")),
        ],
    )
    return corpus, ontology, graph, paper_set


class TestCrossContextCitationPrestige:
    def test_scores_context_papers_only(self, setup):
        corpus, ontology, graph, paper_set = setup
        scorer = CrossContextCitationPrestige(graph, ontology, paper_set)
        raw = scorer.score_context(paper_set.context("sig"))
        assert set(raw) == {"S1", "S2"}

    def test_cross_context_edge_contributes(self, setup):
        """S2 -> M1 is dropped by the baseline but graded by the extension.

        In the *met* context, the baseline sees only {M2->M1, M3->M1,
        M3->M2}.  The extension additionally routes prestige through S2 (a
        boundary paper, unrelated context), still landing on M1, so M1's
        relative share should not decrease.
        """
        corpus, ontology, graph, paper_set = setup
        baseline = CitationPrestige(graph)
        extension = CrossContextCitationPrestige(graph, ontology, paper_set)
        met = paper_set.context("met")
        base_raw = baseline.score_context(met)
        ext_raw = extension.score_context(met)
        base_rank = sorted(base_raw, key=base_raw.get, reverse=True)
        ext_rank = sorted(ext_raw, key=ext_raw.get, reverse=True)
        assert base_rank[0] == "M1"
        assert ext_rank[0] == "M1"

    def test_related_weight_exceeds_unrelated_effect(self, setup):
        corpus, ontology, graph, paper_set = setup
        generous = CrossContextCitationPrestige(
            graph,
            ontology,
            paper_set,
            weights=CrossContextWeights(within=1.0, related=1.0, unrelated=0.0),
        )
        stingy = CrossContextCitationPrestige(
            graph,
            ontology,
            paper_set,
            weights=CrossContextWeights(within=1.0, related=0.0, unrelated=0.0),
        )
        met = paper_set.context("met")
        assert set(generous.score_context(met)) == set(stingy.score_context(met))

    def test_empty_context(self, setup):
        corpus, ontology, graph, paper_set = setup
        scorer = CrossContextCitationPrestige(graph, ontology, paper_set)
        assert scorer.score_context(Context("met", ())) == {}

    def test_score_all_normalized(self, setup):
        corpus, ontology, graph, paper_set = setup
        scorer = CrossContextCitationPrestige(graph, ontology, paper_set)
        scores = scorer.score_all(paper_set)
        for context_id in scores.context_ids():
            for value in scores.of(context_id).values():
                assert 0.0 <= value <= 1.0


class TestLinGrading:
    def test_invalid_grading_rejected(self, setup):
        corpus, ontology, graph, paper_set = setup
        with pytest.raises(ValueError, match="grading"):
            CrossContextCitationPrestige(
                graph, ontology, paper_set, grading="fuzzy"
            )

    def test_lin_weights_between_bounds(self, setup):
        corpus, ontology, graph, paper_set = setup
        scorer = CrossContextCitationPrestige(
            graph, ontology, paper_set, grading="lin"
        )
        members = {"M1", "M2", "M3"}
        weight = scorer._edge_weight("met", "S2", "M1", members)
        assert scorer.weights.unrelated <= weight <= scorer.weights.within

    def test_lin_scoring_runs_end_to_end(self, setup):
        corpus, ontology, graph, paper_set = setup
        scorer = CrossContextCitationPrestige(
            graph, ontology, paper_set, grading="lin"
        )
        raw = scorer.score_context(paper_set.context("met"))
        assert set(raw) == {"M1", "M2", "M3"}

    def test_lin_vs_binary_can_differ(self, setup):
        corpus, ontology, graph, paper_set = setup
        binary = CrossContextCitationPrestige(graph, ontology, paper_set)
        lin = CrossContextCitationPrestige(
            graph, ontology, paper_set, grading="lin"
        )
        members = {"M1", "M2", "M3"}
        # Both grade the same boundary edge; values may differ but both
        # respect the schedule bounds.
        b = binary._edge_weight("met", "S2", "M1", members)
        l = lin._edge_weight("met", "S2", "M1", members)
        for value in (b, l):
            assert binary.weights.unrelated <= value <= binary.weights.within
