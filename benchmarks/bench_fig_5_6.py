"""Figure 5.6 -- pattern-score SD histograms per level (pattern paper set).

Paper observation: pattern separability is best in upper-level contexts
and degrades with depth -- parents construct more patterns than children
(more training text, more significant terms), and more patterns mean more
distinct matching scores.
"""

from conftest import write_result

from repro.eval.experiments import SeparabilityExperiment

LEVELS = (3, 5, 7)


def low_sd_share(histogram, cut=10.0):
    return sum(percent for edge, percent in histogram if edge < cut)


def test_fig_5_6_pattern_separability_by_level(benchmark, pipeline, results_dir):
    paper_set = pipeline.experiment_paper_set("pattern")
    experiment = SeparabilityExperiment(paper_set, levels=LEVELS)

    def run():
        return experiment.run(pipeline.prestige("pattern", "pattern"))

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    from repro.eval.ascii_plot import ascii_histogram

    lines = [result.format_table(), "", "per-level %contexts with SD < 10:"]
    shares = {}
    for level in LEVELS:
        shares[level] = low_sd_share(result.histogram_by_level[level])
        lines.append(f"  level {level}: {shares[level]:.1f}%")
    for level in LEVELS:
        lines.append(f"\nlevel {level} SD histogram:")
        lines.append(ascii_histogram(result.histogram_by_level[level]))
    write_result(results_dir, "fig_5_6", "\n".join(lines))

    # Upper levels separate better than the deepest level.
    assert shares[LEVELS[0]] >= shares[LEVELS[-1]], (
        f"pattern separability must degrade with depth: "
        f"{shares[LEVELS[0]]:.1f}% at level {LEVELS[0]} vs "
        f"{shares[LEVELS[-1]]:.1f}% at level {LEVELS[-1]}"
    )
