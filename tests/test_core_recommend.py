"""Unit tests for the related-work recommender."""

import pytest

from repro.citations.graph import CitationGraph
from repro.core.context import Context, ContextPaperSet
from repro.core.recommend import RelatedWorkRecommender
from repro.core.scores import TextPrestige
from repro.core.vectors import PaperVectorStore
from repro.index.inverted import InvertedIndex


@pytest.fixture(scope="module")
def recommender(request):
    corpus = request.getfixturevalue("tiny_corpus")
    ontology = request.getfixturevalue("tiny_ontology")
    index = InvertedIndex().index_corpus(corpus)
    vectors = PaperVectorStore(corpus, index.analyzer)
    graph = CitationGraph.from_corpus(corpus)
    paper_set = ContextPaperSet(
        ontology,
        [
            Context("met", ("M1", "M2", "M3")),
            Context("sig", ("S1", "S2")),
        ],
    )
    representatives = {"met": "M1", "sig": "S1"}
    prestige = TextPrestige(corpus, vectors, graph, representatives).score_all(
        paper_set
    )
    return RelatedWorkRecommender(paper_set, prestige, vectors, representatives)


DRAFT = (
    "we study glucose metabolic process regulation and glycolysis pathway "
    "flux measurements in yeast"
)


class TestClassify:
    def test_classifies_into_topical_context(self, recommender):
        matches = recommender.classify(DRAFT)
        assert matches
        assert matches[0].context_id == "met"
        assert matches[0].similarity > 0

    def test_sorted_by_similarity(self, recommender):
        matches = recommender.classify(DRAFT, max_contexts=5)
        similarities = [m.similarity for m in matches]
        assert similarities == sorted(similarities, reverse=True)

    def test_unknown_vocabulary_no_contexts(self, recommender):
        assert recommender.classify("zzz qqq unrecognised") == []

    def test_max_contexts_respected(self, recommender):
        assert len(recommender.classify(DRAFT, max_contexts=1)) == 1


class TestRecommend:
    def test_recommends_topical_papers(self, recommender):
        recommendations = recommender.recommend(DRAFT, limit=3)
        assert recommendations
        ids = [r.paper_id for r in recommendations]
        assert ids[0] in {"M1", "M2", "M3"}
        assert "X1" not in ids

    def test_scores_decompose(self, recommender):
        for r in recommender.recommend(DRAFT):
            assert r.score == pytest.approx(
                0.4 * r.prestige + 0.6 * r.similarity
            )

    def test_sorted_and_limited(self, recommender):
        recommendations = recommender.recommend(DRAFT, limit=2)
        assert len(recommendations) <= 2
        scores = [r.score for r in recommendations]
        assert scores == sorted(scores, reverse=True)

    def test_exclude_removes_known_papers(self, recommender):
        baseline = [r.paper_id for r in recommender.recommend(DRAFT)]
        filtered = recommender.recommend(DRAFT, exclude=[baseline[0]])
        assert baseline[0] not in [r.paper_id for r in filtered]

    def test_empty_for_unknown_text(self, recommender):
        assert recommender.recommend("zzz qqq") == []

    def test_weight_validation(self, recommender):
        with pytest.raises(ValueError):
            RelatedWorkRecommender(
                recommender.paper_set,
                recommender.prestige,
                recommender.vectors,
                recommender.representatives,
                w_prestige=0.0,
                w_similarity=0.0,
            )

    def test_paper_appears_once_across_contexts(self, request, recommender):
        """A paper in multiple matched contexts is merged to its best score."""
        # Extend with a context sharing M1.
        ontology = request.getfixturevalue("tiny_ontology")
        paper_set = ContextPaperSet(
            ontology,
            [
                Context("met", ("M1", "M2")),
                Context("glu", ("M1",)),
            ],
        )
        shared = RelatedWorkRecommender(
            paper_set,
            recommender.prestige,
            recommender.vectors,
            {"met": "M1", "glu": "M1"},
        )
        ids = [r.paper_id for r in shared.recommend(DRAFT, max_contexts=2)]
        assert ids.count("M1") == 1
