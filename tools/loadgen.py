#!/usr/bin/env python3
"""Closed- and open-loop HTTP load generator for the repro search service.

**Closed loop** (default): N client threads each run a closed loop
against ``GET /search`` -- issue a request, wait for the response,
immediately issue the next -- so offered load adapts to what the service
sustains (the standard way to measure *max sustainable* throughput).
Two phases:

1. **warmup** -- same loop, nothing recorded; fills the result cache,
   builds lazy substrates, and gets the thread pool to steady state;
2. **measurement** -- every request's latency and status is recorded;
   throughput = completed OK requests / measured wall-clock.

**Open loop** (``mode="open"``, requires ``rate``): arrivals are
scheduled at a constant rate independent of service speed -- arrival
``i`` fires at ``t0 + i/rate`` -- and each latency is measured from the
*scheduled* arrival time, not from when a worker thread got around to
sending it.  A closed loop silently stops offering load while the
service is slow, hiding queueing delay behind stalled clients
(*coordinated omission*); the open loop keeps the clock honest, so
latency percentiles at a fixed offered rate reflect what an outside
arrival process would actually experience.

Usable as a library (``benchmarks/test_perf_serving_http.py`` imports
:func:`run_load`) and as a CLI against any running service::

    python tools/loadgen.py --base-url http://127.0.0.1:8977 \
        --query "dna repair" --query "gene expression" \
        --clients 8 --warmup 2 --duration 10

Stdlib only; one fresh connection per request (loopback TCP setup is in
the measured latency, the same for every ranking function compared).
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def percentile(values: Sequence[float], p: float) -> Optional[float]:
    """Nearest-rank percentile (p in (0, 100]); None on no data."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(int(-(-p * len(ordered) // 100)), 1)  # ceil(p/100 * n)
    return ordered[rank - 1]


@dataclass
class LoadResult:
    """Everything one measurement phase produced."""

    clients: int
    duration_s: float
    mode: str = "closed"
    offered_rate: Optional[float] = None  # open-loop arrivals per second
    ok: int = 0
    shed: int = 0           # 429 responses
    errors: int = 0         # transport errors or non-200/429 statuses
    latencies_s: List[float] = field(default_factory=list)  # OK requests

    @property
    def requests(self) -> int:
        return self.ok + self.shed + self.errors

    @property
    def qps(self) -> float:
        """Completed-OK throughput over the measured window."""
        return self.ok / self.duration_s if self.duration_s > 0 else 0.0

    def latency_ms(self, p: float) -> Optional[float]:
        value = percentile(self.latencies_s, p)
        return None if value is None else value * 1000.0

    def format_table(self) -> str:
        def ms(p: float) -> str:
            value = self.latency_ms(p)
            return "-" if value is None else f"{value:.2f} ms"

        mode = self.mode
        if self.offered_rate is not None:
            mode += f" @ {self.offered_rate:g} req/s offered"
        return "\n".join([
            f"mode                   {mode}",
            f"clients                {self.clients}",
            f"measured window        {self.duration_s:.2f} s",
            f"requests               {self.requests}"
            f" (ok={self.ok} shed={self.shed} errors={self.errors})",
            f"sustained throughput   {self.qps:.1f} qps",
            f"latency p50            {ms(50)}",
            f"latency p95            {ms(95)}",
            f"latency p99            {ms(99)}",
        ])

    def to_dict(self) -> Dict:
        return {
            "mode": self.mode,
            "offered_rate": self.offered_rate,
            "clients": self.clients,
            "duration_s": round(self.duration_s, 3),
            "requests": self.requests,
            "ok": self.ok,
            "shed": self.shed,
            "errors": self.errors,
            "sustained_qps": round(self.qps, 3),
            "p50_ms": _round(self.latency_ms(50)),
            "p95_ms": _round(self.latency_ms(95)),
            "p99_ms": _round(self.latency_ms(99)),
        }


def _round(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(value, 3)


def _search_url(base_url: str, query: str, top_k: int, score_function: str) -> str:
    params = urllib.parse.urlencode(
        {"q": query, "top_k": top_k, "score_function": score_function}
    )
    return f"{base_url.rstrip('/')}/search?{params}"


def _one_request(url: str, timeout_s: float) -> Optional[int]:
    """Status code, or None on a transport error."""
    try:
        with urllib.request.urlopen(url, timeout=timeout_s) as response:
            response.read()
            return response.status
    except urllib.error.HTTPError as error:
        error.read()
        return error.code
    except (urllib.error.URLError, OSError, TimeoutError):
        return None


def run_load(
    base_url: str,
    queries: Sequence[str],
    clients: int = 4,
    duration_s: float = 5.0,
    warmup_s: float = 1.0,
    top_k: int = 10,
    score_function: str = "text",
    timeout_s: float = 30.0,
    mode: str = "closed",
    rate: Optional[float] = None,
) -> LoadResult:
    """Drive the service with closed or open loops; see module docs."""
    if not queries:
        raise ValueError("need at least one query")
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if mode not in ("closed", "open"):
        raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
    urls = [
        _search_url(base_url, query, top_k, score_function)
        for query in queries
    ]
    if mode == "open":
        if rate is None or rate <= 0.0:
            raise ValueError("open-loop mode needs rate > 0 (arrivals/s)")
        return _run_open_loop(
            urls, clients, duration_s, warmup_s, rate, timeout_s
        )
    if rate is not None:
        raise ValueError("rate only applies to open-loop mode")
    start_barrier = threading.Barrier(clients + 1)
    measure_started = threading.Event()
    stop = threading.Event()
    lock = threading.Lock()
    result = LoadResult(clients=clients, duration_s=0.0)

    def client_loop(client_index: int) -> None:
        position = client_index  # stagger the round-robin start points
        start_barrier.wait()
        while not stop.is_set():
            url = urls[position % len(urls)]
            position += 1
            started = time.perf_counter()
            status = _one_request(url, timeout_s)
            elapsed = time.perf_counter() - started
            if not measure_started.is_set():
                continue
            with lock:
                if status == 200:
                    result.ok += 1
                    result.latencies_s.append(elapsed)
                elif status == 429:
                    result.shed += 1
                else:
                    result.errors += 1

    threads = [
        threading.Thread(target=client_loop, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    time.sleep(warmup_s)
    measured_from = time.perf_counter()
    measure_started.set()
    time.sleep(duration_s)
    stop.set()
    measured_duration = time.perf_counter() - measured_from
    for thread in threads:
        thread.join(timeout=timeout_s + 5.0)
    result.duration_s = measured_duration
    return result


def _run_open_loop(
    urls: List[str],
    clients: int,
    duration_s: float,
    warmup_s: float,
    rate: float,
    timeout_s: float,
) -> LoadResult:
    """Constant-arrival-rate driver; latency clocked from scheduled time.

    ``clients`` worker threads pull arrival indices from a shared
    counter; arrival ``i`` is due at ``t0 + i/rate``.  A worker that
    falls behind schedule sends immediately, and the lateness stays in
    the recorded latency -- that queueing delay is exactly what
    coordinated omission would otherwise hide.  Arrivals scheduled
    during the first ``warmup_s`` are issued but not recorded.
    """
    total_s = warmup_s + duration_s
    result = LoadResult(
        clients=clients, duration_s=duration_s, mode="open", offered_rate=rate
    )
    lock = threading.Lock()
    next_arrival = [0]
    start_barrier = threading.Barrier(clients + 1)
    t0_holder: List[float] = []

    def worker() -> None:
        start_barrier.wait()
        t0 = t0_holder[0]
        while True:
            with lock:
                index = next_arrival[0]
                next_arrival[0] += 1
            scheduled = index / rate
            if scheduled >= total_s:
                return
            delay = t0 + scheduled - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            status = _one_request(urls[index % len(urls)], timeout_s)
            completed = time.perf_counter() - t0
            if scheduled < warmup_s:
                continue
            with lock:
                if status == 200:
                    result.ok += 1
                    result.latencies_s.append(completed - scheduled)
                elif status == 429:
                    result.shed += 1
                else:
                    result.errors += 1

    threads = [
        threading.Thread(target=worker, daemon=True) for _ in range(clients)
    ]
    for thread in threads:
        thread.start()
    t0_holder.append(time.perf_counter())
    start_barrier.wait()
    for thread in threads:
        thread.join(timeout=total_s + timeout_s + 5.0)
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="closed-/open-loop load generator for the repro search service"
    )
    parser.add_argument(
        "--base-url", required=True, help="e.g. http://127.0.0.1:8977"
    )
    parser.add_argument(
        "--query", action="append", default=None,
        help="query to cycle through (repeatable)",
    )
    parser.add_argument(
        "--queries-file", default=None,
        help="file with one query per line (# comments and blanks skipped)",
    )
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--duration", type=float, default=5.0, metavar="S")
    parser.add_argument("--warmup", type=float, default=1.0, metavar="S")
    parser.add_argument("--top-k", type=int, default=10)
    parser.add_argument("--score-function", default="text")
    parser.add_argument(
        "--mode", choices=("closed", "open"), default="closed",
        help="closed = max-throughput loops; open = constant arrival rate",
    )
    parser.add_argument(
        "--rate", type=float, default=None, metavar="QPS",
        help="offered arrivals per second (open-loop mode only)",
    )
    args = parser.parse_args(argv)
    if args.mode == "open" and (args.rate is None or args.rate <= 0):
        parser.error("--mode open requires --rate > 0")

    queries = list(args.query or [])
    if args.queries_file:
        with open(args.queries_file, "r", encoding="utf-8") as handle:
            queries.extend(
                line.strip()
                for line in handle
                if line.strip() and not line.lstrip().startswith("#")
            )
    if not queries:
        parser.error("pass --query and/or --queries-file")

    result = run_load(
        args.base_url,
        queries,
        clients=args.clients,
        duration_s=args.duration,
        warmup_s=args.warmup,
        top_k=args.top_k,
        score_function=args.score_function,
        mode=args.mode,
        rate=args.rate,
    )
    print(result.format_table())
    return 0 if result.errors == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
