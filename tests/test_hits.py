"""Unit tests for HITS."""

import pytest

from repro.citations.graph import CitationGraph
from repro.citations.hits import hits_scores


class TestHits:
    def test_star_authority(self):
        g = CitationGraph(edges=[("A", "HUB"), ("B", "HUB"), ("C", "HUB")])
        result = hits_scores(g)
        assert result.top_authorities(1) == ["HUB"]
        # Citing papers are pure hubs.
        assert result.hubs["A"] > result.hubs["HUB"]

    def test_bipartite_hubs_and_authorities(self):
        # Hubs {H1, H2} each cite authorities {X, Y}.
        g = CitationGraph(
            edges=[("H1", "X"), ("H1", "Y"), ("H2", "X"), ("H2", "Y")]
        )
        result = hits_scores(g)
        assert result.authorities["X"] == pytest.approx(result.authorities["Y"])
        assert result.hubs["H1"] == pytest.approx(result.hubs["H2"])
        assert result.authorities["X"] > result.authorities["H1"]

    def test_l2_normalised(self):
        g = CitationGraph(edges=[("A", "B"), ("B", "C"), ("A", "C")])
        result = hits_scores(g)
        auth_norm = sum(v * v for v in result.authorities.values())
        hub_norm = sum(v * v for v in result.hubs.values())
        assert auth_norm == pytest.approx(1.0)
        assert hub_norm == pytest.approx(1.0)

    def test_empty_graph(self):
        result = hits_scores(CitationGraph())
        assert result.authorities == {}
        assert result.converged

    def test_edgeless_graph_uniform(self):
        g = CitationGraph(nodes=["A", "B"])
        result = hits_scores(g)
        assert result.authorities["A"] == pytest.approx(result.authorities["B"])
        assert result.converged

    def test_converges_on_cycle(self):
        g = CitationGraph(edges=[("A", "B"), ("B", "C"), ("C", "A")])
        result = hits_scores(g)
        assert result.converged
        values = list(result.authorities.values())
        assert max(values) - min(values) < 1e-6

    def test_more_citations_more_authority(self):
        g = CitationGraph(
            edges=[("A", "POPULAR"), ("B", "POPULAR"), ("C", "POPULAR"), ("A", "NICHE")]
        )
        result = hits_scores(g)
        assert result.authorities["POPULAR"] > result.authorities["NICHE"]
