"""Component performance microbenchmarks.

Unlike the figure benches (single-round experiment regeneration), these
use pytest-benchmark's repeated timing to track the throughput of the
hot components: analysis, indexing, vectorisation, PageRank, pattern
scoring, and the search path.  Regressions here show up as timing shifts
in the benchmark table rather than assertion failures.
"""

import pytest

from repro.citations.pagerank import pagerank
from repro.core.patterns import score_paper_against_patterns
from repro.text.analyze import Analyzer


@pytest.fixture(scope="module")
def sample_text(dataset):
    paper = next(iter(dataset.corpus))
    return paper.all_text()


def test_perf_analyzer(benchmark, sample_text):
    """Tokenise + stopword + stem one full paper."""
    analyzer = Analyzer()
    result = benchmark(analyzer.analyze, sample_text)
    assert result


def test_perf_keyword_search(benchmark, pipeline, queries):
    """One ranked keyword query over the full corpus."""
    engine = pipeline.keyword_engine
    query = queries[0]
    result = benchmark(engine.search, query)
    assert isinstance(result, list)


def test_perf_full_vector(benchmark, pipeline):
    """Whole-paper TF-IDF vectorisation (cold cache each round)."""
    from repro.core.vectors import PaperVectorStore

    paper_id = pipeline.corpus.paper_ids()[0]
    _ = pipeline.vectors.full_model  # fit once outside the timer

    def vectorise():
        store = PaperVectorStore(pipeline.corpus, pipeline.index.analyzer)
        store._full_model = pipeline.vectors.full_model
        return store.full_vector(paper_id)

    result = benchmark(vectorise)
    assert len(result) > 0


def test_perf_context_pagerank(benchmark, pipeline):
    """PageRank on the largest context's citation subgraph."""
    biggest = max(pipeline.pattern_paper_set, key=lambda c: c.size)
    subgraph = pipeline.citation_graph.subgraph(biggest.paper_ids)
    result = benchmark(pagerank, subgraph)
    assert result.scores


def test_perf_pattern_scoring(benchmark, pipeline):
    """Score one paper against one context's pattern set."""
    assigner = pipeline.pattern_assigner
    term_id, pattern_set = next(
        (tid, ps) for tid, ps in assigner.pattern_sets.items() if len(ps) > 0
    )
    paper_id = pipeline.pattern_paper_set.context(term_id).paper_ids[0]
    result = benchmark(
        score_paper_against_patterns,
        pattern_set,
        pipeline.tokens,
        paper_id,
        True,
    )
    assert result >= 0.0


def test_perf_context_search(benchmark, pipeline, queries):
    """The full context-based search path for one query."""
    engine = pipeline.search_engine("text", "text")
    query = queries[1]
    result = benchmark(engine.search, query)
    assert isinstance(result, list)
