"""Evaluation harness: the metrics and experiment runners of sections 2/5.

- :mod:`repro.eval.ac_answer` -- A(rtificially) C(onstructed) answer sets.
- :mod:`repro.eval.metrics` -- precision, top-k% overlapping ratio,
  separability standard deviation.
- :mod:`repro.eval.experiments` -- the per-figure experiment runners.
"""

from repro.eval.ac_answer import ACAnswerBuilder, ACAnswerConfig, ACAnswerSet
from repro.eval.experiments import (
    BaselineComparison,
    BaselineComparisonExperiment,
    OverlapExperiment,
    PrecisionExperiment,
    SeparabilityExperiment,
)
from repro.eval.metrics import (
    precision,
    sd_histogram,
    separability_sd,
    topk_overlap,
)

__all__ = [
    "ACAnswerBuilder",
    "ACAnswerConfig",
    "ACAnswerSet",
    "precision",
    "topk_overlap",
    "separability_sd",
    "sd_histogram",
    "PrecisionExperiment",
    "OverlapExperiment",
    "SeparabilityExperiment",
    "BaselineComparison",
    "BaselineComparisonExperiment",
]
