"""Time-to-searchable: a 1% corpus delta vs a full rebuild.

The incremental build layer exists so a corpus update does not cost a
from-scratch pre-processing run.  This bench measures both paths to a
*searchable* state on the same final corpus:

- **delta** -- a warm pipeline absorbs the new papers through
  ``SubstrateStore.apply_delta`` (in-place index mutation, exact TF-IDF
  vocabulary update from retained count maps, canonical graph splice,
  per-context prestige patching) and answers a probe query;
- **full rebuild** -- a fresh pipeline on the final corpus computes
  everything from raw text and answers the same probe.

The corpus is generated with long repeated bodies so the workload is
tokenisation-dominant -- the regime real literature corpora live in,
and exactly the cost ``apply_delta`` avoids by re-weighting cached
per-paper term counts instead of re-analysing text.  The probe ranks
with ``citation`` prestige on the ``text`` paper set, touching index,
vectors, assignment, graph, and scores end to end.  Both paths must
return byte-identical rankings; the delta path must be at least
``FLOOR``x faster (gated by ``tools/check_bench_regression.py`` via
``BENCH_incremental_update.json``).
"""

import dataclasses
import json
import time

from conftest import write_result

from repro.corpus.corpus import Corpus
from repro.datagen import CorpusGenerator, OntologyGenerator
from repro.pipeline import Pipeline

FLOOR = 20.0
N_PAPERS = 400
N_TERMS = 16
BODY_REPEAT = 80  # long repetitive bodies: tokenisation-dominant corpus
DELTA_FRACTION = 0.01


def _dataset():
    generator = CorpusGenerator(
        n_papers=N_PAPERS,
        ontology_generator=OntologyGenerator(n_terms=N_TERMS, max_depth=4),
    )
    dataset = generator.generate(seed=7)
    papers = [
        dataclasses.replace(paper, body=" ".join([paper.body] * BODY_REPEAT))
        for paper in dataset.corpus
    ]
    return dataset, papers


def _corpus_of(papers):
    corpus = Corpus()
    for paper in papers:
        corpus.add(paper)
    return corpus


def _probe(pipeline, query):
    hits = pipeline.search(
        query, function="citation", paper_set_name="text", limit=10,
        use_cache=False,
    )
    return [(h.paper_id, h.relevancy, h.prestige, h.matching) for h in hits]


def test_perf_incremental_update(results_dir):
    dataset, papers = _dataset()
    n_delta = max(1, int(len(papers) * DELTA_FRACTION))
    base_papers, added = papers[:-n_delta], papers[-n_delta:]
    query = " ".join(papers[0].title.split()[:3])

    # Warm pipeline on the pre-delta corpus: index, vectors, graph, text
    # assignment, and citation prestige all live before the clock starts.
    warm = Pipeline(
        corpus=_corpus_of(base_papers),
        ontology=dataset.ontology,
        training_papers=dataset.training_papers,
    )
    _probe(warm, query)

    started = time.perf_counter()
    report = warm.add_papers(added)
    delta_rows = _probe(warm, query)
    delta_seconds = time.perf_counter() - started

    started = time.perf_counter()
    scratch = Pipeline(
        corpus=_corpus_of(papers),
        ontology=dataset.ontology,
        training_papers=dataset.training_papers,
    )
    scratch_rows = _probe(scratch, query)
    full_seconds = time.perf_counter() - started

    # Speed means nothing if the delta-reached substrate ranks differently.
    assert delta_rows == scratch_rows
    assert report.added == tuple(p.paper_id for p in added)

    speedup = full_seconds / max(delta_seconds, 1e-9)
    payload = {
        "papers": len(papers),
        "delta_papers": n_delta,
        "delta_seconds": round(delta_seconds, 6),
        "full_rebuild_seconds": round(full_seconds, 6),
        "speedup": round(speedup, 3),
        "floor": FLOOR,
        "index_rebuilt": report.index_rebuilt,
        "scores_patched": list(report.scores_patched),
    }
    (results_dir / "BENCH_incremental_update.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    table = "\n".join([
        f"corpus size                {len(papers)} papers "
        f"(bodies x{BODY_REPEAT})",
        f"delta size                 {n_delta} papers "
        f"({DELTA_FRACTION:.0%} of corpus)",
        f"delta time-to-searchable   {delta_seconds * 1000.0:10.1f} ms",
        f"full-rebuild to searchable {full_seconds * 1000.0:10.1f} ms",
        f"speedup                    {speedup:10.1f}x  (floor {FLOOR:.0f}x)",
        f"scores patched             {', '.join(report.scores_patched) or 'none'}",
    ])
    write_result(results_dir, "perf_incremental", table)
    assert speedup >= FLOOR
