"""Incremental corpus updates: delta semantics, caches, and generations.

Covers the delta-aware build layer end to end:

- ``Pipeline.add_papers`` / ``remove_papers`` mutate the substrates and
  invalidate the serving caches (LRU result cache + engine memo) by
  revision bump -- no stale hits survive a delta;
- a no-op delta bumps nothing;
- invalid deltas raise before any mutation;
- the ``memory`` index backend mutates in place, read-only backends take
  the documented rebuild-on-mutate fallback;
- workspace generations: manifest lineage fields, archives, chain
  validation, and the :func:`repro.workspace.ingest_delta` flow;
- ``POST /admin/ingest`` on the search service.
"""

import json

import pytest

from repro.corpus.corpus import Corpus, CorpusError
from repro.corpus.paper import Paper
from repro.pipeline import Pipeline, build_demo_pipeline


@pytest.fixture()
def pipeline():
    return build_demo_pipeline(seed=11, n_papers=60, n_terms=12)


def _new_paper(pid: str, reference: str) -> Paper:
    return Paper(
        paper_id=pid,
        title="fresh study of context based literature search",
        abstract="ranking functions for biomedical search engines",
        body="the corpus gains a new publication citing prior work",
        references=(reference,),
    )


class TestDeltaCacheInvalidation:
    def test_add_papers_invalidates_result_cache_and_engine_memo(self, pipeline):
        papers = list(pipeline.corpus)
        query = papers[0].title.split()[0]
        before_view = pipeline.serving_view
        first = pipeline.search(query, function="citation", limit=5)
        again = pipeline.search(query, function="citation", limit=5)
        assert [h.paper_id for h in first] == [h.paper_id for h in again]
        assert pipeline.serving_view.result_cache.hit_rate > 0.0  # repeat hit the LRU

        report = pipeline.add_papers([_new_paper("PDELTA01", papers[0].paper_id)])
        assert report.added == ("PDELTA01",)
        # The next search must come from a *new* serving view: fresh
        # result cache, fresh engine memo -- nothing borrowed from the
        # pre-delta snapshot can answer post-delta queries.
        pipeline.search(query, function="citation", limit=5)
        after_view = pipeline.serving_view
        assert after_view is not before_view
        assert after_view.revision > before_view.revision
        assert after_view.result_cache.hit_rate in (None, 0.0)
        assert after_view.engine_count() >= 1  # rebuilt, not carried over

    def test_removed_paper_disappears_from_results(self, pipeline):
        papers = list(pipeline.corpus)
        query = papers[0].title
        hits = pipeline.search(query, function="citation", limit=10)
        assert any(h.paper_id == papers[0].paper_id for h in hits)
        pipeline.remove_papers([papers[0].paper_id])
        hits_after = pipeline.search(query, function="citation", limit=10)
        assert all(h.paper_id != papers[0].paper_id for h in hits_after)

    def test_added_paper_becomes_searchable(self, pipeline):
        papers = list(pipeline.corpus)
        added = Paper(
            paper_id="PDELTA02",
            title="zyzzyvafold quantification methodology",
            abstract="a term no generated paper contains: zyzzyvafold",
            references=(papers[0].paper_id,),
        )
        assert not pipeline.keyword_engine.search("zyzzyvafold")
        pipeline.add_papers([added])
        keyword_hits = pipeline.keyword_engine.search("zyzzyvafold")
        assert [h.paper_id for h in keyword_hits] == ["PDELTA02"]


class TestDeltaSemantics:
    def test_noop_delta_bumps_nothing(self, pipeline):
        view = pipeline.serving_view
        revision = pipeline.substrates.revision
        report = pipeline.substrates.apply_delta()
        assert report.is_noop
        assert report.revision == revision
        assert pipeline.substrates.revision == revision
        assert pipeline.serving_view is view

    def test_single_revision_bump_per_delta(self, pipeline):
        papers = list(pipeline.corpus)
        revision = pipeline.substrates.revision
        pipeline.substrates.apply_delta(
            added_papers=[
                _new_paper("PDELTA10", papers[0].paper_id),
                _new_paper("PDELTA11", papers[1].paper_id),
            ],
            removed_ids=[papers[2].paper_id],
        )
        assert pipeline.substrates.revision == revision + 1

    def test_invalid_delta_leaves_store_untouched(self, pipeline):
        papers = list(pipeline.corpus)
        revision = pipeline.substrates.revision
        n_before = len(pipeline.corpus)
        with pytest.raises(CorpusError):
            pipeline.substrates.apply_delta(
                added_papers=[_new_paper("PDELTA20", papers[0].paper_id)],
                removed_ids=["NOT-A-PAPER"],
            )
        with pytest.raises(CorpusError):
            pipeline.add_papers([_new_paper(papers[0].paper_id, papers[1].paper_id)])
        assert pipeline.substrates.revision == revision
        assert len(pipeline.corpus) == n_before
        assert "PDELTA20" not in pipeline.corpus

    def test_replace_paper_in_one_delta(self, pipeline):
        papers = list(pipeline.corpus)
        replacement = Paper(
            paper_id=papers[0].paper_id,
            title="revised edition " + papers[0].title,
            abstract=papers[0].abstract,
            references=papers[0].references,
        )
        report = pipeline.substrates.apply_delta(
            added_papers=[replacement], removed_ids=[papers[0].paper_id]
        )
        assert report.added == (papers[0].paper_id,)
        assert report.removed == (papers[0].paper_id,)
        assert pipeline.corpus.paper(papers[0].paper_id).title.startswith(
            "revised edition"
        )


class TestIndexMutationCapability:
    def test_memory_backend_mutates_in_place(self, pipeline):
        papers = list(pipeline.corpus)
        index_before = pipeline.index
        assert index_before.supports_mutation
        report = pipeline.add_papers([_new_paper("PDELTA30", papers[0].paper_id)])
        assert not report.index_rebuilt
        assert pipeline.index is index_before
        assert pipeline.index.n_papers == len(pipeline.corpus)

    def test_readonly_backend_takes_rebuild_fallback(self, tmp_path):
        """An mmap-backed ondisk index cannot mutate in place; a delta
        replaces it through the backend's registered build hook."""
        from repro.index import backends

        pipeline = build_demo_pipeline(seed=11, n_papers=40, n_terms=10)
        papers = list(pipeline.corpus)
        spec = backends.get("ondisk")
        path = tmp_path / "index.ondisk.json"
        spec.save(pipeline.index, path)
        loaded = spec.load(path)
        try:
            assert not getattr(loaded, "supports_mutation", False)
            pipeline.substrates.install_index(loaded)
            report = pipeline.add_papers(
                [_new_paper("PDELTA31", papers[0].paper_id)]
            )
            assert report.index_rebuilt
            assert pipeline.index is not loaded
            assert pipeline.index.n_papers == len(pipeline.corpus)
        finally:
            close = getattr(loaded, "close", None)
            if callable(close):
                close()


class TestManifestGenerations:
    def _entries(self):
        return {}

    def test_legacy_manifest_reads_as_generation_zero(self, tmp_path):
        from repro.workspace.manifest import read_manifest, MANIFEST_FORMAT

        legacy = {
            "format": MANIFEST_FORMAT,
            "inputs": {"corpus": "a", "ontology": "b", "training": "c"},
            "artifacts": {},
        }
        (tmp_path / "manifest.json").write_text(json.dumps(legacy))
        payload = read_manifest(tmp_path)
        assert payload.get("generation", 0) == 0
        assert payload.get("parent") is None

    @pytest.mark.parametrize(
        "patch",
        [
            {"generation": -1},
            {"generation": 2},  # generation > 0 without a parent
            {"generation": 0, "parent": "abc"},
            {"generation": 1, "parent": "abc", "delta": {"added": []}},
            {"generation": 1, "parent": "abc", "delta": {"added": [1], "removed": []}},
        ],
    )
    def test_bad_lineage_fields_rejected(self, patch):
        from repro.workspace.manifest import (
            MANIFEST_FORMAT,
            validate_manifest_payload,
        )

        payload = {
            "format": MANIFEST_FORMAT,
            "inputs": {"corpus": "a", "ontology": "b", "training": "c"},
            "artifacts": {},
        }
        payload.update(patch)
        with pytest.raises(ValueError):
            validate_manifest_payload(payload)

    def test_broken_chain_is_detected(self, tmp_path):
        from repro.workspace.manifest import (
            MANIFEST_FORMAT,
            generation_archive_name,
            read_generation_chain,
        )

        inputs = {"corpus": "a", "ontology": "b", "training": "c"}
        parent = {
            "format": MANIFEST_FORMAT,
            "generation": 0,
            "parent": None,
            "inputs": inputs,
            "artifacts": {},
        }
        child = {
            "format": MANIFEST_FORMAT,
            "generation": 1,
            "parent": "0" * 64,  # does not match the archived parent
            "inputs": inputs,
            "artifacts": {},
            "delta": {"added": ["P1"], "removed": []},
        }
        (tmp_path / generation_archive_name(0)).write_text(json.dumps(parent))
        (tmp_path / "manifest.json").write_text(json.dumps(child))
        with pytest.raises(ValueError, match="fingerprint"):
            read_generation_chain(tmp_path)


class TestWorkspaceIngestDelta:
    @pytest.fixture()
    def built(self, tmp_path):
        pipeline = build_demo_pipeline(seed=11, n_papers=50, n_terms=10)
        pipeline.build_workspace(tmp_path)
        return pipeline, tmp_path

    def test_ingest_creates_chained_generation(self, built):
        from repro.workspace import ingest_delta
        from repro.workspace.manifest import (
            generation_archive_name,
            manifest_fingerprint,
            read_generation_chain,
            read_manifest,
        )

        pipeline, workspace = built
        parent_payload = read_manifest(workspace)
        parent_fingerprint = manifest_fingerprint(parent_payload)
        papers = list(pipeline.corpus)
        report, build_report = ingest_delta(
            pipeline,
            workspace,
            added_papers=[_new_paper("PGEN01", papers[0].paper_id)],
            removed_ids=[papers[1].paper_id],
        )
        assert not report.is_noop
        assert build_report is not None
        manifest = read_manifest(workspace)
        assert manifest["generation"] == 1
        assert manifest["parent"] == parent_fingerprint
        assert manifest["delta"] == {
            "added": ["PGEN01"],
            "removed": [papers[1].paper_id],
        }
        archived = workspace / generation_archive_name(0)
        assert archived.exists()
        chain = read_generation_chain(workspace)
        assert [int(p["generation"]) for p in chain] == [1, 0]

    def test_noop_ingest_archives_nothing(self, built):
        from repro.workspace import ingest_delta
        from repro.workspace.manifest import generation_archive_name, read_manifest

        pipeline, workspace = built
        before = read_manifest(workspace)
        report, build_report = ingest_delta(pipeline, workspace)
        assert report.is_noop
        assert build_report is None
        assert read_manifest(workspace) == before
        assert not (workspace / generation_archive_name(0)).exists()

    def test_ingest_requires_built_workspace(self, tmp_path):
        from repro.workspace import StaleWorkspaceError, ingest_delta

        pipeline = build_demo_pipeline(seed=11, n_papers=30, n_terms=8)
        with pytest.raises(StaleWorkspaceError):
            ingest_delta(pipeline, tmp_path / "empty")

    def test_reopened_workspace_scores_keep_patchability(self, built):
        """Score artifacts persist pre-propagation maps, so a hydrated
        pipeline still takes the per-context patch path on delta."""
        from repro.workspace import open_workspace

        pipeline, workspace = built
        fresh = Pipeline(
            corpus=_copy_corpus(pipeline.corpus),
            ontology=pipeline.ontology,
            training_papers=pipeline.training_papers,
        )
        open_workspace(fresh, workspace)
        papers = list(fresh.corpus)
        report = fresh.add_papers([_new_paper("PGEN02", papers[0].paper_id)])
        assert "citation/text" in report.scores_patched


def _copy_corpus(corpus: Corpus) -> Corpus:
    copy = Corpus()
    for paper in corpus:
        copy.add(paper)
    return copy


class TestHttpIngest:
    @pytest.fixture()
    def service(self, pipeline):
        from repro.serving.service import SearchService

        svc = SearchService(pipeline, port=0)
        try:
            yield svc
        finally:
            svc.stop()

    def test_ingest_applies_delta_and_swaps_view(self, pipeline, service):
        papers = list(pipeline.corpus)
        new_paper = _new_paper("PHTTP01", papers[0].paper_id)
        body = json.dumps({"add": [new_paper.to_dict()], "remove": []})
        response = service.dispatch("POST", "/admin/ingest", {}, body)
        assert response.status == 200
        payload = json.loads(response.body)
        assert payload["status"] == "ingested"
        assert payload["report"]["added"] == ["PHTTP01"]
        assert "PHTTP01" in pipeline.corpus
        assert pipeline.serving_view.revision == payload["view_revision"]

    def test_ingest_noop_and_errors(self, service):
        noop = service.dispatch(
            "POST", "/admin/ingest", {}, json.dumps({"add": [], "remove": []})
        )
        assert json.loads(noop.body)["status"] == "noop"
        assert service.dispatch("POST", "/admin/ingest", {}, None).status == 400
        assert service.dispatch("POST", "/admin/ingest", {}, "not json").status == 400
        assert (
            service.dispatch(
                "POST", "/admin/ingest", {}, json.dumps({"nope": 1})
            ).status
            == 400
        )
        unknown = service.dispatch(
            "POST", "/admin/ingest", {}, json.dumps({"remove": ["ZZMISSING"]})
        )
        assert unknown.status == 400
