"""Unit tests for the ontology DAG."""

import math

import pytest

from repro.ontology.ontology import Ontology, OntologyError
from repro.ontology.term import Term


def diamond_ontology():
    """root -> {a, b} -> c (diamond), plus leaf d under a.

        root
        /  \\
       a    b
       |\\  /
       | \\/
       d  c
    """
    return Ontology(
        [
            Term("root", "biological process"),
            Term("a", "metabolic process", parent_ids=("root",)),
            Term("b", "cellular process", parent_ids=("root",)),
            Term("c", "glucose metabolic process", parent_ids=("a", "b")),
            Term("d", "lipid storage", parent_ids=("a",)),
        ]
    )


class TestConstruction:
    def test_duplicate_id_rejected(self):
        with pytest.raises(OntologyError, match="duplicate"):
            Ontology([Term("x", "one"), Term("x", "two")])

    def test_unknown_parent_rejected(self):
        with pytest.raises(OntologyError, match="unknown parent"):
            Ontology([Term("x", "child", parent_ids=("ghost",))])

    def test_cycle_rejected(self):
        with pytest.raises(OntologyError):
            Ontology(
                [
                    Term("a", "a", parent_ids=("b",)),
                    Term("b", "b", parent_ids=("a",)),
                ]
            )

    def test_len_and_contains(self):
        onto = diamond_ontology()
        assert len(onto) == 5
        assert "c" in onto and "zzz" not in onto

    def test_unknown_term_lookup(self):
        with pytest.raises(OntologyError, match="unknown term"):
            diamond_ontology().term("missing")


class TestHierarchy:
    @pytest.fixture
    def onto(self):
        return diamond_ontology()

    def test_roots(self, onto):
        assert onto.roots == ["root"]

    def test_parents_children(self, onto):
        assert onto.parents("c") == ["a", "b"]
        assert onto.children("a") == ["c", "d"]
        assert onto.children("c") == []

    def test_ancestors(self, onto):
        assert onto.ancestors("c") == {"a", "b", "root"}
        assert onto.ancestors("c", include_self=True) == {"a", "b", "c", "root"}
        assert onto.ancestors("root") == set()

    def test_descendants(self, onto):
        assert onto.descendants("root") == {"a", "b", "c", "d"}
        assert onto.descendants("a") == {"c", "d"}
        assert onto.descendants("a", include_self=True) == {"a", "c", "d"}

    def test_is_ancestor(self, onto):
        assert onto.is_ancestor("root", "c")
        assert onto.is_ancestor("a", "c")
        assert not onto.is_ancestor("c", "a")
        assert not onto.is_ancestor("a", "a")

    def test_hierarchically_related(self, onto):
        assert onto.are_hierarchically_related("a", "c")
        assert onto.are_hierarchically_related("c", "a")
        assert onto.are_hierarchically_related("a", "a")
        assert not onto.are_hierarchically_related("a", "b")

    def test_levels_root_is_one(self, onto):
        assert onto.level("root") == 1
        assert onto.level("a") == 2
        assert onto.level("c") == 3

    def test_level_uses_shortest_path(self):
        # c has parents at level 1 (root) and level 2 (a): min path wins.
        onto = Ontology(
            [
                Term("root", "r"),
                Term("a", "a", parent_ids=("root",)),
                Term("c", "c", parent_ids=("root", "a")),
            ]
        )
        assert onto.level("c") == 2

    def test_terms_at_level(self, onto):
        assert onto.terms_at_level(2) == ["a", "b"]
        assert onto.terms_at_level(99) == []

    def test_max_level(self, onto):
        assert onto.max_level == 3

    def test_multiple_roots(self):
        onto = Ontology([Term("r1", "one"), Term("r2", "two")])
        assert onto.roots == ["r1", "r2"]
        assert onto.level("r2") == 1


class TestInformationContent:
    @pytest.fixture
    def onto(self):
        return diamond_ontology()

    def test_p_counts_self(self, onto):
        # c is a leaf: p = 1/5.
        assert onto.p("c") == pytest.approx(1 / 5)
        # a reaches {a, c, d}: p = 3/5.
        assert onto.p("a") == pytest.approx(3 / 5)
        # root reaches everything: p = 1.
        assert onto.p("root") == pytest.approx(1.0)

    def test_diamond_not_double_counted(self, onto):
        # root reaches c through both a and b, but c counts once.
        assert onto.p("root") == pytest.approx(1.0)

    def test_information_content(self, onto):
        assert onto.information_content("root") == pytest.approx(0.0)
        assert onto.information_content("c") == pytest.approx(math.log(5))

    def test_ic_anti_monotone_on_chain(self, onto):
        assert onto.information_content("root") <= onto.information_content("a")
        assert onto.information_content("a") <= onto.information_content("c")

    def test_rate_of_decay_in_unit_interval(self, onto):
        decay = onto.rate_of_decay("a", "c")
        assert 0.0 < decay < 1.0

    def test_rate_of_decay_from_root_is_zero(self, onto):
        assert onto.rate_of_decay("root", "c") == 0.0

    def test_rate_of_decay_requires_ancestry(self, onto):
        with pytest.raises(OntologyError, match="not an ancestor"):
            onto.rate_of_decay("a", "b")


class TestTraversal:
    def test_walk_breadth_first_from_root(self):
        onto = diamond_ontology()
        order = list(onto.walk_breadth_first())
        assert order[0] == "root"
        assert set(order) == {"root", "a", "b", "c", "d"}
        # Level 2 terms appear before level 3 terms.
        assert order.index("a") < order.index("c")

    def test_walk_from_subtree(self):
        onto = diamond_ontology()
        assert set(onto.walk_breadth_first("a")) == {"a", "c", "d"}


class TestTerm:
    def test_name_words(self):
        term = Term("GO:1", "RNA polymerase II transcription factor activity")
        assert term.name_words() == (
            "rna",
            "polymerase",
            "ii",
            "transcription",
            "factor",
            "activity",
        )

    def test_str(self):
        assert str(Term("GO:1", "DNA repair")) == "GO:1 (DNA repair)"
