"""Synthetic GO-like ontology generation.

Grows a DAG top-down from one root.  Child term names are *compositional*:
a child prepends (or inserts) modifier words into its parent's name, so

    root:     "biological process"
    level 2:  "metabolic process"
    level 3:  "glucose metabolic process"
    level 4:  "negative glucose metabolic process"

This reproduces the naming structure behind the paper's pattern-score
observations (section 5.2's "RNA polymerase II transcription factor
activity" example): siblings differ in one high-information modifier,
children of a term share most of its words, and term names get longer and
more selective with depth.

A small fraction of non-root terms get a second parent, making the result
a genuine DAG like GO rather than a tree.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.datagen.lexicon import TERM_HEADS, TERM_MODIFIERS
from repro.ontology.ontology import Ontology
from repro.ontology.term import Term


@dataclass
class OntologyGenerator:
    """Parameters for synthetic ontology growth.

    Attributes
    ----------
    n_terms:
        Total number of terms to generate (including the root).
    max_depth:
        Maximum level (root = 1).  Growth stops descending past this.
    min_children, max_children:
        Fan-out range for terms that get children.
    second_parent_probability:
        Chance a non-root term receives an extra parent from the previous
        level (creates the DAG diamonds GO has).
    """

    n_terms: int = 200
    max_depth: int = 7
    min_children: int = 2
    max_children: int = 5
    second_parent_probability: float = 0.08

    def generate(self, seed: int = 0) -> Ontology:
        """Generate a seeded ontology with ``n_terms`` terms."""
        if self.n_terms < 1:
            raise ValueError(f"n_terms must be >= 1, got {self.n_terms}")
        if self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {self.max_depth}")
        rng = random.Random(seed)
        terms: List[Term] = [Term(self._term_id(0), "biological process")]
        # Track (term index, level, name words) of expandable frontier terms.
        frontier: List[int] = [0]
        levels = {0: 1}
        modifiers_unused = {0: list(TERM_MODIFIERS)}
        rng.shuffle(modifiers_unused[0])

        while len(terms) < self.n_terms and frontier:
            # Expand a random frontier term (biased to shallower terms so the
            # ontology fills level by level rather than one deep chain).
            frontier.sort(key=lambda i: levels[i])
            parent_index = frontier.pop(0)
            parent = terms[parent_index]
            parent_level = levels[parent_index]
            if parent_level >= self.max_depth:
                continue
            n_children = rng.randint(self.min_children, self.max_children)
            n_children = min(n_children, self.n_terms - len(terms))
            available = modifiers_unused[parent_index]
            for _ in range(n_children):
                child_index = len(terms)
                name = self._child_name(rng, parent.name, available)
                parent_ids = [parent.term_id]
                if (
                    rng.random() < self.second_parent_probability
                    and parent_level >= 2
                ):
                    extra = self._extra_parent(rng, terms, levels, parent_level,
                                               parent.term_id)
                    if extra is not None:
                        parent_ids.append(extra)
                terms.append(
                    Term(
                        self._term_id(child_index),
                        name,
                        parent_ids=tuple(parent_ids),
                    )
                )
                levels[child_index] = parent_level + 1
                child_modifiers = list(TERM_MODIFIERS)
                rng.shuffle(child_modifiers)
                modifiers_unused[child_index] = child_modifiers
                frontier.append(child_index)
        return Ontology(terms)

    @staticmethod
    def _term_id(index: int) -> str:
        return f"T:{index:06d}"

    @staticmethod
    def _child_name(
        rng: random.Random, parent_name: str, unused_modifiers: List[str]
    ) -> str:
        """Prefix the parent's name with a modifier unused among siblings.

        Falls back to doubled modifiers if the pool runs dry (possible for
        extremely wide fan-outs), keeping names distinct.
        """
        if unused_modifiers:
            modifier = unused_modifiers.pop()
        else:
            modifier = f"{rng.choice(TERM_MODIFIERS)} {rng.choice(TERM_MODIFIERS)}"
        return f"{modifier} {parent_name}"

    @staticmethod
    def _extra_parent(
        rng: random.Random,
        terms: Sequence[Term],
        levels: dict,
        child_parent_level: int,
        primary_parent: str,
    ) -> Optional[str]:
        """Pick a second parent at the same level as the primary parent."""
        candidates = [
            terms[i].term_id
            for i, level in levels.items()
            if level == child_parent_level and terms[i].term_id != primary_parent
        ]
        if not candidates:
            return None
        return rng.choice(candidates)


def default_head_for_depth(rng: random.Random) -> str:
    """Uniform draw over term heads (exposed for tests/extensions)."""
    return rng.choice(TERM_HEADS)
