"""Artifact declarations: the nodes of the workspace build graph.

Each :class:`Artifact` bundles everything the builder needs to treat one
pipeline substrate as a first-class build product:

- ``build(pipeline)``   -- produce the object (delegates to the
  pipeline's lazily-memoised properties, so dependency objects installed
  beforehand are reused, never rebuilt);
- ``save(obj, path)`` / ``load(path, pipeline)`` -- the typed codec
  (format-tagged JSON; see :mod:`repro.core.io`);
- ``install(pipeline, obj)`` -- hydrate the substrate store's slot so
  later property accesses short-circuit (and the serving layer sees the
  revision bump);
- ``deps`` -- upstream artifact names (fingerprints chain through them);
- ``config_keys`` -- the pipeline parameters the artifact's content
  depends on (changing any other parameter leaves it fresh).

The registry :data:`ARTIFACTS` is declaration-ordered and already
topologically sorted; :func:`topological_order` re-derives the order from
the declared edges and is what the builder actually uses, so a future
out-of-order declaration cannot corrupt builds.

Score artifacts are **derived from the scoring registry**
(:mod:`repro.scoring`): each registered function contributes one
``scores_<function>_<paper_set>`` artifact per declared paper set, whose
fingerprint dependencies are the paper-set artifact plus the spec's
``substrates``.  :data:`ARTIFACTS` is a live mapping that re-derives
itself whenever the scoring registry changes, so registering a plugin
function gets it fingerprinted persistence with no edits here.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro import scoring
from repro.core import io as core_io


@dataclass(frozen=True)
class Artifact:
    """One node of the artifact graph (see module docstring)."""

    name: str
    filename: str
    schema_version: int
    build: Callable
    save: Callable
    load: Callable
    install: Callable
    #: Is the object already live in the pipeline's cache slot?
    installed: Callable = lambda pipeline: False
    deps: Tuple[str, ...] = ()
    config_keys: Tuple[str, ...] = ()
    description: str = ""


def _score_artifact(function: str, paper_set_name: str, deps: Tuple[str, ...]) -> Artifact:
    key = f"{function}/{paper_set_name}"

    def install(pipeline, scores):
        pipeline.substrates.install_scores(key, scores)

    return Artifact(
        name=f"scores_{function}_{paper_set_name}",
        filename=f"scores_{function}_{paper_set_name}.json",
        schema_version=1,
        build=lambda pipeline: pipeline.prestige(function, paper_set_name),
        save=core_io.write_prestige_scores,
        load=lambda path, pipeline: core_io.read_prestige_scores(path),
        install=install,
        installed=lambda pipeline: key in pipeline._scores,
        deps=deps,
        description=f"{function} prestige scores on the {paper_set_name} paper set",
    )


def _build_index(pipeline):
    return pipeline.index


def _save_index(index, path):
    """Persist the index through its producing backend's codec.

    Backend build/load functions stamp their objects with
    ``backend_name`` (see :mod:`repro.index.backends`), so a pipeline
    configured with ``index_backend='ondisk'`` packs binary postings
    here while the default keeps writing the original JSON snapshot.
    """
    from repro.index import backends

    backends.save_index(index, path)


def _load_index(path, pipeline):
    """Open the index with whichever backend's codec wrote the file.

    Dispatch is by the artifact's format tag, not the pipeline's
    configured default -- lazy formats (ondisk) therefore open lazily
    (mmap + header parse, no postings decode) on every reader.
    """
    from repro.index import backends

    return backends.open_index(path)


def _install_index(pipeline, index):
    pipeline._index = index


def _build_tokens(pipeline):
    tokens = pipeline.tokens
    tokens.warm()
    return tokens


def _install_tokens(pipeline, tokens):
    pipeline._tokens = tokens


def _build_vectors(pipeline):
    vectors = pipeline.vectors
    vectors.warm()
    return vectors


def _install_vectors(pipeline, vectors):
    pipeline._vectors = vectors


def _install_graph(pipeline, graph):
    pipeline._graph = graph


def _install_text_paper_set(pipeline, paper_set):
    pipeline._text_paper_set = paper_set


def _install_pattern_paper_set(pipeline, paper_set):
    pipeline._pattern_paper_set = paper_set


def _install_representatives(pipeline, representatives):
    pipeline._representatives = dict(representatives)


#: The structural artifacts every pipeline shares (declaration order is
#: a valid build order).  Score artifacts are appended dynamically from
#: the scoring registry -- see :class:`_ArtifactRegistry`.
_BASE_ARTIFACTS: Tuple[Artifact, ...] = (
    Artifact(
        name="index",
        filename="index.json",
        schema_version=1,
        build=_build_index,
        save=_save_index,
        load=_load_index,
        install=_install_index,
        installed=lambda pipeline: pipeline._index is not None,
        config_keys=("index_backend",),
        description="section-aware inverted index over the corpus",
    ),
    Artifact(
        name="tokens",
        filename="tokens.json",
        schema_version=1,
        build=_build_tokens,
        save=core_io.write_token_cache,
        load=lambda path, pipeline: core_io.read_token_cache(
            path, pipeline.corpus, pipeline.index.analyzer
        ),
        install=_install_tokens,
        installed=lambda pipeline: pipeline._tokens is not None,
        deps=("index",),
        description="analysed token sequences per (paper, section)",
    ),
    Artifact(
        name="vectors",
        filename="vectors.json",
        schema_version=1,
        build=_build_vectors,
        save=core_io.write_vector_store,
        load=lambda path, pipeline: core_io.read_vector_store(
            path, pipeline.corpus, pipeline.index.analyzer
        ),
        install=_install_vectors,
        installed=lambda pipeline: pipeline._vectors is not None,
        deps=("index",),
        description="fitted TF-IDF models + whole-paper vectors",
    ),
    Artifact(
        name="citation_graph",
        filename="citation_graph.json",
        schema_version=1,
        build=lambda pipeline: pipeline.citation_graph,
        save=core_io.write_citation_graph,
        load=lambda path, pipeline: core_io.read_citation_graph(path),
        install=_install_graph,
        installed=lambda pipeline: pipeline._graph is not None,
        description="corpus-wide directed citation graph",
    ),
    Artifact(
        name="text_paper_set",
        filename="text_paper_set.json",
        schema_version=1,
        build=lambda pipeline: pipeline.text_paper_set,
        save=core_io.write_context_paper_set,
        load=lambda path, pipeline: core_io.read_context_paper_set(
            path, pipeline.ontology
        ),
        install=_install_text_paper_set,
        installed=lambda pipeline: pipeline._text_paper_set is not None,
        deps=("index", "vectors"),
        config_keys=("text_similarity_threshold",),
        description="text-based context paper set (section 4)",
    ),
    Artifact(
        name="pattern_paper_set",
        filename="pattern_paper_set.json",
        schema_version=1,
        build=lambda pipeline: pipeline.pattern_paper_set,
        save=core_io.write_context_paper_set,
        load=lambda path, pipeline: core_io.read_context_paper_set(
            path, pipeline.ontology
        ),
        install=_install_pattern_paper_set,
        installed=lambda pipeline: pipeline._pattern_paper_set is not None,
        deps=("index", "tokens"),
        description="pattern-based context paper set (section 4)",
    ),
    Artifact(
        name="representatives",
        filename="representatives.json",
        schema_version=1,
        build=lambda pipeline: pipeline.representatives,
        save=core_io.write_representatives,
        load=lambda path, pipeline: core_io.read_representatives(path),
        install=_install_representatives,
        installed=lambda pipeline: pipeline._representatives is not None,
        deps=("text_paper_set", "vectors"),
        description="representative paper per text-set context",
    ),
)


def _derive_artifacts() -> Dict[str, Artifact]:
    """Base artifacts + one score artifact per registry evaluation arm.

    A score artifact's fingerprint dependencies are the paper-set
    artifact followed by the spec's declared ``substrates`` -- the same
    (order-preserving) chains the pre-registry declarations used, so
    existing workspace fingerprints stay valid.
    """
    registry: Dict[str, Artifact] = {
        artifact.name: artifact for artifact in _BASE_ARTIFACTS
    }
    for spec in scoring.specs():
        for paper_set_name in spec.paper_sets:
            artifact = _score_artifact(
                spec.name,
                paper_set_name,
                deps=(f"{paper_set_name}_paper_set",) + spec.substrates,
            )
            registry[artifact.name] = artifact
    return registry


class _ArtifactRegistry(Mapping):
    """A live, read-only mapping view of the artifact graph.

    Re-derives its contents whenever the scoring registry's revision
    moves, so plugin registrations (including test-scoped
    ``temporary_registration``) appear -- and disappear -- without any
    caller holding a stale snapshot.
    """

    def __init__(self) -> None:
        self._cached: Dict[str, Artifact] = {}
        self._cached_revision: Optional[int] = None

    def _snapshot(self) -> Dict[str, Artifact]:
        revision = scoring.registry_revision()
        if revision != self._cached_revision:
            self._cached = _derive_artifacts()
            self._cached_revision = revision
        return self._cached

    def __getitem__(self, name: str) -> Artifact:
        return self._snapshot()[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._snapshot())

    def __len__(self) -> int:
        return len(self._snapshot())


#: Declaration-ordered artifact registry (already a valid build order),
#: kept in sync with the scoring registry automatically.
ARTIFACTS: Mapping = _ArtifactRegistry()


def artifact_names() -> List[str]:
    """Every registered artifact name, in declaration order."""
    return list(ARTIFACTS)


def topological_order(targets: Optional[Iterable[str]] = None) -> List[str]:
    """Dependency-closed build order for ``targets`` (default: everything).

    Raises ``KeyError`` for unknown names and ``ValueError`` on a
    dependency cycle (cannot happen with the shipped registry; guards
    future edits).
    """
    requested = list(targets) if targets is not None else artifact_names()
    for name in requested:
        if name not in ARTIFACTS:
            raise KeyError(
                f"unknown artifact {name!r}; known: {', '.join(ARTIFACTS)}"
            )
    order: List[str] = []
    visiting: set = set()
    done: set = set()

    def visit(name: str) -> None:
        if name in done:
            return
        if name in visiting:
            raise ValueError(f"artifact dependency cycle through {name!r}")
        visiting.add(name)
        for dep in ARTIFACTS[name].deps:
            visit(dep)
        visiting.discard(name)
        done.add(name)
        order.append(name)

    for name in requested:
        visit(name)
    return order
