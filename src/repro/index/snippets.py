"""Query-aware result snippets.

A digital-library front end shows each hit with a fragment of text around
the query terms.  :func:`best_snippet` picks the window of a paper with
the densest coverage of (analysed) query terms, preferring abstracts over
bodies, and returns the *original* (unanalysed) words so the snippet
reads naturally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.corpus.paper import Paper, Section
from repro.text.analyze import Analyzer, default_analyzer
from repro.text.tokenize import tokenize

#: Sections tried in order; the first with any query-term hit wins ties.
SNIPPET_SECTIONS: Tuple[Section, ...] = (
    Section.ABSTRACT,
    Section.BODY,
    Section.TITLE,
)


@dataclass(frozen=True)
class Snippet:
    """A display fragment with match bookkeeping."""

    text: str
    section: Section
    matched_terms: int

    def __str__(self) -> str:
        return self.text


def best_snippet(
    paper: Paper,
    query: str,
    window: int = 20,
    analyzer: Optional[Analyzer] = None,
    sections: Sequence[Section] = SNIPPET_SECTIONS,
) -> Optional[Snippet]:
    """The ``window``-word fragment covering the most distinct query terms.

    Returns None when no section contains any query term.  Ellipses mark
    truncation on either side.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    analyzer = analyzer if analyzer is not None else default_analyzer()
    query_terms = set(analyzer.analyze(query))
    if not query_terms:
        return None

    best: Optional[Snippet] = None
    for section in sections:
        raw_words = tokenize(paper.section_text(section), lowercase=False)
        if not raw_words:
            continue
        # Analyse word-by-word so display words align with analysed terms:
        # a raw word matches if its analysed form is a query term.
        hits = [
            i
            for i, word in enumerate(raw_words)
            if (analyzed := analyzer.analyze_tokens([word.lower()]))
            and analyzed[0] in query_terms
        ]
        if not hits:
            continue
        start, matched = _densest_window(raw_words, hits, window, analyzer, query_terms)
        end = min(start + window, len(raw_words))
        prefix = "... " if start > 0 else ""
        suffix = " ..." if end < len(raw_words) else ""
        candidate = Snippet(
            text=prefix + " ".join(raw_words[start:end]) + suffix,
            section=section,
            matched_terms=matched,
        )
        if best is None or candidate.matched_terms > best.matched_terms:
            best = candidate
    return best


def _densest_window(
    raw_words: List[str],
    hit_positions: List[int],
    window: int,
    analyzer: Analyzer,
    query_terms: set,
) -> Tuple[int, int]:
    """(start, distinct-term count) of the best window over the hits."""
    best_start = max(hit_positions[0] - window // 4, 0)
    best_count = 0
    for anchor in hit_positions:
        start = max(anchor - window // 4, 0)
        end = min(start + window, len(raw_words))
        distinct = set()
        for word in raw_words[start:end]:
            analyzed = analyzer.analyze_tokens([word.lower()])
            if analyzed and analyzed[0] in query_terms:
                distinct.add(analyzed[0])
        if len(distinct) > best_count:
            best_count = len(distinct)
            best_start = start
    return best_start, best_count
