"""Tests for the pluggable score-function registry.

The acceptance test of the plugin seam: registering a toy score
function must surface it in the CLI ``--function`` choices, the
workspace artifact list, and the evaluation sweeps *without modifying
any core module* -- and unregistering must remove every trace.
"""

from typing import Dict

import pytest

from repro import scoring
from repro.cli import build_parser
from repro.core.context import Context
from repro.core.scores import (
    CitationPrestige,
    NORMALIZERS,
    PrestigeScoreFunction,
    TextPrestige,
)
from repro.pipeline import build_demo_pipeline
from repro.scoring import CombinedPrestige, ScoreFunctionSpec
from repro.workspace import ARTIFACTS


class ToyPrestige(PrestigeScoreFunction):
    """Every paper equally prestigious -- the minimal valid scorer."""

    name = "toy"
    normalization = "none"

    def score_context(self, context: Context) -> Dict[str, float]:
        return {paper_id: 1.0 for paper_id in context.paper_ids}


def _toy_spec(**overrides) -> ScoreFunctionSpec:
    fields = dict(
        name="toy",
        factory=lambda substrates: ToyPrestige(),
        substrates=(),
        paper_sets=("text",),
        description="uniform prestige (test fixture)",
    )
    fields.update(overrides)
    return ScoreFunctionSpec(**fields)


class TestRegistryBasics:
    def test_builtins_registered_in_order(self):
        assert scoring.function_names() == (
            "text", "citation", "pattern", "hits", "combined",
        )

    def test_evaluation_arms_follow_registration_order(self):
        assert scoring.evaluation_arms() == (
            ("text", "text"),
            ("citation", "text"),
            ("citation", "pattern"),
            ("pattern", "pattern"),
            ("combined", "text"),
        )

    def test_hits_is_searchable_but_not_swept(self):
        spec = scoring.get("hits")
        assert spec.paper_sets == ()
        assert spec.arms() == []
        assert "hits" in scoring.function_names()
        assert all(fn != "hits" for fn, _ in scoring.evaluation_arms())

    def test_overlap_pairs_are_the_figure_53_grid(self):
        assert scoring.overlap_pairs() == (
            ("text", "citation"),
            ("text", "pattern"),
            ("citation", "pattern"),
        )

    def test_get_unknown_names_known_functions(self):
        with pytest.raises(ValueError, match="unknown prestige function"):
            scoring.get("pagerank2")
        with pytest.raises(ValueError, match="citation"):
            scoring.get("pagerank2")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            scoring.register(_toy_spec(name="text"))

    def test_unregister_unknown_rejected(self):
        with pytest.raises(ValueError, match="not registered"):
            scoring.unregister("nope")

    def test_invalid_names_rejected(self):
        for bad in ("", "Text", "9lives", "has-dash", "has space"):
            with pytest.raises(ValueError, match="must match"):
                _toy_spec(name=bad)

    def test_unknown_paper_set_rejected(self):
        with pytest.raises(ValueError, match="unknown paper set"):
            _toy_spec(paper_sets=("full",))

    def test_non_callable_factory_rejected(self):
        with pytest.raises(ValueError, match="not callable"):
            _toy_spec(factory=None)


class TestTemporaryRegistration:
    def test_revision_bumps_on_mutation(self):
        before = scoring.registry_revision()
        with scoring.temporary_registration(_toy_spec()):
            assert scoring.registry_revision() > before
        assert scoring.registry_revision() > before

    def test_restores_shadowed_spec(self):
        original = scoring.get("text")
        with scoring.temporary_registration(
            _toy_spec(name="text"), replace=True
        ):
            assert scoring.get("text").description == "uniform prestige (test fixture)"
        assert scoring.get("text") is original

    def test_shadowing_requires_replace(self):
        with pytest.raises(ValueError, match="already registered"):
            with scoring.temporary_registration(_toy_spec(name="text")):
                pass  # pragma: no cover

    def test_unregisters_on_exception(self):
        with pytest.raises(RuntimeError):
            with scoring.temporary_registration(_toy_spec()):
                raise RuntimeError("boom")
        assert not scoring.is_registered("toy")


class TestPluginSeam:
    """One registration, zero core edits -- everything derives."""

    def test_toy_function_joins_every_derived_surface(self):
        assert not scoring.is_registered("toy")
        assert "scores_toy_text" not in ARTIFACTS
        with scoring.temporary_registration(_toy_spec()):
            # CLI: both --function choice lists accept it.
            parser = build_parser()
            for subcommand in ("search", "tune"):
                args = parser.parse_args(
                    [subcommand, "--data", "d", "--query", "q",
                     "--function", "toy"]
                    if subcommand == "search"
                    else [subcommand, "--data", "d", "--function", "toy"]
                )
                assert args.function == "toy"
            # Evaluation sweep: the toy arm is appended.
            assert ("toy", "text") in scoring.evaluation_arms()
            # Workspace: a fingerprinted score artifact is derived.
            artifact = ARTIFACTS["scores_toy_text"]
            assert artifact.deps == ("text_paper_set",)
            assert "scores_toy_text" in ARTIFACTS
        # Teardown removes every trace.
        assert "scores_toy_text" not in ARTIFACTS
        assert ("toy", "text") not in scoring.evaluation_arms()
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["search", "--data", "d", "--query", "q", "--function", "toy"]
            )

    def test_substrates_become_artifact_deps(self):
        spec = _toy_spec(substrates=("citation_graph", "vectors"))
        with scoring.temporary_registration(spec):
            artifact = ARTIFACTS["scores_toy_text"]
            assert artifact.deps == (
                "text_paper_set", "citation_graph", "vectors",
            )

    def test_toy_function_searches_end_to_end(self):
        pipeline = build_demo_pipeline(seed=11, n_papers=60, n_terms=20)
        with scoring.temporary_registration(_toy_spec()):
            scores = pipeline.prestige("toy", "text")
            assert scores.function_name == "toy"
            assert len(scores) > 0
            engine = pipeline.search_engine("toy", "text")
            assert engine is not None
        # The computed scores stay memoised under their key, but new
        # lookups of the now-unknown function fail loudly.
        with pytest.raises(ValueError, match="unknown prestige function"):
            pipeline.prestige("toy", "pattern")


class TestCombinedFunction:
    """The worked example: rank fusion registered purely via the plugin API."""

    def test_registered_with_union_substrates(self):
        spec = scoring.get("combined")
        assert spec.substrates == ("citation_graph", "vectors", "representatives")
        assert spec.paper_sets == ("text",)
        assert not spec.in_overlap

    def test_workspace_artifact_derived(self):
        artifact = ARTIFACTS["scores_combined_text"]
        assert artifact.deps == (
            "text_paper_set", "citation_graph", "vectors", "representatives",
        )

    def test_blend_is_convex_combination_of_normalised_components(self):
        pipeline = build_demo_pipeline(seed=11, n_papers=80, n_terms=25)
        store = pipeline.substrates
        citation = CitationPrestige(store.citation_graph)
        text = TextPrestige(
            store.corpus, store.vectors, store.citation_graph,
            store.representatives,
        )
        combined = CombinedPrestige([(citation, 1.0), (text, 3.0)])
        checked = 0
        for context in store.paper_set("text"):
            raw = combined.score_context(context)
            if not raw:
                continue
            c_norm = NORMALIZERS[citation.normalization](
                citation.score_context(context)
            )
            t_norm = NORMALIZERS[text.normalization](text.score_context(context))
            for paper_id, value in raw.items():
                expected = (
                    0.25 * c_norm.get(paper_id, 0.0)
                    + 0.75 * t_norm.get(paper_id, 0.0)
                )
                assert value == pytest.approx(expected, abs=1e-12)
                assert 0.0 <= value <= 1.0
            checked += 1
            if checked >= 5:
                break
        assert checked > 0

    def test_component_validation(self):
        with pytest.raises(ValueError, match="at least one component"):
            CombinedPrestige([])
        with pytest.raises(ValueError, match="positive"):
            CombinedPrestige([(ToyPrestige(), 0.0)])

    def test_combined_searches_end_to_end(self):
        pipeline = build_demo_pipeline(seed=7, n_papers=80, n_terms=25)
        scores = pipeline.prestige("combined", "text")
        assert scores.function_name == "combined"
        assert len(scores) > 0
        hits = pipeline.search(
            "gene expression regulation", function="combined",
            paper_set_name="text",
        )
        for hit in hits:
            assert 0.0 <= hit.prestige <= 1.0
