"""Property-based tests for citation analysis and prestige invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.citations.coupling import bibliographic_coupling, cocitation
from repro.citations.graph import CitationGraph
from repro.citations.hits import hits_scores
from repro.citations.pagerank import TeleportKind, pagerank
from repro.core.scores.base import max_normalize, min_max_normalize

node_ids = st.integers(min_value=0, max_value=12).map(lambda i: f"N{i}")
edge_lists = st.lists(st.tuples(node_ids, node_ids), max_size=40)


def build_graph(edges):
    graph = CitationGraph()
    for source, target in edges:
        graph.add_edge(source, target)
    return graph


class TestPageRankProperties:
    @given(edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_e2_scores_form_distribution(self, edges):
        graph = build_graph(edges)
        result = pagerank(graph)
        if len(graph) == 0:
            assert result.scores == {}
            return
        total = sum(result.scores.values())
        assert math.isclose(total, 1.0, rel_tol=1e-6)
        assert all(value > 0 for value in result.scores.values())

    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_relabeling_invariance(self, edges):
        graph = build_graph(edges)
        if len(graph) == 0:
            return
        relabeled = CitationGraph()
        mapping = {node: f"X{node}" for node in graph.nodes()}
        for node in graph.nodes():
            relabeled.add_node(mapping[node])
        for source, target in graph.edges():
            relabeled.add_edge(mapping[source], mapping[target])
        original = pagerank(graph).scores
        renamed = pagerank(relabeled).scores
        for node, value in original.items():
            assert math.isclose(renamed[mapping[node]], value, rel_tol=1e-9)

    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_e1_preserves_e2_ordering(self, edges):
        graph = build_graph(edges)
        if len(graph) < 2:
            return
        e1 = pagerank(graph, teleport=TeleportKind.E1_CONSTANT).scores
        e2 = pagerank(graph, teleport=TeleportKind.E2_UNIFORM).scores
        nodes = sorted(graph.nodes())
        for a in nodes:
            for b in nodes:
                if e2[a] > e2[b] + 1e-9:
                    assert e1[a] > e1[b] - 1e-7


class TestHitsProperties:
    @given(edge_lists)
    @settings(max_examples=50, deadline=None)
    def test_scores_nonnegative_unit_norm(self, edges):
        graph = build_graph(edges)
        result = hits_scores(graph)
        if len(graph) == 0:
            return
        assert all(value >= 0 for value in result.authorities.values())
        norm = math.sqrt(sum(v * v for v in result.authorities.values()))
        assert math.isclose(norm, 1.0, rel_tol=1e-6)


class TestCouplingProperties:
    @given(edge_lists, node_ids, node_ids)
    @settings(max_examples=60, deadline=None)
    def test_bounds_and_symmetry(self, edges, a, b):
        graph = build_graph(edges)
        graph.add_node(a)
        graph.add_node(b)
        for measure in (bibliographic_coupling, cocitation):
            value = measure(graph, a, b)
            assert 0.0 <= value <= 1.0
            assert math.isclose(
                value, measure(graph, b, a), rel_tol=1e-9, abs_tol=1e-12
            )


class TestNormalizeProperties:
    score_maps = st.dictionaries(
        st.text(min_size=1, max_size=4),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        max_size=15,
    )

    @given(score_maps)
    def test_minmax_bounds_and_order(self, scores):
        result = min_max_normalize(scores)
        assert set(result) == set(scores)
        for value in result.values():
            assert 0.0 <= value <= 1.0
        keys = list(scores)
        for a in keys:
            for b in keys:
                if scores[a] < scores[b]:
                    assert result[a] <= result[b] + 1e-12

    @given(score_maps)
    def test_max_normalize_bounds_and_order(self, scores):
        result = max_normalize(scores)
        for value in result.values():
            assert 0.0 <= value <= 1.0
        keys = list(scores)
        for a in keys:
            for b in keys:
                if scores[a] < scores[b]:
                    assert result[a] <= result[b] + 1e-12

    @given(score_maps)
    def test_max_normalize_preserves_ratios(self, scores):
        result = max_normalize(scores)
        high = max(scores.values(), default=0.0)
        if high > 0:
            for key, value in scores.items():
                assert math.isclose(result[key], value / high, rel_tol=1e-9)
