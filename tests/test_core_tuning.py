"""Unit tests for relevancy-weight calibration."""

import pytest

from repro.core.tuning import RelevancyTuner, TuningPoint
from repro.datagen.queries import generate_queries
from repro.pipeline import Pipeline


@pytest.fixture(scope="module")
def tuner(small_dataset):
    pipeline = Pipeline.from_dataset(small_dataset, min_context_size=3)
    queries = [w.query for w in generate_queries(small_dataset, n_queries=6, seed=8)]
    return RelevancyTuner(pipeline, queries)


class TestRelevancyTuner:
    @pytest.fixture(scope="class")
    def result(self, tuner):
        return tuner.tune(
            w_prestige_grid=(0.3, 0.7), threshold_grid=(0.1, 0.3)
        )

    def test_grid_fully_evaluated(self, result):
        assert len(result.points) == 4
        cells = {(p.w_prestige, p.threshold) for p in result.points}
        assert cells == {(0.3, 0.1), (0.3, 0.3), (0.7, 0.1), (0.7, 0.3)}

    def test_metrics_in_bounds(self, result):
        for point in result.points:
            assert 0.0 <= point.precision <= 1.0
            assert 0.0 <= point.recall <= 1.0
            assert 0.0 <= point.f1 <= 1.0
            assert point.empty_queries >= 0

    def test_best_is_max_f1(self, result):
        assert result.best.f1 == max(p.f1 for p in result.points)

    def test_f1_is_harmonic_mean(self, result):
        for point in result.points:
            if point.precision + point.recall > 0:
                expected = (
                    2 * point.precision * point.recall
                    / (point.precision + point.recall)
                )
                assert point.f1 == pytest.approx(expected)

    def test_format_table_marks_best(self, result):
        table = result.format_table()
        assert "*" in table
        assert "prec" in table

    def test_empty_queries_monotone_in_threshold(self, result):
        for w in (0.3, 0.7):
            cells = sorted(
                (p for p in result.points if p.w_prestige == w),
                key=lambda p: p.threshold,
            )
            empties = [p.empty_queries for p in cells]
            assert empties == sorted(empties)

    def test_validation(self, small_dataset):
        pipeline = Pipeline.from_dataset(small_dataset, min_context_size=3)
        with pytest.raises(ValueError, match="at least one"):
            RelevancyTuner(pipeline, [])

    def test_empty_grid_rejected(self, tuner):
        with pytest.raises(ValueError, match="non-empty"):
            tuner.tune(w_prestige_grid=(), threshold_grid=(0.1,))
