"""Evaluation metrics of section 2: precision, top-k% overlap, separability.

All three follow the published definitions:

- ``Precision_t = |S_t ∩ R_t| / |S_t|`` with S_t the results whose
  relevancy clears threshold t, R_t the (AC-)answer set.
- ``TopKOverlappingRatio(S1, S2) = |P_S1-TopK ∩ P_S2-TopK| / K`` with tie
  handling: papers tied with the k-th score are included, and the
  denominator becomes ``min(|P_S1-TopK|, |P_S2-TopK|)`` when either set
  exceeds k.
- Separability SD: scores are split into n equal ranges; with X_i the
  *percentage* of papers in range i and X̄ = 100/n,
  ``SD = sqrt(1/n * Σ (X_i - X̄)²)``.  0 = perfectly uniform (best).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple


def precision(
    result_ids: Iterable[str], answer_set: Iterable[str]
) -> Optional[float]:
    """|S ∩ R| / |S|; None when S is empty (no results above threshold).

    Callers decide how to aggregate empty results: the paper's *average*
    curves count them as 0 ("precisions of these queries are 0, which
    reduces the average"), while its *median* curves are robust to them.
    """
    results = set(result_ids)
    if not results:
        return None
    answers = set(answer_set)
    return len(results & answers) / len(results)


def top_fraction_ids(scores: Mapping[str, float], k: int) -> Set[str]:
    """The ids of the ``k`` best scores, expanded to include k-th-score ties."""
    if k <= 0 or not scores:
        return set()
    ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    if k >= len(ranked):
        return {pid for pid, _ in ranked}
    kth_score = ranked[k - 1][1]
    result = {pid for pid, value in ranked[:k]}
    for pid, value in ranked[k:]:
        if value == kth_score:
            result.add(pid)
        else:
            break
    return result


def topk_overlap(
    scores_a: Mapping[str, float],
    scores_b: Mapping[str, float],
    k: Optional[int] = None,
    k_percent: Optional[float] = None,
) -> Optional[float]:
    """TopKOverlappingRatio of section 2 (None if either side is empty).

    Exactly one of ``k`` (absolute) or ``k_percent`` (fraction of the
    context's shared papers -- the "top k%" the experiments use so small
    deep contexts are not unfairly biased) must be given.
    """
    if (k is None) == (k_percent is None):
        raise ValueError("pass exactly one of k or k_percent")
    if not scores_a or not scores_b:
        return None
    if k_percent is not None:
        if not 0.0 < k_percent <= 1.0:
            raise ValueError(f"k_percent must be in (0, 1], got {k_percent}")
        base = min(len(scores_a), len(scores_b))
        k = max(int(round(base * k_percent)), 1)
    assert k is not None
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    top_a = top_fraction_ids(scores_a, k)
    top_b = top_fraction_ids(scores_b, k)
    if len(top_a) != k or len(top_b) != k:
        # Tie-expansion grew a set past k (the paper's rule: denominator
        # becomes min of the set sizes) -- or a context holds fewer than k
        # papers, where the same min rule keeps the ratio in [0, 1] and
        # self-overlap at 1.
        denominator = min(len(top_a), len(top_b))
    else:
        denominator = k
    if denominator == 0:
        return None
    return len(top_a & top_b) / denominator


def separability_sd(
    scores: Iterable[float], n_ranges: int = 10
) -> Optional[float]:
    """Deviation of the score histogram from uniform (lower = better).

    Scores are expected in [0, 1] (prestige scores are normalised); values
    outside are clamped into the boundary ranges.  None for empty input.
    """
    if n_ranges < 1:
        raise ValueError(f"n_ranges must be >= 1, got {n_ranges}")
    values = list(scores)
    if not values:
        return None
    counts = [0] * n_ranges
    for value in values:
        index = int(value * n_ranges)
        index = min(max(index, 0), n_ranges - 1)
        counts[index] += 1
    total = len(values)
    mean_percent = 100.0 / n_ranges
    variance = sum(
        (100.0 * count / total - mean_percent) ** 2 for count in counts
    ) / n_ranges
    return math.sqrt(variance)


def sd_histogram(
    sd_values: Iterable[float],
    bin_edges: Sequence[float] = (0, 5, 10, 15, 20, 25, 30, 35, 40),
) -> List[Tuple[float, float]]:
    """Percentage of contexts per SD bin (the x/y series of figs 5.4-5.7).

    Returns ``[(bin_lower_edge, percent_of_contexts), ...]``.  Values at
    or above the last edge land in the final bin.
    """
    edges = list(bin_edges)
    if len(edges) < 2 or edges != sorted(edges):
        raise ValueError("bin_edges must be ascending with >= 2 entries")
    values = list(sd_values)
    counts = [0] * (len(edges) - 1)
    for value in values:
        placed = False
        for i in range(len(edges) - 1):
            if edges[i] <= value < edges[i + 1]:
                counts[i] += 1
                placed = True
                break
        if not placed and value >= edges[-1]:
            counts[-1] += 1
    total = len(values)
    if total == 0:
        return [(edges[i], 0.0) for i in range(len(edges) - 1)]
    return [
        (edges[i], 100.0 * counts[i] / total) for i in range(len(edges) - 1)
    ]


def median(values: Sequence[float]) -> Optional[float]:
    """Plain median (None for empty input); kept local to avoid statistics
    module's error on empty data at every call site."""
    if not values:
        return None
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0
