"""Unit tests for result snippets and grouped search output."""

import pytest

from repro.citations.graph import CitationGraph
from repro.core.context import Context, ContextPaperSet
from repro.core.scores import TextPrestige
from repro.core.search import ContextSearchEngine
from repro.core.vectors import PaperVectorStore
from repro.corpus.paper import Paper, Section
from repro.index.inverted import InvertedIndex
from repro.index.search import KeywordSearchEngine
from repro.index.snippets import best_snippet


class TestBestSnippet:
    @pytest.fixture
    def paper(self):
        return Paper(
            paper_id="P",
            title="Unrelated title entirely",
            abstract="Early filler words here. The glucose metabolism rate "
            "was measured in yeast cells. More trailing text follows after.",
            body="glucose appears here too among many other body words",
        )

    def test_snippet_covers_query_terms(self, paper):
        snippet = best_snippet(paper, "glucose metabolism", window=10)
        assert snippet is not None
        assert "glucose" in snippet.text
        assert snippet.matched_terms == 2
        assert snippet.section is Section.ABSTRACT

    def test_ellipses_mark_truncation(self, paper):
        snippet = best_snippet(paper, "glucose metabolism", window=6)
        assert snippet.text.startswith("... ") or snippet.text.endswith(" ...")

    def test_original_casing_preserved(self, paper):
        snippet = best_snippet(paper, "glucose", window=30)
        assert "The glucose" in snippet.text or "glucose" in snippet.text

    def test_no_match_returns_none(self, paper):
        assert best_snippet(paper, "quasar") is None

    def test_empty_query_returns_none(self, paper):
        assert best_snippet(paper, "the of and") is None

    def test_prefers_section_with_more_terms(self, paper):
        # 'metabolism' only in abstract: abstract wins over body.
        snippet = best_snippet(paper, "glucose metabolism")
        assert snippet.section is Section.ABSTRACT

    def test_window_validation(self, paper):
        with pytest.raises(ValueError):
            best_snippet(paper, "glucose", window=0)

    def test_title_fallback(self):
        paper = Paper(paper_id="T", title="glucose in titles only")
        snippet = best_snippet(paper, "glucose")
        assert snippet.section is Section.TITLE
        assert "glucose" in snippet.text


class TestSearchGrouped:
    @pytest.fixture(scope="class")
    def engine(self, request):
        corpus = request.getfixturevalue("tiny_corpus")
        ontology = request.getfixturevalue("tiny_ontology")
        index = InvertedIndex().index_corpus(corpus)
        vectors = PaperVectorStore(corpus, index.analyzer)
        graph = CitationGraph.from_corpus(corpus)
        paper_set = ContextPaperSet(
            ontology,
            [
                Context("met", ("M1", "M2", "M3")),
                Context("glu", ("M1", "M2")),
                Context("sig", ("S1", "S2")),
            ],
        )
        prestige = TextPrestige(
            corpus, vectors, graph, {"met": "M1", "glu": "M1", "sig": "S1"}
        ).score_all(paper_set)
        return ContextSearchEngine(
            ontology, paper_set, prestige, KeywordSearchEngine(index)
        )

    def test_groups_ordered_by_selection_strength(self, engine):
        groups = engine.search_grouped("glucose metabolic")
        assert groups
        strengths = [g.selection_strength for g in groups]
        assert strengths == sorted(strengths, reverse=True)

    def test_hits_sorted_within_group(self, engine):
        for group in engine.search_grouped("metabolic process"):
            values = [h.relevancy for h in group.hits]
            assert values == sorted(values, reverse=True)

    def test_paper_can_appear_in_multiple_groups(self, engine):
        groups = engine.search_grouped("glucose metabolic")
        group_ids = {g.context_id for g in groups}
        if {"met", "glu"} <= group_ids:
            met = next(g for g in groups if g.context_id == "met")
            glu = next(g for g in groups if g.context_id == "glu")
            shared = {h.paper_id for h in met.hits} & {
                h.paper_id for h in glu.hits
            }
            assert "M1" in shared

    def test_per_context_limit(self, engine):
        for group in engine.search_grouped("metabolic", per_context_limit=1):
            assert len(group) <= 1

    def test_grouped_union_matches_merged(self, engine):
        groups = engine.search_grouped("glucose metabolic")
        grouped_ids = {h.paper_id for g in groups for h in g.hits}
        merged_ids = {h.paper_id for h in engine.search("glucose metabolic")}
        assert grouped_ids == merged_ids

    def test_no_contexts_no_groups(self, engine):
        assert engine.search_grouped("quasar telescope") == []
