"""The paper's PageRank variant.

Section 3.1 defines the iteration

    ``P_{i+1} = (1 - d) * M^T * P_i + E``

where ``M`` is the row-normalised citation adjacency matrix of the
*per-context* graph, ``d`` is the probability of jumping to a random paper,
and ``E`` is a teleport term with two published choices:

- ``E1 = d``          -- a constant added to every component (the original
  Brin & Page formulation, where scores sum to N rather than 1);
- ``E2 = (d/N) 1 1^T P_i`` -- redistribute mass uniformly, keeping the
  score vector a probability distribution.

Note the paper swaps the conventional role of ``d``: here ``d`` is the
*teleport* probability (their text: "(1-d) is the probability that he/she
will next read a random paper" is inverted relative to their formula; we
follow the formula, which is also the standard reading with
``damping = 1 - d``).  Dangling papers (no outgoing citations) donate their
mass uniformly, the standard stochastic fix-up, so E2 iterations preserve
``sum(P) = 1`` exactly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.citations.graph import CitationGraph
from repro.obs import get_logger, get_registry

logger = get_logger(__name__)


class TeleportKind(str, enum.Enum):
    """Which teleport term ``E`` from section 3.1 to use."""

    E1_CONSTANT = "e1"
    E2_UNIFORM = "e2"


@dataclass
class PageRankResult:
    """Converged PageRank scores plus convergence diagnostics."""

    scores: Dict[str, float]
    iterations: int
    converged: bool
    residual: float

    def top(self, k: int) -> List[str]:
        """Ids of the ``k`` highest-scored nodes (ties broken by id)."""
        ranked = sorted(self.scores.items(), key=lambda item: (-item[1], item[0]))
        return [node for node, _ in ranked[:k]]


def pagerank(
    graph: CitationGraph,
    teleport: TeleportKind = TeleportKind.E2_UNIFORM,
    d: float = 0.15,
    max_iterations: int = 200,
    tolerance: float = 1e-10,
    initial: Optional[Dict[str, float]] = None,
) -> PageRankResult:
    """Run the section-3.1 iteration until the L1 residual drops below tolerance.

    Parameters
    ----------
    graph:
        The (per-context) citation graph.  ``u -> v`` means u cites v, so
        score flows from citing papers to cited papers.
    teleport:
        ``E1_CONSTANT`` adds ``d`` to every component each step (scores are
        then min-max normalised by consumers); ``E2_UNIFORM`` keeps a
        probability distribution.
    d:
        Teleport probability; ``1 - d`` is the damping factor.  The classic
        web value is d = 0.15.
    initial:
        Optional starting vector (defaults to uniform).  Exposed so tests
        can verify invariance to the starting point.

    An empty graph yields an empty score map; a single node gets score 1.
    """
    if not 0.0 < d < 1.0:
        raise ValueError(f"teleport probability d must be in (0, 1), got {d}")
    nodes = graph.nodes()
    n = len(nodes)
    if n == 0:
        return PageRankResult(scores={}, iterations=0, converged=True, residual=0.0)
    index = {node: position for position, node in enumerate(nodes)}

    # Column-stochastic transition built from M^T: entry [v, u] = 1/outdeg(u)
    # for each edge u -> v.  Stored in CSR-style edge arrays so each
    # iteration is one gather plus one scatter-add instead of a Python
    # loop over adjacency lists.
    out_degree = np.array([graph.out_degree(node) for node in nodes], dtype=float)
    dangling = out_degree == 0.0
    edge_src_list: List[int] = []
    edge_dst_list: List[int] = []
    for node in nodes:
        v = index[node]
        for u in graph.in_neighbors(node):
            edge_src_list.append(index[u])
            edge_dst_list.append(v)
    edge_src = np.array(edge_src_list, dtype=np.intp)
    edge_dst = np.array(edge_dst_list, dtype=np.intp)

    if initial is None:
        p = np.full(n, 1.0 / n)
    else:
        p = np.array([float(initial.get(node, 0.0)) for node in nodes])
        total = p.sum()
        if total <= 0.0:
            raise ValueError("initial vector must have positive mass")
        p = p / total

    damping = 1.0 - d
    iterations = 0
    residual = float("inf")
    for iterations in range(1, max_iterations + 1):
        spread = np.where(dangling, 0.0, p / np.maximum(out_degree, 1.0))
        flowed = np.bincount(
            edge_dst, weights=spread[edge_src], minlength=n
        ).astype(float, copy=False)
        # Dangling papers donate uniformly so no mass leaks.
        dangling_mass = p[dangling].sum() / n
        flowed += dangling_mass
        if teleport is TeleportKind.E2_UNIFORM:
            new_p = damping * flowed + d / n
        else:  # E1: constant d added to each component (unnormalised variant)
            new_p = damping * flowed + d
        residual = float(np.abs(new_p - p).sum())
        p = new_p
        if teleport is TeleportKind.E2_UNIFORM and residual < tolerance:
            break
        if teleport is TeleportKind.E1_CONSTANT:
            # The E1 recurrence converges to a fixed point too (same linear
            # operator, shifted); compare against scaled tolerance.
            if residual < tolerance * max(p.sum(), 1.0):
                break

    converged = residual < tolerance * (
        1.0 if teleport is TeleportKind.E2_UNIFORM else max(float(p.sum()), 1.0)
    )
    registry = get_registry()
    registry.counter("citations.pagerank.runs").inc()
    registry.histogram("citations.pagerank.iterations").observe(iterations)
    registry.histogram("citations.pagerank.graph_size").observe(n)
    registry.gauge("citations.pagerank.residual").set(residual)
    if not converged:
        registry.counter("citations.pagerank.unconverged").inc()
        logger.warning(
            "pagerank hit the iteration cap without converging",
            iterations=iterations,
            residual=residual,
            tolerance=tolerance,
            nodes=n,
            teleport=teleport.value,
        )
    return PageRankResult(
        scores={node: float(p[index[node]]) for node in nodes},
        iterations=iterations,
        converged=converged,
        residual=residual,
    )
