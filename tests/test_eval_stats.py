"""Unit tests for statistical utilities."""

import pytest

from repro.eval.stats import bootstrap_mean_ci, kendall_tau, spearman


class TestSpearman:
    def test_perfect_positive(self):
        a = {"x": 1.0, "y": 2.0, "z": 3.0}
        b = {"x": 10.0, "y": 20.0, "z": 30.0}
        assert spearman(a, b) == pytest.approx(1.0)

    def test_perfect_negative(self):
        a = {"x": 1.0, "y": 2.0, "z": 3.0}
        b = {"x": 3.0, "y": 2.0, "z": 1.0}
        assert spearman(a, b) == pytest.approx(-1.0)

    def test_nonlinear_monotone_still_one(self):
        a = {"x": 1.0, "y": 2.0, "z": 3.0}
        b = {"x": 1.0, "y": 100.0, "z": 10000.0}
        assert spearman(a, b) == pytest.approx(1.0)

    def test_only_shared_keys_used(self):
        a = {"x": 1.0, "y": 2.0, "z": 3.0, "extra": 99.0}
        b = {"x": 1.0, "y": 2.0, "z": 3.0, "other": -5.0}
        assert spearman(a, b) == pytest.approx(1.0)

    def test_constant_side_is_none(self):
        a = {"x": 1.0, "y": 1.0, "z": 1.0}
        b = {"x": 1.0, "y": 2.0, "z": 3.0}
        assert spearman(a, b) is None

    def test_too_few_shared_keys(self):
        assert spearman({"x": 1.0}, {"x": 2.0}) is None
        assert spearman({"x": 1.0}, {"y": 2.0}) is None

    def test_ties_use_average_ranks(self):
        a = {"w": 1.0, "x": 2.0, "y": 2.0, "z": 3.0}
        b = {"w": 1.0, "x": 2.5, "y": 2.5, "z": 4.0}
        assert spearman(a, b) == pytest.approx(1.0)


class TestKendall:
    def test_perfect_agreement(self):
        a = {"x": 1.0, "y": 2.0, "z": 3.0}
        assert kendall_tau(a, a) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        a = {"x": 1.0, "y": 2.0, "z": 3.0}
        b = {"x": 3.0, "y": 2.0, "z": 1.0}
        assert kendall_tau(a, b) == pytest.approx(-1.0)

    def test_bounds(self):
        a = {"x": 1.0, "y": 5.0, "z": 3.0, "w": 2.0}
        b = {"x": 2.0, "y": 1.0, "z": 5.0, "w": 4.0}
        assert -1.0 <= kendall_tau(a, b) <= 1.0

    def test_degenerate(self):
        assert kendall_tau({"x": 1.0}, {"x": 1.0}) is None


class TestBootstrap:
    def test_mean_matches(self):
        mean, low, high = bootstrap_mean_ci([1.0, 2.0, 3.0, 4.0], seed=1)
        assert mean == pytest.approx(2.5)
        assert low <= mean <= high

    def test_deterministic_for_seed(self):
        a = bootstrap_mean_ci([0.2, 0.5, 0.9, 0.4], seed=7)
        b = bootstrap_mean_ci([0.2, 0.5, 0.9, 0.4], seed=7)
        assert a == b

    def test_tighter_with_more_data(self):
        small = bootstrap_mean_ci([0.4, 0.6] * 3, seed=3)
        large = bootstrap_mean_ci([0.4, 0.6] * 100, seed=3)
        assert (large[2] - large[1]) < (small[2] - small[1])

    def test_constant_data_zero_width(self):
        mean, low, high = bootstrap_mean_ci([0.5] * 10, seed=2)
        assert low == pytest.approx(high) == pytest.approx(0.5)

    def test_empty_is_none(self):
        assert bootstrap_mean_ci([]) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], n_resamples=0)
