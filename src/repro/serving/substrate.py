"""The build layer: a :class:`SubstrateStore` owning every heavy artefact.

The store holds the raw inputs (corpus, ontology, training papers) and
the substrates derived from them -- inverted index, vector store, token
cache, citation graph, the two context paper sets, representatives, and
memoised prestige scores.  Substrates build lazily on first access and
can be *installed* directly (workspace hydration, ``load_precomputed``);
every installation bumps a monotonically increasing **revision**, which
the serving layer (:class:`~repro.serving.view.ServingView`) compares
against to know when its memoised engines and result cache are stale.

Prestige computation is single-flighted per ``function/paper_set`` key:
concurrent cold lookups of the same scores block on one per-key lock and
compute exactly once, while lookups of *different* keys proceed in
parallel.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro import scoring
from repro.citations.graph import CitationGraph
from repro.core.assignment import PatternContextAssigner, TextContextAssigner
from repro.core.context import ContextPaperSet
from repro.core.patterns import AnalyzedPaperCache
from repro.core.scores import PrestigeScores
from repro.core.scores.base import propagate_max_over_descendants
from repro.core.vectors import PaperVectorStore
from repro.corpus.corpus import Corpus, CorpusError
from repro.corpus.paper import Paper
from repro.index import backends as index_backends
from repro.index.backends.base import SearchBackend
from repro.index.search import KeywordSearchEngine
from repro.obs import get_registry, span
from repro.ontology.ontology import Ontology


@dataclass(frozen=True)
class DeltaReport:
    """What one :meth:`SubstrateStore.apply_delta` call actually did."""

    #: Paper ids added / removed, in application order.
    added: Tuple[str, ...]
    removed: Tuple[str, ...]
    #: Per paper-set name, the context ids whose paper sets changed
    #: (only paper sets that were built and diffed appear here).
    changed_contexts: Dict[str, Tuple[str, ...]]
    #: Memoised score keys patched in place vs dropped for lazy recompute.
    scores_patched: Tuple[str, ...]
    scores_dropped: Tuple[str, ...]
    #: True when a non-mutable index backend was rebuilt from the corpus.
    index_rebuilt: bool
    #: Substrate revision after the delta (unchanged for a no-op).
    revision: int

    @property
    def is_noop(self) -> bool:
        return not self.added and not self.removed

    def to_dict(self) -> Dict[str, object]:
        """JSON-able summary (CLI output, the /admin/ingest response)."""
        return {
            "added": list(self.added),
            "removed": list(self.removed),
            "changed_contexts": {
                name: list(ids) for name, ids in self.changed_contexts.items()
            },
            "scores_patched": list(self.scores_patched),
            "scores_dropped": list(self.scores_dropped),
            "index_rebuilt": self.index_rebuilt,
            "revision": self.revision,
        }


class SubstrateStore:
    """Mutable build-layer state shared by every serving view.

    Thread safety: lazy builds are serialised by a reentrant build lock
    (substrate builds nest -- e.g. the text paper set needs vectors and
    the index); prestige computation single-flights per key; installs
    and the revision counter share a small mutation lock.
    """

    def __init__(
        self,
        corpus: Corpus,
        ontology: Ontology,
        training_papers: Mapping[str, Sequence[str]],
        text_similarity_threshold: float = 0.10,
        index_backend: Optional[str] = None,
    ) -> None:
        self.corpus = corpus
        self.ontology = ontology
        self.training_papers = {k: list(v) for k, v in training_papers.items()}
        self.text_similarity_threshold = text_similarity_threshold
        self.index_backend = (
            index_backend if index_backend is not None
            else index_backends.DEFAULT_BACKEND
        )
        index_backends.get(self.index_backend)  # fail fast on unknown names
        self._index: Optional[SearchBackend] = None
        self._vectors: Optional[PaperVectorStore] = None
        self._tokens: Optional[AnalyzedPaperCache] = None
        self._graph: Optional[CitationGraph] = None
        self._keyword_engine: Optional[KeywordSearchEngine] = None
        self._text_assigner: Optional[TextContextAssigner] = None
        self._pattern_assigner: Optional[PatternContextAssigner] = None
        self._text_paper_set: Optional[ContextPaperSet] = None
        self._pattern_paper_set: Optional[ContextPaperSet] = None
        self._representatives: Optional[Dict[str, str]] = None
        self._scores: Dict[str, PrestigeScores] = {}
        self._build_lock = threading.RLock()
        self._mutation_lock = threading.Lock()
        self._prestige_locks: Dict[str, threading.Lock] = {}
        self._revision = 0

    # -- revision -------------------------------------------------------------------

    @property
    def revision(self) -> int:
        """Mutation counter; serving views compare it to detect staleness."""
        with self._mutation_lock:
            return self._revision

    def _bump(self) -> None:
        with self._mutation_lock:
            self._revision += 1
            revision = self._revision
        get_registry().gauge("serving.substrate.revision").set(revision)

    # -- lazily built substrates ----------------------------------------------------

    @property
    def index(self) -> SearchBackend:
        if self._index is None:
            with self._build_lock:
                if self._index is None:
                    spec = index_backends.get(self.index_backend)
                    with span("substrate.index.build", backend=spec.name):
                        self._index = spec.build(self.corpus)
        return self._index

    @property
    def vectors(self) -> PaperVectorStore:
        if self._vectors is None:
            with self._build_lock:
                if self._vectors is None:
                    self._vectors = PaperVectorStore(self.corpus, self.index.analyzer)
        return self._vectors

    @property
    def tokens(self) -> AnalyzedPaperCache:
        if self._tokens is None:
            with self._build_lock:
                if self._tokens is None:
                    self._tokens = AnalyzedPaperCache(self.corpus, self.index.analyzer)
        return self._tokens

    @property
    def citation_graph(self) -> CitationGraph:
        if self._graph is None:
            with self._build_lock:
                if self._graph is None:
                    self._graph = CitationGraph.from_corpus(self.corpus)
        return self._graph

    @property
    def keyword_engine(self) -> KeywordSearchEngine:
        """The PubMed-style baseline search engine."""
        if self._keyword_engine is None:
            with self._build_lock:
                if self._keyword_engine is None:
                    self._keyword_engine = KeywordSearchEngine(self.index)
        return self._keyword_engine

    @property
    def text_paper_set(self) -> ContextPaperSet:
        """The text-based context paper set (section 4, first builder)."""
        if self._text_paper_set is None:
            with self._build_lock:
                if self._text_paper_set is None:
                    self._text_assigner = TextContextAssigner(
                        self.corpus,
                        self.ontology,
                        self.vectors,
                        self.index,
                        similarity_threshold=self.text_similarity_threshold,
                    )
                    self._text_paper_set = self._text_assigner.build(
                        self.training_papers
                    )
        return self._text_paper_set

    @property
    def representatives(self) -> Dict[str, str]:
        """Representative paper per context of the text paper set.

        When the paper set was loaded from a precomputed artefact (no
        assigner ran), representatives are re-derived from the stored
        training papers -- the selection is deterministic, so this
        reproduces the original choice.
        """
        if self._representatives is None:
            with self._build_lock:
                if self._representatives is None:
                    paper_set = self.text_paper_set
                    if self._text_assigner is not None:
                        self._representatives = dict(
                            self._text_assigner.representatives
                        )
                    else:
                        from repro.core.representative import select_representatives

                        self._representatives = select_representatives(
                            self.vectors, paper_set
                        )
        return dict(self._representatives)

    @property
    def pattern_paper_set(self) -> ContextPaperSet:
        """The pattern-based context paper set (section 4, second builder)."""
        if self._pattern_paper_set is None:
            _ = self.pattern_assigner  # runs the build, which installs the set
        return self._pattern_paper_set

    @property
    def pattern_assigner(self) -> PatternContextAssigner:
        """The pattern assigner, running pattern construction on first use.

        When the pattern paper set was hydrated from a workspace, the
        assigner has not run; accessing it (only pattern-*score* builds
        do) re-runs pattern construction while keeping the loaded set.
        """
        if self._pattern_assigner is None:
            with self._build_lock:
                if self._pattern_assigner is None:
                    assigner = PatternContextAssigner(
                        self.corpus,
                        self.ontology,
                        self.index,
                        token_cache=self.tokens,
                    )
                    built = assigner.build(self.training_papers)
                    if self._pattern_paper_set is None:
                        self._pattern_paper_set = built
                    self._pattern_assigner = assigner
        return self._pattern_assigner

    def paper_set(self, paper_set_name: str) -> ContextPaperSet:
        """The context paper set registered under ``paper_set_name``."""
        if paper_set_name == "text":
            return self.text_paper_set
        if paper_set_name == "pattern":
            return self.pattern_paper_set
        raise ValueError(
            f"unknown paper set {paper_set_name!r}; expected one of "
            f"{scoring.PAPER_SET_NAMES}"
        )

    # -- prestige scores ------------------------------------------------------------

    @property
    def scores(self) -> Dict[str, PrestigeScores]:
        """The live score memo, keyed ``<function>/<paper_set>``."""
        return self._scores

    def prestige(self, function: str, paper_set_name: str = "text") -> PrestigeScores:
        """Memoised prestige scores, computed at most once per key.

        ``function`` is any registered score function (plus any key
        installed from precomputed artefacts); ``paper_set_name`` selects
        the context paper set.  Concurrent cold lookups of the same key
        single-flight on a per-key lock.
        """
        key = f"{function}/{paper_set_name}"
        scores = self._scores.get(key)
        if scores is not None:
            return scores
        with self._mutation_lock:
            lock = self._prestige_locks.setdefault(key, threading.Lock())
        with lock:
            scores = self._scores.get(key)
            if scores is not None:
                return scores
            with span(
                "pipeline.prestige", function=function, paper_set=paper_set_name
            ):
                return self._compute_prestige(function, paper_set_name, key)

    def _compute_prestige(
        self, function: str, paper_set_name: str, key: str
    ) -> PrestigeScores:
        get_registry().counter("pipeline.prestige.computed").inc()
        spec = scoring.get(function)
        paper_set = self.paper_set(paper_set_name)
        scorer = spec.factory(self)
        scores = scorer.score_all(paper_set)
        self._scores[key] = scores
        return scores

    # -- incremental corpus mutation --------------------------------------------------

    def apply_delta(
        self,
        added_papers: Iterable[Paper] = (),
        removed_ids: Iterable[str] = (),
    ) -> DeltaReport:
        """Apply a corpus delta, updating built substrates in place.

        Removals are applied before additions (so an id in both lists is
        replaced).  The delta is validated in full before anything
        mutates; an invalid delta raises :class:`CorpusError` and leaves
        the store untouched.  Substrates that were never built stay lazy
        and simply see the mutated corpus on first access.

        Built substrates update as follows:

        - **index** -- mutated in place when the backend declares
          ``supports_mutation`` (the ``memory`` backend), otherwise
          rebuilt from the corpus via the backend's registered ``build``
          hook (the documented rebuild-on-mutate fallback for read-only
          formats like ``ondisk``);
        - **vectors** -- fitted TF-IDF models are delta-updated exactly
          (ghost terms keep df=0); cached vectors re-weight from retained
          count maps;
        - **citation graph** -- spliced canonically (byte-identical to a
          rebuild from the final corpus);
        - **text paper set** -- reassigned with warm substrates, then
          diffed context-by-context against the previous assignment;
        - **pattern paper set** -- invalidated for lazy rebuild (pattern
          statistics couple to corpus-global coverage);
        - **prestige memos** -- functions whose spec declares
          ``delta_scope="contexts"`` are re-scored only for changed
          contexts and re-propagated; everything else is dropped for
          lazy recompute.

        A no-op delta (both lists empty) returns without bumping the
        revision, so serving views keep their caches.  Otherwise the
        revision bumps exactly once at the end -- one atomic view swap
        per delta.
        """
        added = list(added_papers)
        removed = list(dict.fromkeys(removed_ids))
        with self._build_lock:
            for pid in removed:
                self.corpus.paper(pid)  # CorpusError on unknown ids
            removed_set = set(removed)
            seen_added: set = set()
            for paper in added:
                pid = paper.paper_id
                if pid in seen_added:
                    raise CorpusError(f"duplicate paper id {pid!r} in delta")
                if pid in self.corpus and pid not in removed_set:
                    raise CorpusError(
                        f"paper id {pid!r} already in corpus (remove it in the "
                        f"same delta to replace it)"
                    )
                seen_added.add(pid)
            if not added and not removed:
                return DeltaReport((), (), {}, (), (), False, self._revision)
            registry = get_registry()
            with span(
                "substrate.delta.apply", added=len(added), removed=len(removed)
            ):
                removed_papers = [self.corpus.remove(pid) for pid in removed]
                for paper in added:
                    self.corpus.add(paper)
                added_ids = [paper.paper_id for paper in added]

                index_rebuilt = False
                if self._index is not None:
                    with span("substrate.delta.index", backend=self.index_backend):
                        if getattr(self._index, "supports_mutation", False):
                            for paper in removed_papers:
                                self._index.remove_document(paper.paper_id)
                            for paper in added:
                                self._index.add_document(paper)
                        else:
                            spec = index_backends.get(self.index_backend)
                            self._index = spec.build(self.corpus)
                            index_rebuilt = True
                            registry.counter("substrate.delta.index_rebuilds").inc()
                    self._keyword_engine = None
                if self._tokens is not None:
                    for paper in removed_papers:
                        self._tokens.evict_paper(paper.paper_id)
                if self._vectors is not None:
                    with span("substrate.delta.vectors"):
                        self._vectors.apply_delta(added, removed_papers)
                if self._graph is not None:
                    with span("substrate.delta.graph"):
                        self._graph.apply_corpus_delta(
                            self.corpus, added_ids, removed
                        )

                changed_contexts: Dict[str, Tuple[str, ...]] = {}
                if self._text_paper_set is not None:
                    with span("substrate.delta.assign", paper_set="text"):
                        old_set = self._text_paper_set
                        assigner = TextContextAssigner(
                            self.corpus,
                            self.ontology,
                            self.vectors,
                            self.index,
                            similarity_threshold=self.text_similarity_threshold,
                        )
                        new_set = assigner.build(self.training_papers)
                        self._text_assigner = assigner
                        self._text_paper_set = new_set
                        self._representatives = dict(assigner.representatives)
                        changed_contexts["text"] = self._diff_contexts(
                            old_set, new_set
                        )
                if (
                    self._pattern_paper_set is not None
                    or self._pattern_assigner is not None
                ):
                    # Pattern mining reads corpus-global statistics (paper
                    # coverage, cached index lookups); rebuild lazily.
                    self._pattern_paper_set = None
                    self._pattern_assigner = None

                scores_patched: List[str] = []
                scores_dropped: List[str] = []
                with span("substrate.delta.prestige"):
                    for key, scores in list(self._scores.items()):
                        function, _, paper_set_name = key.partition("/")
                        try:
                            spec = scoring.get(function)
                        except ValueError:
                            spec = None
                        changed = changed_contexts.get(paper_set_name)
                        if (
                            spec is not None
                            and spec.delta_scope == "contexts"
                            and scores.pre_propagation is not None
                            and changed is not None
                        ):
                            self._scores[key] = self._patch_scores(
                                spec,
                                scores,
                                self.paper_set(paper_set_name),
                                changed,
                            )
                            scores_patched.append(key)
                        else:
                            del self._scores[key]
                            scores_dropped.append(key)

                registry.counter("substrate.delta.papers_added").inc(len(added))
                registry.counter("substrate.delta.papers_removed").inc(
                    len(removed_papers)
                )
                registry.counter("substrate.delta.contexts_changed").inc(
                    sum(len(ids) for ids in changed_contexts.values())
                )
                registry.counter("substrate.delta.scores_patched").inc(
                    len(scores_patched)
                )
                registry.counter("substrate.delta.scores_dropped").inc(
                    len(scores_dropped)
                )
        self._bump()
        return DeltaReport(
            added=tuple(added_ids),
            removed=tuple(removed),
            changed_contexts=changed_contexts,
            scores_patched=tuple(scores_patched),
            scores_dropped=tuple(scores_dropped),
            index_rebuilt=index_rebuilt,
            revision=self.revision,
        )

    @staticmethod
    def _diff_contexts(
        old_set: ContextPaperSet, new_set: ContextPaperSet
    ) -> Tuple[str, ...]:
        """Context ids whose paper sets differ between two assignments."""
        old = {context.term_id: context.paper_ids for context in old_set}
        new = {context.term_id: context.paper_ids for context in new_set}
        changed = [cid for cid in new if old.get(cid) != new[cid]]
        changed.extend(cid for cid in old if cid not in new)
        return tuple(changed)

    def _patch_scores(
        self,
        spec: "scoring.ScoreFunctionSpec",
        scores: PrestigeScores,
        paper_set: ContextPaperSet,
        changed_ids: Sequence[str],
    ) -> PrestigeScores:
        """Re-score only the changed contexts and re-run propagation.

        Valid only for ``delta_scope="contexts"`` functions: their
        per-context scores depend exclusively on structure induced by the
        context's own paper ids, so unchanged contexts keep their
        pre-propagation scores byte-identically.  The pre-propagation map
        is rebuilt in paper-set iteration order so the patched result is
        indistinguishable from a from-scratch ``score_all``.
        """
        scorer = spec.factory(self)
        changed = set(changed_ids)
        fresh = scorer.score_contexts(paper_set, changed)
        old_pre = scores.pre_propagation or {}
        pre: Dict[str, Dict[str, float]] = {}
        for context in paper_set:
            cid = context.term_id
            if cid in changed:
                if cid in fresh:
                    pre[cid] = fresh[cid]
            elif cid in old_pre:
                pre[cid] = old_pre[cid]
        merged = propagate_max_over_descendants(paper_set, pre)
        return PrestigeScores(
            scores.function_name, merged, pre_propagation=pre
        )

    # -- installation (workspace hydration / precomputed artefacts) -----------------

    def install_index(self, index: Optional[SearchBackend]) -> None:
        with self._build_lock:
            self._index = index
            self._keyword_engine = None  # derived from the index
        self._bump()

    def install_vectors(self, vectors: Optional[PaperVectorStore]) -> None:
        with self._build_lock:
            self._vectors = vectors
        self._bump()

    def install_tokens(self, tokens: Optional[AnalyzedPaperCache]) -> None:
        with self._build_lock:
            self._tokens = tokens
        self._bump()

    def install_citation_graph(self, graph: Optional[CitationGraph]) -> None:
        with self._build_lock:
            self._graph = graph
        self._bump()

    def install_text_paper_set(self, paper_set: Optional[ContextPaperSet]) -> None:
        with self._build_lock:
            self._text_paper_set = paper_set
        self._bump()

    def install_pattern_paper_set(self, paper_set: Optional[ContextPaperSet]) -> None:
        with self._build_lock:
            self._pattern_paper_set = paper_set
        self._bump()

    def install_representatives(
        self, representatives: Optional[Mapping[str, str]]
    ) -> None:
        with self._build_lock:
            self._representatives = (
                dict(representatives) if representatives is not None else None
            )
        self._bump()

    def install_scores(self, key: str, scores: PrestigeScores) -> None:
        with self._build_lock:
            self._scores[key] = scores
        self._bump()

    def installed_score_keys(self) -> List[str]:
        return list(self._scores)
