"""Unit tests for IC-based semantic similarity."""

import math

import pytest

from repro.ontology.ontology import Ontology, OntologyError
from repro.ontology.semantic import (
    common_ancestors,
    jiang_conrath_distance,
    jiang_conrath_similarity,
    lin_similarity,
    most_informative_common_ancestor,
    resnik_similarity,
)
from repro.ontology.term import Term


@pytest.fixture(scope="module")
def onto():
    """root -> {a, b}; a -> {a1, a2}; b -> b1.  Plus a second root r2."""
    return Ontology(
        [
            Term("root", "process"),
            Term("a", "a process", parent_ids=("root",)),
            Term("b", "b process", parent_ids=("root",)),
            Term("a1", "a1 process", parent_ids=("a",)),
            Term("a2", "a2 process", parent_ids=("a",)),
            Term("b1", "b1 process", parent_ids=("b",)),
            Term("r2", "other root"),
        ]
    )


class TestCommonAncestors:
    def test_siblings(self, onto):
        assert common_ancestors(onto, "a1", "a2") == {"a", "root"}

    def test_cousins(self, onto):
        assert common_ancestors(onto, "a1", "b1") == {"root"}

    def test_self(self, onto):
        assert "a1" in common_ancestors(onto, "a1", "a1")

    def test_disconnected(self, onto):
        assert common_ancestors(onto, "a1", "r2") == set()

    def test_mica_siblings(self, onto):
        assert most_informative_common_ancestor(onto, "a1", "a2") == "a"

    def test_mica_ancestor_descendant(self, onto):
        assert most_informative_common_ancestor(onto, "a", "a1") == "a"

    def test_mica_disconnected(self, onto):
        assert most_informative_common_ancestor(onto, "a1", "r2") is None


class TestResnik:
    def test_siblings_share_parent_ic(self, onto):
        assert resnik_similarity(onto, "a1", "a2") == pytest.approx(
            onto.information_content("a")
        )

    def test_closer_pairs_more_similar(self, onto):
        assert resnik_similarity(onto, "a1", "a2") > resnik_similarity(
            onto, "a1", "b1"
        )

    def test_disconnected_zero(self, onto):
        assert resnik_similarity(onto, "a1", "r2") == 0.0

    def test_symmetry(self, onto):
        assert resnik_similarity(onto, "a1", "b1") == resnik_similarity(
            onto, "b1", "a1"
        )


class TestLin:
    def test_self_similarity_is_one(self, onto):
        assert lin_similarity(onto, "a1", "a1") == pytest.approx(1.0)

    def test_bounds(self, onto):
        for a in ("a", "a1", "b1"):
            for b in ("a", "a1", "b1"):
                assert 0.0 <= lin_similarity(onto, a, b) <= 1.0 + 1e-12

    def test_root_has_zero_lin(self, onto):
        # IC(root) == 0 via p(root) = 1 (root reaches all but r2... not all).
        # Compute: root does NOT reach r2, so IC(root) > 0 here; use the
        # ordering property instead: siblings beat cousins.
        assert lin_similarity(onto, "a1", "a2") > lin_similarity(onto, "a1", "b1")

    def test_disconnected_zero(self, onto):
        assert lin_similarity(onto, "a1", "r2") == 0.0


class TestJiangConrath:
    def test_identical_terms_distance_zero(self, onto):
        assert jiang_conrath_distance(onto, "a1", "a1") == pytest.approx(0.0)

    def test_distance_orders_by_relatedness(self, onto):
        assert jiang_conrath_distance(onto, "a1", "a2") < jiang_conrath_distance(
            onto, "a1", "b1"
        )

    def test_disconnected_raises(self, onto):
        with pytest.raises(OntologyError, match="no common ancestor"):
            jiang_conrath_distance(onto, "a1", "r2")

    def test_similarity_transform(self, onto):
        distance = jiang_conrath_distance(onto, "a1", "a2")
        assert jiang_conrath_similarity(onto, "a1", "a2") == pytest.approx(
            1.0 / (1.0 + distance)
        )

    def test_similarity_disconnected_zero(self, onto):
        assert jiang_conrath_similarity(onto, "a1", "r2") == 0.0

    def test_similarity_bounds(self, onto):
        value = jiang_conrath_similarity(onto, "a1", "b1")
        assert 0.0 < value <= 1.0
