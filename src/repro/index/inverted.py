"""The inverted index.

Maps analysis terms to postings ``(paper_id, section, term_frequency)``.
Sections are indexed separately so searches can weight title matches above
body matches -- the usual digital-library behaviour, and the mechanism the
context search engine reuses for its text-matching component.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.corpus.corpus import Corpus
from repro.corpus.paper import Paper, Section, TEXT_SECTIONS
from repro.text.analyze import Analyzer, default_analyzer


@dataclass(frozen=True)
class Posting:
    """One term occurrence record."""

    paper_id: str
    section: Section
    term_frequency: int


class InvertedIndex:
    """Section-aware inverted index over a corpus.

    Build once with :meth:`index_corpus` (or incrementally with
    :meth:`index_paper`); the index also tracks per-section document
    frequencies and paper lengths needed for TF-IDF scoring.
    """

    #: Registered index-backend whose codec persists this class (see
    #: :mod:`repro.index.backends`); instances built for another backend
    #: get re-stamped by that backend's ``build``.
    backend_name = "memory"

    #: The memory backend mutates in place (see
    #: :meth:`add_document`/:meth:`remove_document`); backends that leave
    #: this False are rebuilt from the corpus when a delta is applied.
    supports_mutation = True

    def __init__(self, analyzer: Optional[Analyzer] = None) -> None:
        self.analyzer = analyzer if analyzer is not None else default_analyzer()
        self._postings: Dict[str, List[Posting]] = {}
        self._document_frequency: Dict[str, int] = {}
        self._paper_terms: Dict[str, Dict[Section, Dict[str, int]]] = {}
        self._n_papers = 0
        self._revision = 0
        # Read-path snapshots handed out by postings()/vocabulary();
        # dropped wholesale on every mutation.  Sharing one immutable
        # tuple per term keeps the query hot path allocation-free.
        self._postings_views: Dict[str, Tuple[Posting, ...]] = {}
        self._vocabulary_view: Optional[Tuple[str, ...]] = None

    def _invalidate_views(self) -> None:
        self._postings_views.clear()
        self._vocabulary_view = None

    # -- construction -------------------------------------------------------------

    def index_corpus(self, corpus: Corpus) -> "InvertedIndex":
        """Index every paper in ``corpus``; returns self for chaining."""
        for paper in corpus:
            self.index_paper(paper)
        return self

    def index_paper(self, paper: Paper) -> None:
        """Index one paper across all textual sections."""
        if paper.paper_id in self._paper_terms:
            raise ValueError(f"paper {paper.paper_id!r} is already indexed")
        per_section: Dict[Section, Dict[str, int]] = {}
        seen_terms = set()
        for section in TEXT_SECTIONS:
            terms = self.analyzer.analyze(paper.section_text(section))
            if not terms:
                continue
            counts: Dict[str, int] = {}
            for term in terms:
                counts[term] = counts.get(term, 0) + 1
            per_section[section] = counts
            for term, frequency in counts.items():
                self._postings.setdefault(term, []).append(
                    Posting(paper.paper_id, section, frequency)
                )
                seen_terms.add(term)
        for term in seen_terms:
            self._document_frequency[term] = self._document_frequency.get(term, 0) + 1
        self._paper_terms[paper.paper_id] = per_section
        self._n_papers += 1
        self._revision += 1
        self._invalidate_views()

    def remove_paper(self, paper_id: str) -> None:
        """Remove one paper from the index (ValueError if not indexed).

        Cost is proportional to the paper's vocabulary times those terms'
        posting-list lengths -- fine for incremental maintenance of a
        living corpus; rebuild from scratch for bulk deletions.
        """
        sections = self._paper_terms.pop(paper_id, None)
        if sections is None:
            raise ValueError(f"paper {paper_id!r} is not indexed")
        terms = {term for counts in sections.values() for term in counts}
        for term in terms:
            remaining = [
                posting
                for posting in self._postings.get(term, ())
                if posting.paper_id != paper_id
            ]
            if remaining:
                self._postings[term] = remaining
            else:
                self._postings.pop(term, None)
            df = self._document_frequency.get(term, 0) - 1
            if df > 0:
                self._document_frequency[term] = df
            else:
                self._document_frequency.pop(term, None)
        self._n_papers -= 1
        self._revision += 1
        self._invalidate_views()

    def add_document(self, paper: Paper) -> None:
        """Mutation-capability alias of :meth:`index_paper`.

        The :class:`~repro.index.backends.base.SearchBackend` mutation
        contract (``supports_mutation``) names the operations
        ``add_document``/``remove_document``; new postings land at the end
        of each term's list, preserving the postings-order contract, and
        the mutation revision is bumped.
        """
        self.index_paper(paper)

    def remove_document(self, paper_id: str) -> None:
        """Mutation-capability alias of :meth:`remove_paper`.

        Surviving postings keep their relative order, so the index is
        byte-equivalent to one that never contained the paper.
        """
        self.remove_paper(paper_id)

    # -- access --------------------------------------------------------------------

    @property
    def n_papers(self) -> int:
        return self._n_papers

    @property
    def revision(self) -> int:
        """Mutation counter: bumped by every paper add/remove.

        Derived caches (e.g. the BM25 section-length cache in the search
        engine) key on this rather than ``n_papers``, so replacing a paper
        without changing the count still invalidates them.
        """
        return self._revision

    @property
    def n_terms(self) -> int:
        return len(self._postings)

    def postings(self, term: str) -> Sequence[Posting]:
        """All postings of ``term``, in indexing order (empty if unseen).

        Returns a cached immutable tuple shared across calls -- the
        query hot path touches every query term once per search, and
        copying the hottest posting lists per call dominated its
        allocations.  The snapshot is invalidated by paper add/remove.
        """
        view = self._postings_views.get(term)
        if view is None:
            entries = self._postings.get(term)
            if entries is None:
                return ()
            view = tuple(entries)
            self._postings_views[term] = view
        return view

    def document_frequency(self, term: str) -> int:
        """Number of papers containing ``term`` in any section."""
        return self._document_frequency.get(term, 0)

    def papers_containing(self, term: str) -> List[str]:
        """Distinct paper ids containing ``term``, in indexing order."""
        seen: Dict[str, None] = {}
        for posting in self._postings.get(term, ()):
            seen.setdefault(posting.paper_id, None)
        return list(seen)

    def term_frequency(
        self, paper_id: str, term: str, section: Optional[Section] = None
    ) -> int:
        """Frequency of ``term`` in ``paper_id`` (one section or summed)."""
        sections = self._paper_terms.get(paper_id)
        if sections is None:
            return 0
        if section is not None:
            return sections.get(section, {}).get(term, 0)
        return sum(counts.get(term, 0) for counts in sections.values())

    def paper_section_terms(
        self, paper_id: str, section: Section
    ) -> Mapping[str, int]:
        """Term-count map of one paper section (empty if absent)."""
        return dict(self._paper_terms.get(paper_id, {}).get(section, {}))

    def vocabulary(self) -> Sequence[str]:
        """All indexed terms, as a stable snapshot in indexing order.

        Never the live ``dict.keys()`` view: callers may add or remove
        papers while iterating the result without a ``RuntimeError``
        (the :class:`~repro.index.backends.base.SearchBackend` contract).
        """
        view = self._vocabulary_view
        if view is None:
            view = self._vocabulary_view = tuple(self._postings)
        return view

    def __contains__(self, term: str) -> bool:
        return term in self._postings

    # -- observability -------------------------------------------------------------

    def resident_postings_bytes(self) -> int:
        """Heap bytes held by the materialised postings structures.

        Bench/observability aid: the memory backend pays this for the
        whole corpus up front, lazy backends only for their cached
        working set.
        """
        total = 0
        for entries in self._postings.values():
            total += sys.getsizeof(entries)
            for posting in entries:
                total += sys.getsizeof(posting) + sys.getsizeof(posting.__dict__)
        return total

    # -- (de)serialisation -----------------------------------------------------------

    def to_payload(self) -> Dict[str, Dict[str, Dict[str, int]]]:
        """JSON-able snapshot: per-paper per-section term counts.

        Postings and document frequencies are fully derivable from the
        per-paper counts, so only those are stored; :meth:`from_payload`
        reconstructs the derived structures in the original order.
        """
        return {
            "papers": {
                paper_id: {
                    section.value: dict(counts)
                    for section, counts in sections.items()
                }
                for paper_id, sections in self._paper_terms.items()
            }
        }

    @classmethod
    def from_payload(
        cls, payload: Mapping, analyzer: Optional[Analyzer] = None
    ) -> "InvertedIndex":
        """Rebuild from :meth:`to_payload` output without re-analysing text.

        Replaying papers in stored order reproduces the exact postings
        and document-frequency state of the original index.
        """
        index = cls(analyzer=analyzer)
        for paper_id, sections in payload["papers"].items():
            per_section: Dict[Section, Dict[str, int]] = {}
            seen_terms = set()
            for section_value, counts in sections.items():
                section = Section(section_value)
                counts = {term: int(tf) for term, tf in counts.items()}
                per_section[section] = counts
                for term, frequency in counts.items():
                    index._postings.setdefault(term, []).append(
                        Posting(paper_id, section, frequency)
                    )
                    seen_terms.add(term)
            for term in seen_terms:
                index._document_frequency[term] = (
                    index._document_frequency.get(term, 0) + 1
                )
            index._paper_terms[paper_id] = per_section
            index._n_papers += 1
            index._revision += 1
        return index

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"InvertedIndex({self._n_papers} papers, {self.n_terms} terms)"
