"""Unit tests for representative-paper selection."""

import pytest

from repro.core.context import Context, ContextPaperSet
from repro.core.representative import select_representative, select_representatives
from repro.core.vectors import PaperVectorStore


@pytest.fixture(scope="module")
def store(request):
    return PaperVectorStore(request.getfixturevalue("tiny_corpus"))


class TestSelectRepresentative:
    def test_empty_candidates(self, store):
        assert select_representative(store, []) is None

    def test_single_candidate(self, store):
        assert select_representative(store, ["M1"]) == "M1"

    def test_picks_centroid_closest(self, store):
        # Among the three metabolic papers, M2 shares vocabulary with both
        # M1 (glucose) and M3 (survey phrasing is distinct), so the pick
        # must be one of the truly central ones -- never the outlier X1.
        chosen = select_representative(store, ["M1", "M2", "M3"])
        assert chosen in {"M1", "M2", "M3"}
        # Adding an off-topic paper does not make it representative.
        chosen_with_outlier = select_representative(store, ["M1", "M2", "M3", "X1"])
        assert chosen_with_outlier != "X1"

    def test_duplicates_ignored(self, store):
        assert select_representative(store, ["M1", "M1"]) == "M1"

    def test_deterministic(self, store):
        a = select_representative(store, ["M1", "M2", "M3"])
        b = select_representative(store, ["M3", "M2", "M1"])
        assert a == b


class TestSelectRepresentatives:
    def test_prefers_training_papers(self, store, tiny_ontology):
        paper_set = ContextPaperSet(
            tiny_ontology,
            [
                Context(
                    "met",
                    ("M1", "M2", "M3", "X1"),
                    training_paper_ids=("M1",),
                )
            ],
        )
        reps = select_representatives(store, paper_set)
        assert reps == {"met": "M1"}

    def test_falls_back_to_members(self, store, tiny_ontology):
        paper_set = ContextPaperSet(
            tiny_ontology, [Context("sig", ("S1", "S2"))]
        )
        reps = select_representatives(store, paper_set)
        assert reps["sig"] in {"S1", "S2"}

    def test_contextless_contexts_omitted(self, store, tiny_ontology):
        paper_set = ContextPaperSet(tiny_ontology, [Context("glu", ())])
        assert select_representatives(store, paper_set) == {}
