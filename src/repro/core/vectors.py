"""Per-section TF-IDF vector store.

One shared component builds and caches every paper vector the text
machinery needs: per-section vectors for the section 3.2 similarity
facets, and whole-paper vectors for representative selection, context
assignment, and AC-answer-set centroid expansion.

Each textual section gets its *own* TF-IDF model (title term statistics
differ wildly from body statistics), plus one model over concatenated
text.  Vectors are computed lazily and memoised -- contexts overlap
heavily, so most papers are vectorised once but consumed many times.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.corpus.corpus import Corpus
from repro.corpus.paper import Paper, Section, TEXT_SECTIONS
from repro.text.analyze import Analyzer, default_analyzer
from repro.text.vectorize import SparseVector, TfidfModel, centroid


class PaperVectorStore:
    """Lazy per-section and whole-paper TF-IDF vectors for a corpus."""

    def __init__(self, corpus: Corpus, analyzer: Optional[Analyzer] = None) -> None:
        self.corpus = corpus
        self.analyzer = analyzer if analyzer is not None else default_analyzer()
        self._section_models: Dict[Section, TfidfModel] = {}
        self._full_model: Optional[TfidfModel] = None
        self._section_vectors: Dict[Section, Dict[str, SparseVector]] = {
            section: {} for section in TEXT_SECTIONS
        }
        self._full_vectors: Dict[str, SparseVector] = {}
        # Ordered term->count maps of each paper's full text, keyed in
        # first-occurrence token order.  Analysis is the dominant cost of
        # (re)vectorisation; after an incremental IDF update every cached
        # vector is stale but these counts stay valid, so re-weighting a
        # paper is O(distinct terms) instead of O(tokens).
        self._full_counts: Dict[str, Dict[str, int]] = {}

    # -- models -----------------------------------------------------------------

    @staticmethod
    def _ordered_counts(terms: Iterable[str]) -> Dict[str, int]:
        """Term counts keyed in first-occurrence order of the stream."""
        counts: Dict[str, int] = {}
        for term in terms:
            counts[term] = counts.get(term, 0) + 1
        return counts

    def full_counts(self, paper_id: str) -> Mapping[str, int]:
        """Cached ordered term counts of one paper's full text."""
        counts = self._full_counts.get(paper_id)
        if counts is None:
            counts = self._ordered_counts(
                self.analyzer.analyze(self.corpus.paper(paper_id).all_text())
            )
            self._full_counts[paper_id] = counts
        return counts

    def section_model(self, section: Section) -> TfidfModel:
        """The TF-IDF model fit over one section of every corpus paper."""
        model = self._section_models.get(section)
        if model is None:
            model = TfidfModel()
            model.fit(
                self.analyzer.analyze(paper.section_text(section))
                for paper in self.corpus
            )
            self._section_models[section] = model
        return model

    @property
    def full_model(self) -> TfidfModel:
        """The TF-IDF model over whole-paper (all sections) text.

        Fitting from the ordered count maps assigns the same term ids and
        document frequencies as fitting from the raw token streams (ids
        come from first-occurrence order, frequencies from distinct
        terms), while caching the counts for cheap re-vectorisation.
        """
        if self._full_model is None:
            model = TfidfModel()
            for paper in self.corpus:
                model.vocabulary.add_document(self.full_counts(paper.paper_id))
            self._full_model = model
        return self._full_model

    # -- vectors ----------------------------------------------------------------

    def section_vector(self, paper_id: str, section: Section) -> SparseVector:
        """Unit TF-IDF vector of one paper section (empty if no text)."""
        cache = self._section_vectors[section]
        vector = cache.get(paper_id)
        if vector is None:
            model = self.section_model(section)
            text = self.corpus.paper(paper_id).section_text(section)
            vector = model.vectorize(self.analyzer.analyze(text))
            cache[paper_id] = vector
        return vector

    def full_vector(self, paper_id: str) -> SparseVector:
        """Unit TF-IDF vector of the paper's full text."""
        vector = self._full_vectors.get(paper_id)
        if vector is None:
            vector = self.full_model.vectorize_counts(self.full_counts(paper_id))
            self._full_vectors[paper_id] = vector
        return vector

    def query_vector(self, text: str) -> SparseVector:
        """Vectorise free text against the whole-paper model."""
        return self.full_model.vectorize(self.analyzer.analyze(text))

    def centroid_of(self, paper_ids: Iterable[str]) -> SparseVector:
        """Centroid of the whole-paper vectors of ``paper_ids``."""
        return centroid(self.full_vector(pid) for pid in paper_ids)

    def section_similarity(
        self, paper_a: str, paper_b: str, section: Section
    ) -> float:
        """Cosine similarity of one section across two papers."""
        return self.section_vector(paper_a, section).cosine(
            self.section_vector(paper_b, section)
        )

    def full_similarity(self, paper_a: str, paper_b: str) -> float:
        """Cosine similarity of whole-paper vectors."""
        return self.full_vector(paper_a).cosine(self.full_vector(paper_b))

    # -- incremental updates ------------------------------------------------------

    def apply_delta(
        self, added: Sequence[Paper], removed: Sequence[Paper]
    ) -> None:
        """Splice a corpus delta into every fitted model.

        ``removed`` takes the :class:`Paper` objects (already popped from
        the corpus) because their text is needed to reverse the document
        statistics.  Fitted vocabularies are updated exactly -- removal
        leaves "ghost" terms with zero document frequency which
        vectorisation skips, so the updated models produce the same
        vectors as models fitted from scratch on the surviving papers.
        Every cached vector is dropped (a corpus-wide IDF shift stales
        them all); whole-paper vectors rebuild cheaply from the retained
        count maps.  Models not yet fitted stay lazy and simply see the
        mutated corpus when first requested.
        """
        if self._full_model is not None:
            vocabulary = self._full_model.vocabulary
            for paper in removed:
                counts = self._full_counts.pop(paper.paper_id, None)
                if counts is None:
                    counts = self._ordered_counts(
                        self.analyzer.analyze(paper.all_text())
                    )
                vocabulary.remove_document(counts)
            for paper in added:
                counts = self._ordered_counts(
                    self.analyzer.analyze(paper.all_text())
                )
                self._full_counts[paper.paper_id] = counts
                vocabulary.add_document(counts)
        else:
            for paper in removed:
                self._full_counts.pop(paper.paper_id, None)
        for section, model in self._section_models.items():
            vocabulary = model.vocabulary
            for paper in removed:
                vocabulary.remove_document(
                    self.analyzer.analyze(paper.section_text(section))
                )
            for paper in added:
                vocabulary.add_document(
                    self.analyzer.analyze(paper.section_text(section))
                )
        for cache in self._section_vectors.values():
            cache.clear()
        self._full_vectors.clear()

    # -- (de)serialisation --------------------------------------------------------

    def warm(self) -> None:
        """Fit every model and vectorise every paper's full text.

        The workspace builder calls this before serialising so a loaded
        store serves queries (which need the full model) and centroid /
        representative work (full vectors) without touching the analyzer.
        Per-section vectors stay lazy: only score *building* reads them.
        """
        for section in TEXT_SECTIONS:
            self.section_model(section)
        for paper_id in self.corpus.paper_ids():
            self.full_vector(paper_id)

    def to_payload(self) -> Dict[str, object]:
        """JSON-able snapshot: fitted models + cached whole-paper vectors."""
        return {
            "section_models": {
                section.value: model.to_payload()
                for section, model in self._section_models.items()
            },
            "full_model": (
                self._full_model.to_payload()
                if self._full_model is not None
                else None
            ),
            "full_vectors": {
                paper_id: {
                    str(term_id): weight
                    for term_id, weight in vector.weights.items()
                }
                for paper_id, vector in self._full_vectors.items()
            },
        }

    @classmethod
    def from_payload(
        cls, payload: Dict, corpus: Corpus, analyzer: Optional[Analyzer] = None
    ) -> "PaperVectorStore":
        """Rebuild a warmed store from :meth:`to_payload` output."""
        store = cls(corpus, analyzer)
        for section_value, model_payload in payload["section_models"].items():
            store._section_models[Section(section_value)] = TfidfModel.from_payload(
                model_payload
            )
        if payload.get("full_model") is not None:
            store._full_model = TfidfModel.from_payload(payload["full_model"])
        store._full_vectors = {
            paper_id: SparseVector(
                {int(term_id): float(w) for term_id, w in weights.items()}
            )
            for paper_id, weights in payload["full_vectors"].items()
        }
        return store
