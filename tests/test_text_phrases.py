"""Unit tests for apriori-style frequent phrase mining."""

import pytest

from repro.text.phrases import FrequentPhraseMiner, Phrase


def phrase_set(phrases, length=None):
    return {
        p.words for p in phrases if length is None or len(p.words) == length
    }


class TestFrequentPhraseMiner:
    def test_single_tokens_with_support(self):
        docs = [["a", "b"], ["a", "c"], ["a"]]
        phrases = FrequentPhraseMiner(min_support=2, max_length=1).mine(docs)
        assert phrase_set(phrases) == {("a",)}
        (only,) = phrases
        assert only.support == 3
        assert only.support_ratio == pytest.approx(1.0)

    def test_bigrams_require_frequent_parts(self):
        docs = [
            ["gene", "expression", "data"],
            ["gene", "expression", "noise"],
        ]
        phrases = FrequentPhraseMiner(min_support=2, max_length=2).mine(docs)
        assert ("gene", "expression") in phrase_set(phrases, 2)
        # 'data'/'noise' are infrequent singletons, so no bigram includes them.
        assert ("expression", "data") not in phrase_set(phrases, 2)

    def test_document_support_counts_doc_once(self):
        docs = [["x", "x", "x"], ["y"]]
        phrases = FrequentPhraseMiner(min_support=2, max_length=1).mine(docs)
        # 'x' occurs three times but in only one document.
        assert phrase_set(phrases) == set()

    def test_trigram_growth(self):
        docs = [
            ["rna", "polymerase", "activity", "assay"],
            ["rna", "polymerase", "activity", "levels"],
            ["other", "words", "entirely", "here"],
        ]
        phrases = FrequentPhraseMiner(min_support=2, max_length=3).mine(docs)
        assert ("rna", "polymerase", "activity") in phrase_set(phrases, 3)

    def test_apriori_pruning_blocks_missing_suffix(self):
        # 'b c' frequent, 'a b' infrequent -> 'a b c' cannot be produced.
        docs = [["a", "b", "c"], ["x", "b", "c"]]
        phrases = FrequentPhraseMiner(min_support=2, max_length=3).mine(docs)
        assert ("b", "c") in phrase_set(phrases, 2)
        assert phrase_set(phrases, 3) == set()

    def test_empty_documents(self):
        assert FrequentPhraseMiner().mine([]) == []

    def test_all_docs_empty_token_lists(self):
        assert FrequentPhraseMiner().mine([[], []]) == []

    def test_min_support_validation(self):
        with pytest.raises(ValueError):
            FrequentPhraseMiner(min_support=0)

    def test_max_length_validation(self):
        with pytest.raises(ValueError):
            FrequentPhraseMiner(max_length=0)

    def test_output_ordering(self):
        docs = [["b", "a"], ["b", "a"]]
        phrases = FrequentPhraseMiner(min_support=2, max_length=2).mine(docs)
        lengths = [len(p.words) for p in phrases]
        assert lengths == sorted(lengths)

    def test_min_support_one_keeps_everything(self):
        docs = [["unique", "tokens"]]
        phrases = FrequentPhraseMiner(min_support=1, max_length=2).mine(docs)
        assert ("unique", "tokens") in phrase_set(phrases, 2)


class TestPhrase:
    def test_text_joins_words(self):
        assert Phrase(("gene", "expression"), 2, 0.5).text() == "gene expression"

    def test_len(self):
        assert len(Phrase(("a", "b", "c"), 1, 0.1)) == 3
