"""Apriori-style frequent phrase mining.

Pattern construction (paper section 3.3) derives *significant terms* for a
context from (i) the words of the context term itself and (ii) frequent
terms/phrases in the context's training papers, "combined using a procedure
similar to the apriori algorithm" (reference [5], Agrawal & Srikant, VLDB
1994).

This module implements the level-wise flavour of that idea for *contiguous*
phrases: frequent phrases of length n are grown only from frequent phrases
of length n-1 (the anti-monotone pruning step of apriori), with support
counted as the number of training documents containing the phrase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.obs import get_registry
from repro.text.tokenize import ngrams


@dataclass(frozen=True, order=True)
class Phrase:
    """A frequent phrase with its document support.

    Attributes
    ----------
    words:
        The phrase tokens, in order.
    support:
        Number of training documents containing the phrase.
    support_ratio:
        ``support`` divided by number of training documents.
    """

    words: Tuple[str, ...]
    support: int = field(compare=False)
    support_ratio: float = field(compare=False)

    def __len__(self) -> int:
        return len(self.words)

    def text(self) -> str:
        """Space-joined phrase string."""
        return " ".join(self.words)


class FrequentPhraseMiner:
    """Mine frequent contiguous phrases from tokenised documents.

    Parameters
    ----------
    min_support:
        Minimum number of documents a phrase must appear in.  Values below 1
        are rejected; pattern construction typically uses 2 so one-off noise
        never seeds a pattern.
    max_length:
        Longest phrase length to mine.  Pattern middle tuples rarely exceed
        4 words, matching GO term lengths.
    """

    def __init__(self, min_support: int = 2, max_length: int = 4) -> None:
        if min_support < 1:
            raise ValueError(f"min_support must be >= 1, got {min_support}")
        if max_length < 1:
            raise ValueError(f"max_length must be >= 1, got {max_length}")
        self.min_support = min_support
        self.max_length = max_length

    def mine(self, documents: Sequence[Sequence[str]]) -> List[Phrase]:
        """Return all frequent phrases, longest lengths last, ties by text.

        ``documents`` are pre-analysed token sequences (one per training
        paper).  Each document counts a phrase at most once (document
        support, as in apriori over transaction sets).
        """
        n_documents = len(documents)
        if n_documents == 0:
            return []
        phrases: List[Phrase] = []
        # Level 1: frequent single tokens.
        rounds = 1
        frequent_previous = self._count_level(documents, 1, allowed_prefixes=None)
        phrases.extend(self._to_phrases(frequent_previous, n_documents))
        for length in range(2, self.max_length + 1):
            if not frequent_previous:
                break
            # Apriori pruning: a phrase of length n can only be frequent if
            # both its (n-1)-prefix and (n-1)-suffix are frequent.
            rounds += 1
            allowed = set(frequent_previous)
            counts = self._count_level(documents, length, allowed_prefixes=allowed)
            frequent_previous = counts
            phrases.extend(self._to_phrases(counts, n_documents))
        registry = get_registry()
        registry.histogram("patterns.miner.apriori_rounds").observe(rounds)
        registry.counter("patterns.miner.phrases_mined").inc(len(phrases))
        phrases.sort(key=lambda p: (len(p.words), p.words))
        return phrases

    def _count_level(
        self,
        documents: Sequence[Sequence[str]],
        length: int,
        allowed_prefixes: "Set[Tuple[str, ...]] | None",
    ) -> Dict[Tuple[str, ...], int]:
        """Count document support of length-``length`` n-grams.

        When ``allowed_prefixes`` is given, candidates whose (n-1)-prefix or
        (n-1)-suffix is not frequent are pruned before counting -- the
        apriori anti-monotonicity step.
        """
        counts: Dict[Tuple[str, ...], int] = {}
        for tokens in documents:
            seen: Set[Tuple[str, ...]] = set()
            for gram in ngrams(list(tokens), length):
                if gram in seen:
                    continue
                if allowed_prefixes is not None:
                    if gram[:-1] not in allowed_prefixes:
                        continue
                    if gram[1:] not in allowed_prefixes:
                        continue
                seen.add(gram)
                counts[gram] = counts.get(gram, 0) + 1
        return {
            gram: support
            for gram, support in counts.items()
            if support >= self.min_support
        }

    def _to_phrases(
        self, counts: Dict[Tuple[str, ...], int], n_documents: int
    ) -> List[Phrase]:
        return [
            Phrase(words=gram, support=support, support_ratio=support / n_documents)
            for gram, support in counts.items()
        ]
