"""Ablation A6 -- the relevancy mixture R = w_p * prestige + w_m * match.

Section 3 leaves w_prestige/w_matching open.  This bench sweeps the
mixture for the text score function and reports precision at a fixed
threshold with bootstrap confidence intervals, showing how much of the
context-based search gain comes from prestige vs plain text matching.
"""

from conftest import write_result

from repro.core.search import ContextSearchEngine
from repro.eval.metrics import precision
from repro.eval.stats import bootstrap_mean_ci

THRESHOLD = 0.3
MIXES = (0.0, 0.3, 0.5, 0.7, 0.9, 1.0)


def test_ablation_relevancy_weights(
    benchmark, pipeline, queries, precision_experiment, results_dir
):
    def run():
        results = {}
        for w_prestige in MIXES:
            w_matching = 1.0 - w_prestige
            if w_prestige == 0.0 and w_matching == 0.0:
                continue
            engine = ContextSearchEngine(
                pipeline.ontology,
                pipeline.text_paper_set,
                pipeline.prestige("text", "text"),
                pipeline.keyword_engine,
                w_prestige=w_prestige,
                w_matching=w_matching,
            )
            values = []
            for query in queries:
                answers = precision_experiment.answer_set(query)
                hits = engine.search(query)
                surviving = [h.paper_id for h in hits if h.relevancy >= THRESHOLD]
                value = precision(surviving, answers)
                values.append(0.0 if value is None else value)
            results[w_prestige] = bootstrap_mean_ci(values, seed=0)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"text scores on text paper set, precision at t={THRESHOLD} "
        "(mean [95% bootstrap CI]):"
    ]
    for w_prestige, (mean, low, high) in results.items():
        lines.append(
            f"  w_prestige={w_prestige:.1f} w_matching={1 - w_prestige:.1f}: "
            f"{mean:.3f} [{low:.3f}, {high:.3f}]"
        )
    write_result(results_dir, "ablation_relevancy_weights", "\n".join(lines))

    # Sanity: every mixture yields a valid precision; a prestige-aware mix
    # must not be catastrophically worse than match-only ranking.
    for mean, low, high in results.values():
        assert 0.0 <= low <= mean <= high <= 1.0
