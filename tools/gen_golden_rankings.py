#!/usr/bin/env python3
"""Regenerate the ranking-parity golden file.

Runs the demo pipeline over every registered score function x paper set
x selection strategy and records the full ``search`` / ``search_grouped``
/ ``explain`` output to ``tests/data/golden_rankings.json``.  The file is
the parity contract of ``tests/test_ranking_parity.py``: refactors of the
dispatch/serving layers must reproduce these rankings bit for bit.

Only regenerate when the *ranking semantics* intentionally change --
never to paper over an unexplained diff:

    PYTHONPATH=src python tools/gen_golden_rankings.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

GOLDEN_PATH = REPO_ROOT / "tests" / "data" / "golden_rankings.json"

#: Demo-pipeline shape: small enough to score every arm quickly, big
#: enough that rankings have real structure.
SEED, N_PAPERS, N_TERMS = 7, 120, 30
QUERIES = (
    "gene expression regulation",
    "protein binding activity",
    "cell membrane transport",
)
STRATEGIES = ("probe", "name", "representative")


def hit_row(hit):
    return [hit.paper_id, hit.context_id, hit.relevancy, hit.prestige, hit.matching]


def main() -> int:
    from repro import scoring
    from repro.pipeline import build_demo_pipeline

    pipeline = build_demo_pipeline(seed=SEED, n_papers=N_PAPERS, n_terms=N_TERMS)
    combos = {}
    # Every registered function on every paper set: searchability is
    # universal even when a function's evaluation arms are narrower.
    for function in sorted(scoring.function_names()):
        for paper_set in scoring.PAPER_SET_NAMES:
            for strategy in STRATEGIES:
                engine = pipeline.search_engine(function, paper_set, strategy)
                per_query = {}
                for query in QUERIES:
                    hits = engine.search(query, limit=10)
                    groups = engine.search_grouped(query, per_context_limit=5)
                    explain_rows = []
                    if hits:
                        explanation = engine.explain(query, hits[0].paper_id)
                        explain_rows = [
                            explanation.matching,
                            list(explanation.selected_context_ids),
                            [list(row) for row in explanation.in_selected_contexts],
                            explanation.best_relevancy,
                        ]
                    per_query[query] = {
                        "search": [hit_row(h) for h in hits],
                        "grouped": [
                            [
                                group.context_id,
                                group.selection_strength,
                                [hit_row(h) for h in group.hits],
                            ]
                            for group in groups
                        ],
                        "explain": explain_rows,
                    }
                combos[f"{function}/{paper_set}/{strategy}"] = per_query
    payload = {
        "format": "repro/golden-rankings/v1",
        "demo": {"seed": SEED, "n_papers": N_PAPERS, "n_terms": N_TERMS},
        "queries": list(QUERIES),
        "combos": combos,
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(combos)} combos x {len(QUERIES)} queries -> {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
