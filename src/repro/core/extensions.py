"""Section-7 future-work extension: weighted cross-context relationships.

The baseline citation score (section 3.1) drops every citation edge whose
other endpoint lies outside the context.  Section 7 proposes keeping those
edges at *graded weights* instead:

- the other paper is also in the context        -> highest weight (1.0);
- its contexts are hierarchically related to c1 -> higher weight;
- unrelated                                     -> smallest weight.

This module implements that proposal: the scored graph is the context's
papers plus their 1-hop citation boundary, with edge weights from the
schedule above, run through a weighted PageRank.  Scores are reported for
context papers only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.citations.graph import CitationGraph
from repro.core.context import Context, ContextPaperSet
from repro.core.scores.base import PrestigeScoreFunction
from repro.ontology.ontology import Ontology
from repro.ontology.semantic import lin_similarity


@dataclass(frozen=True)
class CrossContextWeights:
    """The graded edge-weight schedule of section 7."""

    within: float = 1.0
    related: float = 0.6
    unrelated: float = 0.2

    def validate(self) -> None:
        if not self.within >= self.related >= self.unrelated >= 0.0:
            raise ValueError(
                "weights must satisfy within >= related >= unrelated >= 0, got "
                f"{self.within} / {self.related} / {self.unrelated}"
            )


def weighted_pagerank(
    nodes: List[str],
    weighted_edges: Dict[Tuple[str, str], float],
    d: float = 0.15,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
) -> Dict[str, float]:
    """PageRank over a weighted directed graph (weights >= 0).

    Out-flow of a node is split proportionally to edge weights; dangling
    nodes donate uniformly; teleport is the uniform E2 form, so scores sum
    to 1.
    """
    if not 0.0 < d < 1.0:
        raise ValueError(f"teleport probability d must be in (0, 1), got {d}")
    n = len(nodes)
    if n == 0:
        return {}
    index = {node: i for i, node in enumerate(nodes)}
    out_weight = np.zeros(n)
    incoming: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
    for (source, target), weight in weighted_edges.items():
        if weight <= 0.0 or source == target:
            continue
        s, t = index[source], index[target]
        out_weight[s] += weight
        incoming[t].append((s, weight))
    p = np.full(n, 1.0 / n)
    damping = 1.0 - d
    for _ in range(max_iterations):
        share = np.where(out_weight > 0, p / np.maximum(out_weight, 1e-300), 0.0)
        flowed = np.array(
            [sum(share[s] * w for s, w in sources) for sources in incoming],
            dtype=float,
        )
        dangling_mass = p[out_weight == 0].sum() / n
        new_p = damping * (flowed + dangling_mass) + d / n
        residual = float(np.abs(new_p - p).sum())
        p = new_p
        if residual < tolerance:
            break
    return {node: float(p[index[node]]) for node in nodes}


class CrossContextCitationPrestige(PrestigeScoreFunction):
    """Citation prestige with graded cross-context edges (section 7).

    Parameters
    ----------
    graph:
        The corpus-wide citation graph.
    paper_set:
        Needed to look up the contexts of boundary papers when grading
        their relationship to the scored context.
    weights:
        The within/related/unrelated schedule.
    grading:
        ``"binary"`` (default) uses the paper's three-way schedule:
        hierarchically related contexts get ``weights.related``, everything
        else ``weights.unrelated``.  ``"lin"`` grades continuously by the
        best Lin semantic similarity between the scored context and the
        boundary paper's contexts:
        ``unrelated + (within - unrelated) * lin`` -- the natural refinement
        the paper's "close relative" phrasing hints at.
    """

    name = "citation-xctx"
    normalization = "max"  # same floor semantics as CitationPrestige

    def __init__(
        self,
        graph: CitationGraph,
        ontology: Ontology,
        paper_set: ContextPaperSet,
        weights: Optional[CrossContextWeights] = None,
        d: float = 0.15,
        grading: str = "binary",
    ) -> None:
        if grading not in ("binary", "lin"):
            raise ValueError(f"grading must be 'binary' or 'lin', got {grading!r}")
        self.graph = graph
        self.ontology = ontology
        self.paper_set = paper_set
        self.weights = weights if weights is not None else CrossContextWeights()
        self.weights.validate()
        self.d = d
        self.grading = grading

    def score_context(self, context: Context) -> Dict[str, float]:
        members: Set[str] = set(context.paper_ids)
        if not members:
            return {}
        boundary = self._boundary_papers(members)
        nodes = sorted(members | boundary)
        edges: Dict[Tuple[str, str], float] = {}
        for node in nodes:
            for target in self.graph.out_neighbors(node):
                if target not in members and node not in members:
                    continue  # edges entirely outside the context are irrelevant
                if target in members or node in members:
                    weight = self._edge_weight(context.term_id, node, target, members)
                    if weight > 0.0:
                        edges[(node, target)] = weight
        scores = weighted_pagerank(nodes, edges, d=self.d)
        return {pid: scores[pid] for pid in context.paper_ids if pid in scores}

    # -- internals ----------------------------------------------------------------

    def _boundary_papers(self, members: Set[str]) -> Set[str]:
        """Papers one citation hop outside the context."""
        boundary: Set[str] = set()
        for paper_id in members:
            if paper_id not in self.graph:
                continue
            boundary.update(self.graph.out_neighbors(paper_id))
            boundary.update(self.graph.in_neighbors(paper_id))
        return boundary - members

    def _edge_weight(
        self, context_id: str, source: str, target: str, members: Set[str]
    ) -> float:
        """Grade one edge by the outside endpoint's context relationship."""
        if source in members and target in members:
            return self.weights.within
        outside = target if source in members else source
        outside_contexts = self.paper_set.contexts_of_paper(outside)
        if not outside_contexts:
            return self.weights.unrelated
        if self.grading == "lin":
            best = max(
                lin_similarity(self.ontology, context_id, other)
                for other in outside_contexts
            )
            return self.weights.unrelated + (
                self.weights.within - self.weights.unrelated
            ) * best
        for other_context in outside_contexts:
            if self.ontology.are_hierarchically_related(context_id, other_context):
                return self.weights.related
        return self.weights.unrelated
