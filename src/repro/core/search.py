"""The context-based search engine (tasks 3-5 of the paradigm).

Search proceeds exactly as section 5.1 describes:

1. *select contexts automatically based on the search term* -- contexts
   are ranked by how strongly their papers respond to a keyword probe of
   the query (weighted by hit score), with a bonus for query words
   appearing in the context term name;
2. *search within selected contexts* -- each paper in a selected context
   gets the section-3 relevancy score
       R(p, q, ci) = w_prestige * prestige(p, ci) + w_matching * match(p, q)
   and papers below the relevancy threshold are dropped;
3. *merge search results from different contexts into a single result
   set* -- a paper appearing in several contexts keeps its best relevancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.context import ContextPaperSet
from repro.core.scores.base import PrestigeScores
from repro.core.vectors import PaperVectorStore
from repro.index.search import KeywordSearchEngine
from repro.obs import get_registry, span
from repro.ontology.ontology import Ontology

#: Available context-selection strategies (task 3 of the paradigm):
#: - "probe": rank contexts by how strongly their papers respond to a
#:   keyword probe of the query (weighted by hit score) plus a term-name
#:   bonus -- the default, works for any paper set;
#: - "name": rank purely by overlap between query terms and the context
#:   term's name words -- cheapest, mirrors GoPubMed-style term lookup;
#: - "representative": rank by cosine similarity between the query vector
#:   and each context representative's full-text vector -- needs a vector
#:   store and a representatives map.
SELECTION_STRATEGIES = ("probe", "name", "representative")


@dataclass(frozen=True)
class SearchHit:
    """One merged search result."""

    paper_id: str
    context_id: str
    relevancy: float
    prestige: float
    matching: float


@dataclass(frozen=True)
class ContextSelection:
    """One selected context with its selection strength (diagnostics)."""

    context_id: str
    strength: float


@dataclass(frozen=True)
class ContextResultGroup:
    """Search results of one context, before cross-context merging.

    This is the presentation the paradigm actually envisions -- "search
    results in each context are ranked by their relevancy scores" -- with
    merging (:meth:`ContextSearchEngine.search`) as the flattened view.
    """

    context_id: str
    selection_strength: float
    hits: Tuple[SearchHit, ...]

    def __len__(self) -> int:
        return len(self.hits)


class ContextSearchEngine:
    """Context-based search over one context paper set + prestige scores.

    Parameters
    ----------
    w_prestige / w_matching:
        The relevancy mixture weights of section 3.  Defaults split evenly;
        experiments sweep them.
    probe_depth:
        How many keyword hits feed context selection.
    name_bonus:
        Additive bonus per query word found in a context's term name
        during selection.
    """

    def __init__(
        self,
        ontology: Ontology,
        paper_set: ContextPaperSet,
        prestige: PrestigeScores,
        keyword_engine: KeywordSearchEngine,
        w_prestige: float = 0.5,
        w_matching: float = 0.5,
        probe_depth: int = 200,
        name_bonus: float = 0.1,
        selection_strategy: str = "probe",
        vectors: "PaperVectorStore | None" = None,
        representatives: "dict | None" = None,
    ) -> None:
        if w_prestige < 0 or w_matching < 0 or (w_prestige + w_matching) == 0:
            raise ValueError(
                "w_prestige and w_matching must be >= 0 and not both zero"
            )
        if selection_strategy not in SELECTION_STRATEGIES:
            raise ValueError(
                f"selection_strategy must be one of {SELECTION_STRATEGIES}, "
                f"got {selection_strategy!r}"
            )
        if selection_strategy == "representative" and (
            vectors is None or not representatives
        ):
            raise ValueError(
                "the 'representative' strategy needs vectors and a "
                "non-empty representatives map"
            )
        self.ontology = ontology
        self.paper_set = paper_set
        self.prestige = prestige
        self.keyword_engine = keyword_engine
        self.w_prestige = w_prestige
        self.w_matching = w_matching
        self.probe_depth = probe_depth
        self.name_bonus = name_bonus
        self.selection_strategy = selection_strategy
        self.vectors = vectors
        self.representatives = dict(representatives) if representatives else {}

    # -- task 3: context selection ---------------------------------------------------

    def select_contexts(
        self, query: str, max_contexts: int = 5
    ) -> List[ContextSelection]:
        """Rank contexts for the query with the configured strategy."""
        with span("search.select", strategy=self.selection_strategy) as trace:
            if self.selection_strategy == "name":
                selections = self._select_by_name(query, max_contexts)
            elif self.selection_strategy == "representative":
                selections = self._select_by_representative(query, max_contexts)
            else:
                selections = self._select_by_probe(query, max_contexts)
            trace.set(probed=len(self.paper_set), selected=len(selections))
        registry = get_registry()
        registry.counter("search.context.contexts_probed").inc(len(self.paper_set))
        registry.counter("search.context.contexts_selected").inc(len(selections))
        return selections

    def _select_by_probe(
        self, query: str, max_contexts: int
    ) -> List[ContextSelection]:
        """Rank contexts by keyword-probe response plus term-name overlap."""
        probe = self.keyword_engine.search(query, limit=self.probe_depth)
        probe_scores = {hit.paper_id: hit.score for hit in probe}
        analyzer = self.keyword_engine.index.analyzer
        query_terms = set(analyzer.analyze(query))
        strengths: Dict[str, float] = {}
        for context in self.paper_set:
            strength = 0.0
            for paper_id in context.paper_ids:
                hit = probe_scores.get(paper_id)
                if hit is not None:
                    strength += hit
            if strength == 0.0:
                continue
            # Normalise by context size so huge contexts don't always win.
            strength /= max(len(context.paper_ids) ** 0.5, 1.0)
            if query_terms:
                name_terms = set(
                    analyzer.analyze(self.ontology.term(context.term_id).name)
                )
                strength += self.name_bonus * len(query_terms & name_terms)
            strengths[context.term_id] = strength
        return self._ranked_selections(strengths, max_contexts)

    def _select_by_name(
        self, query: str, max_contexts: int
    ) -> List[ContextSelection]:
        """Rank by query-term overlap with context term names only.

        The GoPubMed-style lookup the related-work section describes:
        cheap, but blind to contexts whose names share no word with the
        query.
        """
        analyzer = self.keyword_engine.index.analyzer
        query_terms = set(analyzer.analyze(query))
        if not query_terms:
            return []
        strengths: Dict[str, float] = {}
        for context in self.paper_set:
            name_terms = set(
                analyzer.analyze(self.ontology.term(context.term_id).name)
            )
            shared = query_terms & name_terms
            if shared:
                strengths[context.term_id] = len(shared) / len(query_terms)
        return self._ranked_selections(strengths, max_contexts)

    def _select_by_representative(
        self, query: str, max_contexts: int
    ) -> List[ContextSelection]:
        """Rank by cosine similarity to each context's representative paper."""
        assert self.vectors is not None
        query_vector = self.vectors.query_vector(query)
        if not query_vector:
            return []
        strengths: Dict[str, float] = {}
        for context in self.paper_set:
            representative = self.representatives.get(context.term_id)
            if representative is None:
                continue
            similarity = query_vector.cosine(
                self.vectors.full_vector(representative)
            )
            if similarity > 0.0:
                strengths[context.term_id] = similarity
        return self._ranked_selections(strengths, max_contexts)

    @staticmethod
    def _ranked_selections(
        strengths: Dict[str, float], max_contexts: int
    ) -> List[ContextSelection]:
        ranked = sorted(strengths.items(), key=lambda item: (-item[1], item[0]))
        return [
            ContextSelection(context_id=cid, strength=value)
            for cid, value in ranked[:max_contexts]
        ]

    # -- tasks 4 & 5: search and rank -------------------------------------------------

    def search(
        self,
        query: str,
        max_contexts: int = 5,
        threshold: float = 0.0,
        limit: Optional[int] = None,
        contexts: Optional[Sequence[str]] = None,
    ) -> List[SearchHit]:
        """Full context-based search: select, score, threshold, merge.

        ``contexts`` overrides automatic selection (used by experiments
        that fix the context of interest).
        """
        with span("search.run", query=query, threshold=threshold) as trace:
            if contexts is None:
                selected = [
                    s.context_id for s in self.select_contexts(query, max_contexts)
                ]
            else:
                selected = [cid for cid in contexts if cid in self.paper_set]
            if not selected:
                trace.set(selected=0, hits=0)
                return []
            registry = get_registry()
            papers_scored = 0
            papers_dropped = 0
            merge_deduped = 0
            best: Dict[str, SearchHit] = {}
            with span("search.score", contexts=len(selected)) as score_trace:
                match_scores = {
                    hit.paper_id: hit.score
                    for hit in self.keyword_engine.search(query)
                }
                for context_id in selected:
                    context = self.paper_set.context(context_id)
                    context_prestige = self.prestige.of(context_id)
                    for paper_id in context.paper_ids:
                        matching = match_scores.get(paper_id, 0.0)
                        if matching == 0.0:
                            # A paper with no textual response to the query is
                            # not a search result, however prestigious.
                            continue
                        papers_scored += 1
                        prestige = context_prestige.get(paper_id, 0.0)
                        relevancy = (
                            self.w_prestige * prestige + self.w_matching * matching
                        )
                        if relevancy < threshold:
                            papers_dropped += 1
                            continue
                        current = best.get(paper_id)
                        if current is not None:
                            # Merge step: a paper already seen through an
                            # earlier context keeps its best relevancy.
                            merge_deduped += 1
                            if relevancy <= current.relevancy:
                                continue
                        best[paper_id] = SearchHit(
                            paper_id=paper_id,
                            context_id=context_id,
                            relevancy=relevancy,
                            prestige=prestige,
                            matching=matching,
                        )
                score_trace.set(
                    papers_scored=papers_scored, papers_dropped=papers_dropped
                )
            with span("search.merge") as merge_trace:
                hits = sorted(
                    best.values(), key=lambda h: (-h.relevancy, h.paper_id)
                )
                if limit is not None:
                    hits = hits[:limit]
                merge_trace.set(deduped=merge_deduped, hits=len(hits))
            trace.set(hits=len(hits))
            registry.counter("search.context.queries").inc()
            registry.counter("search.context.papers_scored").inc(papers_scored)
            registry.counter("search.context.papers_dropped").inc(papers_dropped)
            registry.counter("search.context.merge_deduped").inc(merge_deduped)
            return hits

    def search_grouped(
        self,
        query: str,
        max_contexts: int = 5,
        threshold: float = 0.0,
        per_context_limit: Optional[int] = None,
    ) -> List[ContextResultGroup]:
        """Search and return results *grouped by context* (unmerged).

        Groups come back in selection-strength order; a paper appearing in
        several selected contexts appears in each group with that
        context's prestige.  Empty groups (no paper cleared the threshold)
        are dropped.
        """
        selections = self.select_contexts(query, max_contexts)
        if not selections:
            return []
        match_scores = {
            hit.paper_id: hit.score for hit in self.keyword_engine.search(query)
        }
        groups: List[ContextResultGroup] = []
        for selection in selections:
            context = self.paper_set.context(selection.context_id)
            context_prestige = self.prestige.of(selection.context_id)
            hits = []
            for paper_id in context.paper_ids:
                matching = match_scores.get(paper_id, 0.0)
                if matching == 0.0:
                    continue
                prestige = context_prestige.get(paper_id, 0.0)
                relevancy = (
                    self.w_prestige * prestige + self.w_matching * matching
                )
                if relevancy < threshold:
                    continue
                hits.append(
                    SearchHit(
                        paper_id=paper_id,
                        context_id=selection.context_id,
                        relevancy=relevancy,
                        prestige=prestige,
                        matching=matching,
                    )
                )
            hits.sort(key=lambda h: (-h.relevancy, h.paper_id))
            if per_context_limit is not None:
                hits = hits[:per_context_limit]
            if hits:
                groups.append(
                    ContextResultGroup(
                        context_id=selection.context_id,
                        selection_strength=selection.strength,
                        hits=tuple(hits),
                    )
                )
        return groups

    def result_ids(self, query: str, **kwargs) -> List[str]:
        """Convenience: just the merged paper ids, best first."""
        return [hit.paper_id for hit in self.search(query, **kwargs)]

    # -- explanation -------------------------------------------------------------------

    def explain(
        self, query: str, paper_id: str, max_contexts: int = 5
    ) -> "RankingExplanation":
        """Why (or why not) ``paper_id`` ranks for ``query``.

        Returns the matching score, the paper's prestige in every selected
        context that contains it, the winning context, and the resulting
        relevancy -- the decomposition a relevance engineer needs when a
        ranking surprises them.
        """
        selections = self.select_contexts(query, max_contexts)
        matching = self.keyword_engine.match_score(query, paper_id)
        per_context: List[Tuple[str, float, float]] = []
        for selection in selections:
            context = self.paper_set.context(selection.context_id)
            if paper_id not in context:
                continue
            prestige = self.prestige.score(selection.context_id, paper_id)
            relevancy = self.w_prestige * prestige + self.w_matching * matching
            per_context.append((selection.context_id, prestige, relevancy))
        per_context.sort(key=lambda row: (-row[2], row[0]))
        return RankingExplanation(
            query=query,
            paper_id=paper_id,
            matching=matching,
            selected_context_ids=tuple(s.context_id for s in selections),
            in_selected_contexts=tuple(per_context),
            best_relevancy=per_context[0][2] if per_context else None,
        )


@dataclass(frozen=True)
class RankingExplanation:
    """Relevancy decomposition for one (query, paper) pair."""

    query: str
    paper_id: str
    matching: float
    #: Every context the selector chose for this query.
    selected_context_ids: Tuple[str, ...]
    #: (context_id, prestige, relevancy) for selected contexts holding
    #: the paper, best first.
    in_selected_contexts: Tuple[Tuple[str, float, float], ...]
    #: Relevancy in the winning context; None when the paper is in no
    #: selected context (it cannot appear in results at all).
    best_relevancy: Optional[float]

    @property
    def retrievable(self) -> bool:
        """Could this paper appear in the merged results for the query?"""
        return self.best_relevancy is not None and self.matching > 0.0

    def format(self) -> str:
        lines = [
            f"query={self.query!r} paper={self.paper_id}",
            f"  text matching score: {self.matching:.3f}",
            f"  selected contexts:   {', '.join(self.selected_context_ids) or '(none)'}",
        ]
        if not self.in_selected_contexts:
            lines.append("  paper is in NO selected context -> never returned")
        for context_id, prestige, relevancy in self.in_selected_contexts:
            lines.append(
                f"  in {context_id}: prestige={prestige:.3f} -> relevancy={relevancy:.3f}"
            )
        if not self.retrievable:
            lines.append("  verdict: not retrievable for this query")
        return "\n".join(lines)
