"""Slow-query log: a bounded ring of the N slowest captured queries.

Request-scoped telemetry (:mod:`repro.obs.request`) offers every
captured :class:`~repro.obs.request.QueryRecord` to this log; the log
keeps only the ``capacity`` slowest, so a long-serving process carries a
fixed-size sample of exactly the queries an operator wants to see.  Each
entry holds the request's full span tree (selection, scoring, cache
lookups, per-worker ``search.run`` children of a batch), its cache
hit/miss attribution, and the score-function timing spans -- everything
needed to answer "which queries are slow and why" without re-running
them.

Dump with ``repro search ... --telemetry-out telemetry.json`` and render
with ``repro obs slowlog --file telemetry.json`` (see
``docs/observability.md``).
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any, Dict, List

from repro.obs.report import render_trace

__all__ = ["SlowQueryLog", "render_slowlog"]


class SlowQueryLog:
    """Thread-safe bounded collection of the slowest query records.

    ``offer`` is O(log capacity): a min-heap keyed on duration keeps the
    current N slowest, so the cheapest captured query is evicted first.
    Ties break on arrival order (earlier record wins eviction).
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError(f"slowlog capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._heap: List = []  # (duration_s, seq, record)
        self._seq = itertools.count()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def offer(self, record) -> bool:
        """Consider one finished record; True when it was kept."""
        entry = (record.duration_s, next(self._seq), record)
        with self._lock:
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, entry)
                return True
            if entry[0] > self._heap[0][0]:
                heapq.heapreplace(self._heap, entry)
                return True
            return False

    def records(self) -> List:
        """Captured records, slowest first."""
        with self._lock:
            entries = sorted(self._heap, key=lambda e: (-e[0], e[1]))
        return [record for _, _, record in entries]

    def to_dicts(self) -> List[Dict[str, Any]]:
        """JSON-able view (slowest first) -- the ``--telemetry-out`` shape."""
        return [record.to_dict() for record in self.records()]

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()


def render_slowlog(entries: List[Dict[str, Any]], limit: int = 0) -> str:
    """ASCII rendering of dumped slowlog entries (slowest first).

    Each entry prints a one-line header (rank, query id, kind, duration,
    why it was captured, cache attribution) followed by its span tree,
    indented -- the same tree ``repro obs report`` renders for a trace
    dump.
    """
    if not entries:
        return "(slow-query log is empty)"
    if limit > 0:
        entries = entries[:limit]
    lines: List[str] = []
    for rank, entry in enumerate(entries, start=1):
        flags = []
        if entry.get("slow"):
            flags.append("slow")
        if entry.get("sampled"):
            flags.append("sampled")
        cache_lookups = entry.get("cache_lookups", 0)
        cache = (
            f"cache={entry.get('cache_hits', 0)}/{cache_lookups}"
            if cache_lookups
            else "cache=-"
        )
        error = entry.get("error")
        lines.append(
            f"#{rank}  {entry.get('query_id', '?')}  "
            f"{entry.get('kind', '?')}  "
            f"{entry.get('duration_ms', 0.0):.3f}ms  "
            f"[{','.join(flags) or 'kept'}]  {cache}  "
            f"query={entry.get('query', '')!r}"
            + (f"  error={error}" if error else "")
        )
        spans = entry.get("spans")
        if spans:
            for line in render_trace([spans]).splitlines():
                lines.append(f"    {line}")
        lines.append("")
    return "\n".join(lines).rstrip()
