"""Command-line interface.

Subcommands mirror a deployment's life cycle:

- ``repro generate``  -- synthesise a corpus + ontology + training map to
  a data directory (the stand-in for parsing PubMed);
- ``repro build``     -- incrementally build the artifact workspace
  (index, vectors, tokens, citation graph, paper sets, representatives,
  prestige scores -- the paper's query-independent pre-processing);
  ``repro precompute`` is kept as an alias;
- ``repro workspace status`` -- per-artifact freshness of a workspace;
- ``repro search``    -- run a context-based search against a data dir
  (hydrates from ``<data>/workspace`` when one is built);
- ``repro serve``     -- run the HTTP search service (``/search``,
  ``/search_grouped``, ``/explain``, ``POST /admin/reload`` with
  admission control, plus the observability routes below);
- ``repro evaluate``  -- run the accuracy/separability evaluation and
  print a summary;
- ``repro obs report`` -- render saved trace/metrics dumps as ASCII;
- ``repro obs slowlog`` -- render the slow-query log of a telemetry dump
  (span trees, cache attribution);
- ``repro obs slo``   -- render the SLO/error-budget report of a dump;
- ``repro obs serve`` -- run the HTTP exposition endpoint (``/metrics``
  in Prometheus text format, ``/health``, ``/slo``, ``/slowlog``).

Every subcommand additionally accepts the observability flags
``--trace-out PATH`` (write the run's span tree as JSON lines),
``--metrics-out PATH`` (write the metrics-registry snapshot as JSON),
``--telemetry-out PATH`` (enable request-scoped query telemetry and
write its slow-query log + SLO report as JSON; tune with
``--sample-rate``/``--slow-ms``/``--slo``), and ``--log-json``
(structured JSON-lines logging; equivalent to
``REPRO_LOG_FORMAT=json``).  See ``docs/observability.md``.

Example::

    repro generate --papers 1200 --terms 250 --out data/
    repro build --data data/
    repro workspace status --data data/
    repro search --data data/ --query "dna repair kinase" --limit 10
    repro search --data data/ --query "dna repair" --trace-out trace.jsonl \
        --metrics-out metrics.json
    repro obs report --trace trace.jsonl --metrics metrics.json
    repro evaluate --data data/ --queries 40
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro import scoring
from repro.core.search import SELECTION_STRATEGIES
from repro.index import backends as index_backends
from repro.corpus import write_corpus_jsonl
from repro.datagen import CorpusGenerator, OntologyGenerator
from repro.eval.experiments import PrecisionExperiment, SeparabilityExperiment
from repro.obs import (
    configure_logging,
    configure_telemetry,
    format_slo_report,
    get_registry,
    parse_slo,
    render_slowlog,
    reset_telemetry,
    start_tracing,
    stop_tracing,
)
from repro.obs.report import render_report
from repro.ontology import write_obo
from repro.pipeline import Pipeline

CORPUS_FILE = "corpus.jsonl"
ONTOLOGY_FILE = "ontology.obo"
TRAINING_FILE = "training.json"


def _cmd_generate(args: argparse.Namespace) -> int:
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    if args.preset:
        from repro.datagen.presets import get_preset

        generator = get_preset(args.preset).generator()
    else:
        generator = CorpusGenerator(
            n_papers=args.papers,
            ontology_generator=OntologyGenerator(
                n_terms=args.terms, max_depth=args.max_depth
            ),
        )
    dataset = generator.generate(seed=args.seed)
    write_corpus_jsonl(dataset.corpus, out / CORPUS_FILE)
    write_obo(dataset.ontology, out / ONTOLOGY_FILE)
    with open(out / TRAINING_FILE, "w", encoding="utf-8") as handle:
        json.dump(dataset.training_papers, handle)
    print(
        f"wrote {len(dataset.corpus)} papers, {len(dataset.ontology)} terms, "
        f"training map -> {out}/"
    )
    return 0


def _workspace_dir(data_dir: str) -> Path:
    return Path(data_dir) / "workspace"


def _load_pipeline(
    data_dir: str, use_workspace: bool = True, **pipeline_kwargs
) -> Pipeline:
    """Open a data directory; hydrate from its workspace when one exists.

    Hydration is non-strict: whatever is fresh loads from disk, anything
    stale falls back to the lazy in-memory build (``repro build`` makes
    the next start cold-start-free again).
    """
    try:
        pipeline = Pipeline.from_directory(data_dir, **pipeline_kwargs)
    except (FileNotFoundError, ValueError) as error:
        raise SystemExit(f"error: {error}") from error
    workspace = _workspace_dir(data_dir)
    if use_workspace and (workspace / "manifest.json").exists():
        from repro.workspace import open_workspace

        try:
            open_workspace(pipeline, workspace, strict=False)
        except ValueError as error:
            print(
                f"warning: ignoring workspace {workspace}: {error}",
                file=sys.stderr,
            )
    return pipeline


def _read_queries_file(path: str) -> List[str]:
    """One query per line; blank lines and ``#`` comment lines are skipped."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as error:
        raise SystemExit(f"error: cannot read queries file: {error}") from error
    queries = [
        line.strip()
        for line in text.splitlines()
        if line.strip() and not line.lstrip().startswith("#")
    ]
    if not queries:
        raise SystemExit(f"error: no queries in {path}")
    return queries


def _print_hits(pipeline, query: str, hits) -> None:
    from repro.index.snippets import best_snippet

    for hit in hits:
        paper = pipeline.corpus.paper(hit.paper_id)
        context = pipeline.ontology.term(hit.context_id)
        print(
            f"{hit.relevancy:.3f}  [{hit.paper_id}] {paper.title[:60]}\n"
            f"        prestige={hit.prestige:.2f} match={hit.matching:.2f} "
            f"context={context.term_id} ({context.name[:40]})"
        )
        snippet = best_snippet(paper, query)
        if snippet is not None:
            print(f"        {snippet.text[:100]}")


def _cmd_search(args: argparse.Namespace) -> int:
    pipeline = _load_pipeline(
        args.data,
        use_workspace=not args.no_workspace,
        result_cache_size=0 if args.no_result_cache else 256,
        index_backend=args.index_backend,
    )
    if args.queries_file is not None:
        queries = _read_queries_file(args.queries_file)
        batches = pipeline.search_many(
            queries,
            function=args.function,
            paper_set_name=args.paper_set,
            limit=args.limit,
            threshold=args.threshold,
            selection_strategy=args.selection_strategy,
            max_workers=args.workers,
        )
        answered = 0
        for query, hits in zip(queries, batches):
            print(f"== {query}")
            if not hits:
                print("no results")
            else:
                answered += 1
                _print_hits(pipeline, query, hits)
        return 0 if answered else 1
    hits = pipeline.search(
        args.query,
        function=args.function,
        paper_set_name=args.paper_set,
        limit=args.limit,
        threshold=args.threshold,
        selection_strategy=args.selection_strategy,
    )
    if not hits:
        print("no results")
        return 1
    _print_hits(pipeline, args.query, hits)
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    pipeline = _load_pipeline(args.data, use_workspace=not args.no_workspace)
    if args.report:
        from repro.eval.report import generate_report

        queries = _derive_queries(pipeline, args.queries)
        if not queries:
            print("error: could not derive queries", file=sys.stderr)
            return 1
        text = generate_report(pipeline, queries)
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"report written to {args.report}")
        return 0
    queries = _derive_queries(pipeline, args.queries)
    if not queries:
        print("error: could not derive queries from the ontology", file=sys.stderr)
        return 1
    experiment = PrecisionExperiment(
        pipeline, queries, thresholds=(0.1, 0.2, 0.3, 0.4, 0.5)
    )
    print(f"evaluating {len(queries)} queries\n")
    # The sweep is registry-driven: every (function, paper set) arm a
    # registered score function declares is evaluated.
    for function, paper_set in scoring.evaluation_arms():
        curve = experiment.run(function, paper_set)
        print(f"[{function} scores on {paper_set}-based paper set]")
        print(curve.format_table())
        print()
    for function, paper_set in scoring.evaluation_arms():
        result = SeparabilityExperiment(
            pipeline.experiment_paper_set(paper_set)
        ).run(pipeline.prestige(function, paper_set))
        print(
            f"separability[{function}/{paper_set}]: mean SD "
            f"{result.mean_sd():.2f} over {len(result.sd_by_context)} contexts"
        )
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    """Calibrate w_prestige / threshold on derived validation queries."""
    from repro.core.tuning import RelevancyTuner

    pipeline = _load_pipeline(args.data, use_workspace=not args.no_workspace)
    queries = _derive_queries(pipeline, args.queries)
    if not queries:
        print("error: could not derive queries", file=sys.stderr)
        return 1
    tuner = RelevancyTuner(
        pipeline, queries, function=args.function, paper_set_name=args.paper_set
    )
    result = tuner.tune()
    print(result.format_table())
    print(
        f"\nbest: w_prestige={result.best.w_prestige:.2f} "
        f"threshold={result.best.threshold:.2f} (F1={result.best.f1:.3f})"
    )
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Build a data directory from MEDLINE XML + OBO + GAF files."""
    from repro.ingest.gaf import read_gaf_training_map
    from repro.ingest.medline import read_medline_xml
    from repro.ontology.obo import read_obo

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    corpus = read_medline_xml(args.medline)
    ontology = read_obo(args.obo)
    training = read_gaf_training_map(
        args.gaf,
        restrict_to_paper_ids=corpus.paper_ids(),
        max_papers_per_term=args.max_training_per_term,
    )
    # Drop training entries for terms missing from the ontology so the
    # pipeline never trips over an unknown context.
    training = {tid: pids for tid, pids in training.items() if tid in ontology}
    write_corpus_jsonl(corpus, out / CORPUS_FILE)
    write_obo(ontology, out / ONTOLOGY_FILE)
    with open(out / TRAINING_FILE, "w", encoding="utf-8") as handle:
        json.dump(training, handle)
    n_evidence = sum(len(p) for p in training.values())
    print(
        f"ingested {len(corpus)} papers, {len(ontology)} terms, "
        f"{n_evidence} evidence links over {len(training)} terms -> {out}/"
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    """Lint the corpus of a data directory; exit 1 on error findings."""
    from repro.corpus.io import read_corpus_jsonl
    from repro.corpus.validate import validate_corpus

    corpus_path = Path(args.data) / CORPUS_FILE
    if not corpus_path.exists():
        raise SystemExit(f"error: {corpus_path} not found")
    report = validate_corpus(read_corpus_jsonl(corpus_path))
    print(report.summary())
    if args.verbose:
        for finding in report.findings:
            print(f"  [{finding.severity}] {finding.paper_id}: {finding.message}")
    return 0 if report.ok else 1


def _derive_queries(pipeline: Pipeline, n_queries: int) -> List[str]:
    """Topical workload from the loaded data itself: queries mix words of
    mid-level term names (works for real GO data too)."""
    queries: List[str] = []
    for term_id in pipeline.ontology.term_ids():
        if pipeline.ontology.level(term_id) >= 3:
            words = [
                w for w in pipeline.ontology.term(term_id).name_words()
                if len(w) > 3
            ]
            if len(words) >= 2:
                queries.append(" ".join(words[:3]))
        if len(queries) >= n_queries:
            break
    return queries


def _cmd_build(args: argparse.Namespace) -> int:
    """Incrementally build the artifact workspace (`repro precompute` alias)."""
    pipeline = _load_pipeline(
        args.data, use_workspace=False, index_backend=args.index_backend
    )
    report = pipeline.build_workspace(
        _workspace_dir(args.data), only=args.only or None, force=args.force
    )
    print(report.format_table())
    if report.is_noop():
        print("workspace is up to date (no-op)")
    return 0


def _format_generation_lineage(workspace: Path) -> List[str]:
    """Human-readable generation chain of a workspace, newest first.

    Manifests written before incremental ingestion lack the
    ``generation`` key and read as a single full-build generation 0.
    """
    from repro.workspace.manifest import read_generation_chain

    try:
        chain = read_generation_chain(workspace)
    except ValueError as error:
        return [f"generation lineage: BROKEN ({error})"]
    if not chain:
        return []
    lines = ["generation lineage:"]
    for payload in chain:
        generation = int(payload.get("generation", 0))
        delta = payload.get("delta")
        if delta is not None:
            kind = f"delta  +{len(delta['added'])} -{len(delta['removed'])}"
        else:
            kind = "full"
        parent = payload.get("parent")
        chained = f"  parent {parent[:12]}" if parent else ""
        lines.append(f"  gen {generation:<3} {kind}{chained}")
    return lines


def _cmd_workspace_status(args: argparse.Namespace) -> int:
    """Show per-artifact freshness of a data directory's workspace."""
    from repro.workspace import workspace_status

    pipeline = _load_pipeline(
        args.data, use_workspace=False, index_backend=args.index_backend
    )
    statuses = workspace_status(pipeline, _workspace_dir(args.data))
    stale = 0
    print(f"workspace: {_workspace_dir(args.data)}")
    stored = index_backends.sniff_backend(_workspace_dir(args.data) / "index.json")
    on_disk = f" (on disk: {stored})" if stored else ""
    print(f"index backend: {pipeline.index_backend}{on_disk}")
    for line in _format_generation_lineage(_workspace_dir(args.data)):
        print(line)
    for status in statuses:
        note = f"  ({status.reason})" if status.reason else ""
        print(f"  {status.name:<24} {status.state}{note}")
        if status.state != "fresh":
            stale += 1
    if stale:
        print(f"{stale} artifact(s) need `repro build`")
        return 1
    print("all artifacts fresh")
    return 0


def _cmd_ingest_delta(args: argparse.Namespace) -> int:
    """Apply a corpus delta to a built workspace as a new generation."""
    from repro.corpus.corpus import CorpusError
    from repro.corpus.io import read_corpus_jsonl
    from repro.workspace import StaleWorkspaceError, ingest_delta

    if not args.add and not args.remove:
        print("error: pass --add and/or --remove", file=sys.stderr)
        return 1
    added = []
    if args.add:
        try:
            added = list(read_corpus_jsonl(args.add))
        except (OSError, ValueError, CorpusError) as error:
            print(f"error: cannot read {args.add}: {error}", file=sys.stderr)
            return 1
    pipeline = _load_pipeline(
        args.data, use_workspace=True, index_backend=args.index_backend
    )
    workspace = _workspace_dir(args.data)
    try:
        report, build_report = ingest_delta(
            pipeline, workspace, added_papers=added, removed_ids=args.remove or []
        )
    except (CorpusError, StaleWorkspaceError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if build_report is None:
        print("delta is a no-op; workspace unchanged")
        return 0
    out_corpus = args.out_corpus or str(Path(args.data) / CORPUS_FILE)
    write_corpus_jsonl(pipeline.corpus, out_corpus)
    from repro.workspace.manifest import read_manifest

    manifest = read_manifest(workspace) or {}
    print(build_report.format_table())
    print(
        f"generation {manifest.get('generation')}: "
        f"+{len(report.added)} papers, -{len(report.removed)} papers, "
        f"{len(report.changed_contexts)} paper set(s) with changed contexts"
    )
    print(
        f"scores patched: {', '.join(report.scores_patched) or 'none'}; "
        f"dropped for lazy recompute: {', '.join(report.scores_dropped) or 'none'}"
    )
    print(f"corpus written to {out_corpus}")
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    """Render previously saved trace/metrics dumps as human-readable text."""
    if not args.trace and not args.metrics:
        print("error: pass --trace and/or --metrics", file=sys.stderr)
        return 1
    for path in (args.trace, args.metrics):
        if path and not Path(path).exists():
            print(f"error: {path} not found", file=sys.stderr)
            return 1
    print(render_report(trace_path=args.trace, metrics_path=args.metrics))
    return 0


def _load_telemetry_dump(path: str) -> dict:
    """Read a ``--telemetry-out`` JSON dump, with friendly errors."""
    dump_path = Path(path)
    if not dump_path.exists():
        raise SystemExit(f"error: {path} not found")
    try:
        with open(dump_path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except json.JSONDecodeError as error:
        raise SystemExit(f"error: {path}: corrupt JSON ({error})") from error
    if not isinstance(data, dict):
        raise SystemExit(f"error: {path} is not a telemetry dump")
    return data


def _cmd_obs_slowlog(args: argparse.Namespace) -> int:
    """Render the slow-query log of a telemetry dump (slowest first)."""
    data = _load_telemetry_dump(args.file)
    entries = data.get("slowlog", [])
    if args.format == "json":
        if args.limit:
            entries = entries[:args.limit]
        print(json.dumps({"slowlog": entries}, indent=2, sort_keys=True))
        return 0
    print(render_slowlog(entries, limit=args.limit))
    return 0


def _cmd_obs_slo(args: argparse.Namespace) -> int:
    """Render the SLO / error-budget report of a telemetry dump."""
    data = _load_telemetry_dump(args.file)
    statuses = data.get("slo", [])
    if args.format == "json":
        print(json.dumps({"slo": statuses}, indent=2, sort_keys=True))
        return 0
    print(format_slo_report(statuses))
    return 0


def _cmd_obs_analytics(args: argparse.Namespace) -> int:
    """Render a running service's /analytics payload (or a saved copy)."""
    from repro.serving.analytics import render_analytics

    if bool(args.url) == bool(args.file):
        print("error: pass exactly one of --url or --file", file=sys.stderr)
        return 1
    if args.url:
        import urllib.error
        import urllib.request

        url = args.url.rstrip("/") + "/analytics"
        try:
            with urllib.request.urlopen(url, timeout=30) as response:
                raw = response.read()
        except (urllib.error.URLError, OSError) as error:
            print(f"error: cannot fetch {url}: {error}", file=sys.stderr)
            return 1
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            print(
                f"error: {url} did not answer JSON ({error})",
                file=sys.stderr,
            )
            return 1
    else:
        payload = _load_telemetry_dump(args.file)
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(render_analytics(payload))
    return 0


def _parse_slo_args(specs) -> list:
    slos = []
    for spec in specs or ():
        try:
            slos.append(parse_slo(spec))
        except ValueError as error:
            raise SystemExit(f"error: {error}") from error
    return slos


def _cmd_obs_serve(args: argparse.Namespace) -> int:
    """Run the HTTP exposition endpoint over a loaded pipeline."""
    import time

    from repro.obs.server import ExpositionServer

    configure_telemetry(
        enabled=True,
        sample_rate=args.sample_rate,
        slow_ms=args.slow_ms,
        slos=_parse_slo_args(args.slo) or None,
    )
    pipeline = _load_pipeline(args.data, use_workspace=not args.no_workspace)
    if args.warmup:
        queries = _derive_queries(pipeline, args.warmup)
        if queries:
            # Exercise both request kinds so /metrics exposes the
            # search.run.latency and search.batch.latency histograms from
            # the first scrape; the second pass hits the result cache.
            for query in queries:
                pipeline.search(query)
            pipeline.search_many(queries, max_workers=args.workers)
            print(f"warmed up with {len(queries)} queries")

    def health_info() -> dict:
        view = pipeline.serving_view
        return {
            "view_revision": view.revision,
            "view_age_s": round(view.age_seconds, 3),
            "papers": len(pipeline.corpus),
        }

    server = ExpositionServer(
        host=args.host,
        port=args.port,
        collectors=[lambda: pipeline.serving_view.export_gauges()],
        health_info=health_info,
    ).start()
    print(
        f"serving /metrics /health /slo /slowlog on "
        f"http://{server.host}:{server.port} (ctrl-c to stop)"
    )
    try:
        if args.for_seconds is not None:
            time.sleep(args.for_seconds)
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        reset_telemetry()
    return 0


def _split_function_args(specs) -> tuple:
    """Flatten repeatable, comma-separable score-function flags."""
    return tuple(
        name
        for spec in (specs or ())
        for name in spec.split(",")
        if name.strip()
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the HTTP search service (search + observability endpoints)."""
    import time

    from repro.serving.service import SearchService

    configure_telemetry(
        enabled=True,
        sample_rate=args.sample_rate,
        slow_ms=args.slow_ms,
        slos=_parse_slo_args(args.slo) or None,
    )
    pipeline = _load_pipeline(
        args.data,
        use_workspace=not args.no_workspace,
        result_cache_size=0 if args.no_result_cache else 256,
        index_backend=args.index_backend,
    )
    if args.warmup:
        queries = _derive_queries(pipeline, args.warmup)
        if queries:
            for query in queries:
                pipeline.search(query)
            pipeline.search_many(queries, max_workers=args.workers)
            print(f"warmed up with {len(queries)} queries")
    if args.probe_queries:
        try:
            probes = _read_queries_file(args.probe_queries)
        except OSError as error:
            print(
                f"error: cannot read {args.probe_queries}: {error}",
                file=sys.stderr,
            )
            return 1
        try:
            pipeline.configure_drift(
                probes,
                functions=_split_function_args(args.probe_function) or ("text",),
                k=args.probe_k,
                max_drift=args.max_drift,
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        gate = (
            f"max_drift={args.max_drift:g}" if args.max_drift is not None
            else "report-only"
        )
        print(
            f"drift detection armed: {len(probes)} probe queries ({gate})"
        )
    elif args.max_drift is not None:
        print(
            "error: --max-drift needs --probe-queries to probe with",
            file=sys.stderr,
        )
        return 1
    try:
        service = SearchService(
            pipeline,
            host=args.host,
            port=args.port,
            max_in_flight=args.max_in_flight,
            queue_depth=args.queue_depth,
            retry_after_s=args.retry_after_s,
            shadow_functions=_split_function_args(args.shadow_function),
            shadow_sample_rate=args.shadow_sample_rate,
            shadow_k=args.shadow_k,
            ready_max_age_s=args.ready_max_age_s,
        ).start()
    except OSError as error:
        print(f"error: cannot bind {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 1
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if service.shadow is not None:
        print(
            f"shadow scoring {', '.join(service.shadow.functions)} at "
            f"sample rate {service.shadow.sample_rate:g}"
        )
    # service.port is the *bound* port -- meaningful with --port 0 too.
    print(
        f"serving /search /search_grouped /explain /ready /analytics "
        f"/admin/reload /metrics /health /slo /slowlog on "
        f"http://{service.host}:{service.port} (ctrl-c to stop)"
    )
    try:
        if args.for_seconds is not None:
            time.sleep(args.for_seconds)
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
        reset_telemetry()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Context-based literature search (ICDE 2007 reproduction)",
    )
    # Observability flags shared by every subcommand (argparse "parents"
    # idiom keeps them out of each subparser's own declaration).
    obs_common = argparse.ArgumentParser(add_help=False)
    obs_group = obs_common.add_argument_group("observability")
    obs_group.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the run's span tree as JSON lines to PATH",
    )
    obs_group.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the metrics-registry snapshot as JSON to PATH",
    )
    obs_group.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON-lines logs instead of plain text",
    )
    obs_group.add_argument(
        "--telemetry-out",
        default=None,
        metavar="PATH",
        help="enable request-scoped query telemetry and write its "
        "slow-query log + SLO report as JSON to PATH",
    )
    obs_group.add_argument(
        "--sample-rate",
        type=float,
        default=0.05,
        metavar="FRACTION",
        help="head-sampling rate for query telemetry in [0, 1] "
        "(default: %(default)s; slow or failed queries are always captured)",
    )
    obs_group.add_argument(
        "--slow-ms",
        type=float,
        default=100.0,
        metavar="MS",
        help="queries at or above this duration count as slow "
        "(default: %(default)s)",
    )
    obs_group.add_argument(
        "--slo",
        action="append",
        metavar="SPEC",
        help="declare an SLO, e.g. 'search-p95:latency:250ms:95%%:300s' "
        "(repeatable; default objectives otherwise)",
    )
    # Shared by the commands that *read* a data directory: skip the
    # workspace and rebuild everything in memory (debugging aid).
    data_common = argparse.ArgumentParser(add_help=False)
    data_common.add_argument(
        "--no-workspace",
        action="store_true",
        help="ignore any built workspace; rebuild artifacts in memory",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="synthesise a dataset", parents=[obs_common]
    )
    generate.add_argument("--papers", type=int, default=1200)
    generate.add_argument("--terms", type=int, default=250)
    generate.add_argument("--max-depth", type=int, default=7)
    generate.add_argument(
        "--preset",
        choices=("tiny", "small", "default", "large", "paper"),
        default=None,
        help="named scale preset (overrides --papers/--terms/--max-depth)",
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", default="data")
    generate.set_defaults(func=_cmd_generate)

    search = subparsers.add_parser(
        "search", help="context-based search", parents=[obs_common, data_common]
    )
    search.add_argument("--data", default="data")
    query_source = search.add_mutually_exclusive_group(required=True)
    query_source.add_argument("--query")
    query_source.add_argument(
        "--queries-file",
        help="file with one query per line (blank lines and # comments skipped); "
        "queries run as a concurrent batch",
    )
    # Both choice lists derive from the scoring registry, so a function
    # registered by a plugin is searchable with no CLI edits.
    search.add_argument(
        "--function", choices=scoring.function_names(), default="text"
    )
    search.add_argument(
        "--paper-set", choices=scoring.PAPER_SET_NAMES, default="text"
    )
    search.add_argument(
        "--selection-strategy",
        choices=SELECTION_STRATEGIES,
        default="probe",
        help="how to pick candidate contexts for a query",
    )
    search.add_argument(
        "--workers", type=int, default=4,
        help="thread-pool size for --queries-file batches",
    )
    search.add_argument("--limit", type=int, default=10)
    search.add_argument("--threshold", type=float, default=0.0)
    # Like --function, choices derive from a registry (the index-backend
    # one), so a backend registered by a plugin is usable with no CLI edits.
    search.add_argument(
        "--index-backend",
        choices=index_backends.backend_names(),
        default=index_backends.DEFAULT_BACKEND,
        help="registered index backend used to build/open the inverted "
        "index (see repro.index.backends)",
    )
    search.add_argument(
        "--no-result-cache",
        action="store_true",
        help="disable the serving-side LRU result cache (every query "
        "evaluates fresh)",
    )
    search.set_defaults(func=_cmd_search)

    serve = subparsers.add_parser(
        "serve",
        help="HTTP search service: /search /search_grouped /explain "
        "/admin/reload + the obs routes",
        parents=[data_common],
    )
    serve.add_argument("--data", default="data")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8977, help="0 binds an ephemeral port"
    )
    serve.add_argument(
        "--max-in-flight", type=int, default=8, metavar="N",
        help="search requests executing concurrently (default: %(default)s)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=16, metavar="N",
        help="admitted requests allowed to wait for an in-flight slot; "
        "anything beyond is shed with 429 (default: %(default)s)",
    )
    serve.add_argument(
        "--retry-after-s", type=float, default=1.0, metavar="S",
        help="Retry-After hint sent with 429 responses (default: %(default)s)",
    )
    serve.add_argument(
        "--index-backend",
        choices=index_backends.backend_names(),
        default=index_backends.DEFAULT_BACKEND,
        help="registered index backend used to build/open the inverted "
        "index (see repro.index.backends)",
    )
    serve.add_argument(
        "--no-result-cache",
        action="store_true",
        help="disable the serving-side LRU result cache",
    )
    serve.add_argument(
        "--sample-rate", type=float, default=0.05, metavar="FRACTION",
        help="head-sampling rate for query telemetry (default: %(default)s)",
    )
    serve.add_argument(
        "--slow-ms", type=float, default=100.0, metavar="MS",
        help="slow-query threshold (default: %(default)s)",
    )
    serve.add_argument(
        "--slo", action="append", metavar="SPEC",
        help="declare an SLO, e.g. 'search-p95:latency:250ms:95%%:300s' "
        "(repeatable; default objectives otherwise)",
    )
    serve.add_argument(
        "--warmup", type=int, default=0, metavar="N",
        help="run N derived queries through the pipeline before serving",
    )
    serve.add_argument(
        "--workers", type=int, default=4,
        help="thread-pool size for the warmup batch",
    )
    serve.add_argument(
        "--for-seconds", type=float, default=None, metavar="S",
        help="serve for S seconds then exit (default: run until ctrl-c)",
    )
    serve.add_argument(
        "--shadow-functions", action="append", metavar="FN[,FN...]",
        dest="shadow_function",
        help="shadow-score sampled /search traffic under these registered "
        "score functions (repeatable or comma-separated); agreement is "
        "recorded as search.shadow.* histograms",
    )
    serve.add_argument(
        "--shadow-sample-rate", type=float, default=0.1, metavar="FRACTION",
        help="fraction of /search traffic shadow-scored (default: %(default)s)",
    )
    serve.add_argument(
        "--shadow-k", type=int, default=10, metavar="K",
        help="top-k depth for shadow rank agreement (default: %(default)s)",
    )
    serve.add_argument(
        "--probe-queries", default=None, metavar="PATH",
        help="file of probe queries (one per line) pinned for reload drift "
        "detection on POST /admin/reload",
    )
    serve.add_argument(
        "--probe-functions", action="append", metavar="FN[,FN...]",
        dest="probe_function",
        help="score functions the drift probe compares (repeatable or "
        "comma-separated; default: text)",
    )
    serve.add_argument(
        "--probe-k", type=int, default=10, metavar="K",
        help="top-k depth for reload drift comparison (default: %(default)s)",
    )
    serve.add_argument(
        "--max-drift", type=float, default=None, metavar="CHURN",
        help="refuse POST /admin/reload with 409 when any probe query's "
        "result-set churn exceeds this fraction in [0, 1] "
        "(default: report drift but never refuse)",
    )
    serve.add_argument(
        "--ready-max-age-s", type=float, default=None, metavar="S",
        help="/ready answers 503 when the serving view is older than this "
        "(default: no age bound)",
    )
    serve.set_defaults(func=_cmd_serve)

    evaluate = subparsers.add_parser(
        "evaluate", help="run the evaluation", parents=[obs_common, data_common]
    )
    evaluate.add_argument("--data", default="data")
    evaluate.add_argument("--queries", type=int, default=30)
    evaluate.add_argument(
        "--report",
        default=None,
        help="write the full markdown evaluation report to this file",
    )
    evaluate.set_defaults(func=_cmd_evaluate)

    build_help = "incrementally build the artifact workspace"
    for command, help_text in (
        ("build", build_help),
        # Deprecated spelling from before the artifact-graph workspace;
        # same behaviour, kept so existing scripts don't break.
        ("precompute", build_help + " (alias of `repro build`)"),
    ):
        build = subparsers.add_parser(command, help=help_text, parents=[obs_common])
        build.add_argument("--data", default="data")
        build.add_argument(
            "--only",
            action="append",
            metavar="ARTIFACT",
            help="build only this artifact (+ dependencies); repeatable",
        )
        build.add_argument(
            "--force",
            action="store_true",
            help="rebuild the requested artifacts even if fresh",
        )
        build.add_argument(
            "--index-backend",
            choices=index_backends.backend_names(),
            default=index_backends.DEFAULT_BACKEND,
            help="registered index backend used to build/open the inverted "
            "index (see repro.index.backends)",
        )
        build.set_defaults(func=_cmd_build)

    workspace = subparsers.add_parser(
        "workspace", help="workspace utilities", parents=[obs_common]
    )
    workspace_sub = workspace.add_subparsers(dest="workspace_command", required=True)
    ws_status = workspace_sub.add_parser(
        "status", help="per-artifact freshness of a workspace"
    )
    ws_status.add_argument("--data", default="data")
    ws_status.add_argument(
        "--index-backend",
        choices=index_backends.backend_names(),
        default=index_backends.DEFAULT_BACKEND,
        help="registered index backend used to build/open the inverted "
        "index (see repro.index.backends)",
    )
    ws_status.set_defaults(func=_cmd_workspace_status)

    ingest_delta = subparsers.add_parser(
        "ingest-delta",
        help="apply a corpus delta to a built workspace as a new generation",
        parents=[obs_common],
    )
    ingest_delta.add_argument("--data", default="data")
    ingest_delta.add_argument(
        "--add",
        metavar="PAPERS_JSONL",
        help="JSONL file of papers to add (same format as corpus.jsonl)",
    )
    ingest_delta.add_argument(
        "--remove",
        action="append",
        metavar="PAPER_ID",
        help="paper id to remove; repeatable",
    )
    ingest_delta.add_argument(
        "--out-corpus",
        metavar="PATH",
        help="where to write the post-delta corpus "
        "(default: overwrite <data>/corpus.jsonl)",
    )
    ingest_delta.add_argument(
        "--index-backend",
        choices=index_backends.backend_names(),
        default=index_backends.DEFAULT_BACKEND,
        help="registered index backend used to open the inverted index",
    )
    ingest_delta.set_defaults(func=_cmd_ingest_delta)

    tune = subparsers.add_parser(
        "tune",
        help="calibrate relevancy weights against AC answer sets",
        parents=[obs_common, data_common],
    )
    tune.add_argument("--data", default="data")
    tune.add_argument("--queries", type=int, default=20)
    tune.add_argument(
        "--function", choices=scoring.function_names(), default="text"
    )
    tune.add_argument(
        "--paper-set", choices=scoring.PAPER_SET_NAMES, default="text"
    )
    tune.set_defaults(func=_cmd_tune)

    ingest = subparsers.add_parser(
        "ingest",
        help="build a data dir from MEDLINE XML + OBO + GAF",
        parents=[obs_common],
    )
    ingest.add_argument("--medline", required=True, help="PubMed XML export")
    ingest.add_argument("--obo", required=True, help="Gene Ontology OBO file")
    ingest.add_argument("--gaf", required=True, help="GO annotation (GAF) file")
    ingest.add_argument("--max-training-per-term", type=int, default=10)
    ingest.add_argument("--out", default="data")
    ingest.set_defaults(func=_cmd_ingest)

    validate = subparsers.add_parser(
        "validate", help="lint a corpus file", parents=[obs_common]
    )
    validate.add_argument("--data", default="data")
    validate.add_argument("--verbose", action="store_true")
    validate.set_defaults(func=_cmd_validate)

    obs = subparsers.add_parser(
        "obs",
        help="observability utilities (render dumps, serve /metrics)",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report", help="render a trace/metrics dump as ASCII"
    )
    obs_report.add_argument(
        "--trace", default=None, metavar="PATH", help="trace JSON-lines file"
    )
    obs_report.add_argument(
        "--metrics", default=None, metavar="PATH", help="metrics JSON file"
    )
    obs_report.set_defaults(func=_cmd_obs_report)

    obs_slowlog = obs_sub.add_parser(
        "slowlog",
        help="render the slow-query log of a telemetry dump",
    )
    obs_slowlog.add_argument(
        "--file",
        default="telemetry.json",
        metavar="PATH",
        help="telemetry dump written by --telemetry-out "
        "(default: %(default)s)",
    )
    obs_slowlog.add_argument(
        "--limit", type=int, default=0,
        help="show only the N slowest entries (0 = all)",
    )
    obs_slowlog.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format (default: %(default)s)",
    )
    obs_slowlog.set_defaults(func=_cmd_obs_slowlog)

    obs_slo = obs_sub.add_parser(
        "slo", help="render the SLO / error-budget report of a telemetry dump"
    )
    obs_slo.add_argument(
        "--file",
        default="telemetry.json",
        metavar="PATH",
        help="telemetry dump written by --telemetry-out "
        "(default: %(default)s)",
    )
    obs_slo.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format (default: %(default)s)",
    )
    obs_slo.set_defaults(func=_cmd_obs_slo)

    obs_analytics = obs_sub.add_parser(
        "analytics",
        help="render a service's GET /analytics payload "
        "(query analytics, shadow agreement, reload drift)",
    )
    obs_analytics.add_argument(
        "--url", default=None, metavar="BASE_URL",
        help="fetch live from a running service, e.g. http://127.0.0.1:8977",
    )
    obs_analytics.add_argument(
        "--file", default=None, metavar="PATH",
        help="render a saved /analytics JSON payload instead",
    )
    obs_analytics.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format (default: %(default)s)",
    )
    obs_analytics.set_defaults(func=_cmd_obs_analytics)

    obs_serve = obs_sub.add_parser(
        "serve",
        help="HTTP exposition endpoint: /metrics /health /slo /slowlog",
        parents=[data_common],
    )
    obs_serve.add_argument("--data", default="data")
    obs_serve.add_argument("--host", default="127.0.0.1")
    obs_serve.add_argument(
        "--port", type=int, default=9188, help="0 binds an ephemeral port"
    )
    obs_serve.add_argument(
        "--sample-rate", type=float, default=0.05, metavar="FRACTION",
        help="head-sampling rate for query telemetry (default: %(default)s)",
    )
    obs_serve.add_argument(
        "--slow-ms", type=float, default=100.0, metavar="MS",
        help="slow-query threshold (default: %(default)s)",
    )
    obs_serve.add_argument(
        "--slo", action="append", metavar="SPEC",
        help="declare an SLO, e.g. 'search-p95:latency:250ms:95%%:300s' "
        "(repeatable; default objectives otherwise)",
    )
    obs_serve.add_argument(
        "--warmup", type=int, default=0, metavar="N",
        help="run N derived queries through the pipeline before serving",
    )
    obs_serve.add_argument(
        "--workers", type=int, default=4,
        help="thread-pool size for the warmup batch",
    )
    obs_serve.add_argument(
        "--for-seconds", type=float, default=None, metavar="S",
        help="serve for S seconds then exit (default: run until ctrl-c)",
    )
    obs_serve.set_defaults(func=_cmd_obs_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(json_format=True if getattr(args, "log_json", False) else None)
    trace_out = getattr(args, "trace_out", None)
    telemetry_out = getattr(args, "telemetry_out", None)
    # Fail on an unwritable dump path before doing the actual work.
    for path in (trace_out, getattr(args, "metrics_out", None), telemetry_out):
        if path and not Path(path).resolve().parent.is_dir():
            print(
                f"error: directory of {path} does not exist", file=sys.stderr
            )
            return 2
    tracer = start_tracing() if trace_out else None
    # Configure telemetry *after* start_tracing so request capture reuses
    # the --trace-out tracer (spans land in both dumps) instead of
    # installing an owned one.
    telemetry = None
    if telemetry_out:
        telemetry = configure_telemetry(
            enabled=True,
            sample_rate=getattr(args, "sample_rate", 0.05),
            slow_ms=getattr(args, "slow_ms", 100.0),
            slos=_parse_slo_args(getattr(args, "slo", None)) or None,
        )
    try:
        return args.func(args)
    finally:
        if telemetry is not None:
            telemetry.dump(telemetry_out)
            reset_telemetry()
        if tracer is not None:
            stop_tracing()
            tracer.write_jsonl(trace_out)
        metrics_out = getattr(args, "metrics_out", None)
        if metrics_out:
            with open(metrics_out, "w", encoding="utf-8") as handle:
                json.dump({"metrics": get_registry().snapshot()}, handle, indent=2)
                handle.write("\n")


if __name__ == "__main__":
    sys.exit(main())
