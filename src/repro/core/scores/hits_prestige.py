"""HITS-based citation prestige (the road not taken in section 3.1).

The paper describes both PageRank and HITS as candidate citation-based
prestige functions and chooses PageRank, citing the high correlation
between the two in earlier experiments [11].  This class implements the
HITS alternative -- prestige = per-context *authority* score -- so the
choice can be tested rather than assumed (see
``benchmarks/bench_ablation_hits.py``).
"""

from __future__ import annotations

from typing import Dict

from repro.citations.graph import CitationGraph
from repro.citations.hits import hits_scores
from repro.core.context import Context
from repro.core.scores.base import PrestigeScoreFunction


class HitsPrestige(PrestigeScoreFunction):
    """Per-context HITS authority prestige.

    A paper's authority is high when the context's good *hubs* cite it --
    for citation graphs, hubs are survey-like papers with rich reference
    lists inside the context.
    """

    name = "hits"
    #: Authority scores have a meaningful zero (never cited in-context),
    #: so normalisation preserves it like the other citation flavour.
    normalization = "max"

    def __init__(self, graph: CitationGraph, max_iterations: int = 100) -> None:
        self.graph = graph
        self.max_iterations = max_iterations

    def score_context(self, context: Context) -> Dict[str, float]:
        if not context.paper_ids:
            return {}
        subgraph = self.graph.subgraph(context.paper_ids)
        result = hits_scores(subgraph, max_iterations=self.max_iterations)
        return result.authorities
