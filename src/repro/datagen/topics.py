"""Per-term topic vocabulary model.

Each ontology term owns a *topic*: a weighted vocabulary used to sample
paper text.  The construction encodes the selectivity structure the
paper's experiments probe:

- every term owns a handful of fresh **jargon words** no other term mints
  (deep terms therefore own corpus-rare, highly selective vocabulary);
- a term inherits its ancestors' vocabulary at geometrically decaying
  weight, so papers of sibling contexts share words with the parent but
  differ in their own jargon, and shallow contexts have broad diffuse
  vocabularies;
- the term's own *name words* get high weight, and the full name phrase is
  emitted as a unit with some probability -- pattern mining needs training
  papers that actually contain context-term word sequences.

Sampling returns word *chunks* (1..n word tuples) so multiword phrases
survive into generated text verbatim.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.datagen.lexicon import Lexicon
from repro.ontology.ontology import Ontology

Chunk = Tuple[str, ...]


class TermTopic:
    """Sampling distribution of one term's vocabulary."""

    def __init__(
        self,
        term_id: str,
        chunks: Sequence[Chunk],
        weights: Sequence[float],
        jargon: Sequence[str],
    ) -> None:
        if len(chunks) != len(weights):
            raise ValueError("chunks and weights must have equal length")
        self.term_id = term_id
        self.chunks = list(chunks)
        self.jargon = list(jargon)
        total = float(sum(weights))
        if total <= 0:
            raise ValueError(f"topic for {term_id} has no probability mass")
        self._cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cumulative.append(acc)

    def sample_chunk(self, rng: random.Random) -> Chunk:
        """Draw one chunk (word tuple) from the topic distribution."""
        point = rng.random()
        low, high = 0, len(self._cumulative) - 1
        while low < high:
            mid = (low + high) // 2
            if self._cumulative[mid] < point:
                low = mid + 1
            else:
                high = mid
        return self.chunks[low]


class TopicModel:
    """Builds and holds the :class:`TermTopic` of every ontology term.

    Parameters
    ----------
    jargon_per_term:
        Fresh jargon words minted per term.
    inheritance_decay:
        Weight multiplier per ancestor hop (0.5 = parent vocabulary at half
        the weight of own vocabulary).
    name_phrase_weight:
        Relative weight of emitting the full term-name phrase as a unit.
    """

    def __init__(
        self,
        ontology: Ontology,
        lexicon: Lexicon,
        rng: random.Random,
        jargon_per_term: int = 4,
        inheritance_decay: float = 0.45,
        name_phrase_weight: float = 2.5,
    ) -> None:
        self.ontology = ontology
        self._topics: Dict[str, TermTopic] = {}
        self._jargon: Dict[str, List[str]] = {}
        # Mint jargon in deterministic BFS order.
        for term_id in ontology.walk_breadth_first():
            self._jargon[term_id] = lexicon.new_jargon_words(jargon_per_term)
        for term_id in ontology.term_ids():
            self._topics[term_id] = self._build_topic(
                term_id, rng, inheritance_decay, name_phrase_weight
            )

    def topic(self, term_id: str) -> TermTopic:
        """The topic of ``term_id`` (KeyError for unknown terms)."""
        return self._topics[term_id]

    def jargon_of(self, term_id: str) -> List[str]:
        """The jargon words owned exclusively by ``term_id``."""
        return list(self._jargon[term_id])

    def _build_topic(
        self,
        term_id: str,
        rng: random.Random,
        decay: float,
        name_phrase_weight: float,
    ) -> TermTopic:
        chunks: List[Chunk] = []
        weights: List[float] = []

        def push(chunk: Chunk, weight: float) -> None:
            chunks.append(chunk)
            weights.append(weight)

        term = self.ontology.term(term_id)
        name_words = term.name_words()
        # The full term-name phrase as one chunk: pattern fodder.
        if name_words:
            push(name_words, name_phrase_weight)
            for word in name_words:
                push((word,), 1.2)
        # Own jargon: high weight singles plus one signature bigram.
        own_jargon = self._jargon[term_id]
        for word in own_jargon:
            push((word,), 2.0)
        if len(own_jargon) >= 2:
            push((own_jargon[0], own_jargon[1]), 1.0)
        # Ancestor vocabulary at decaying weight by level distance.  The
        # ancestor set is iterated in sorted order: chunk order determines
        # which chunk each RNG draw lands on, so set-hash order here would
        # make the whole corpus vary with PYTHONHASHSEED.
        own_level = self.ontology.level(term_id)
        for ancestor_id in sorted(self.ontology.ancestors(term_id)):
            distance = max(own_level - self.ontology.level(ancestor_id), 1)
            factor = decay ** distance
            for word in self._jargon[ancestor_id]:
                push((word,), 1.5 * factor)
            ancestor_words = self.ontology.term(ancestor_id).name_words()
            for word in ancestor_words:
                push((word,), 0.8 * factor)
        return TermTopic(term_id, chunks, weights, own_jargon)

    def __len__(self) -> int:
        return len(self._topics)
