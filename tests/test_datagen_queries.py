"""Unit tests for query workload generation."""

import pytest

from repro.datagen.corpus_gen import CorpusGenerator
from repro.datagen.ontology_gen import OntologyGenerator
from repro.datagen.queries import generate_queries


@pytest.fixture(scope="module")
def dataset():
    return CorpusGenerator(
        n_papers=100, ontology_generator=OntologyGenerator(n_terms=50)
    ).generate(seed=3)


class TestGenerateQueries:
    def test_count(self, dataset):
        assert len(generate_queries(dataset, n_queries=25, seed=1)) == 25

    def test_queries_nonempty_multiword(self, dataset):
        for workload in generate_queries(dataset, n_queries=40, seed=2):
            words = workload.query.split()
            assert 1 <= len(words) <= 4

    def test_never_full_term_name(self, dataset):
        for workload in generate_queries(dataset, n_queries=60, seed=3):
            term = dataset.ontology.term(workload.source_term_id)
            assert workload.query != term.name.lower()

    def test_source_terms_at_min_level(self, dataset):
        for workload in generate_queries(dataset, n_queries=40, seed=4, min_level=3):
            assert dataset.ontology.level(workload.source_term_id) >= 3

    def test_query_words_topical(self, dataset):
        for workload in generate_queries(dataset, n_queries=30, seed=5):
            term = dataset.ontology.term(workload.source_term_id)
            topical = set(term.name_words()) | set(
                dataset.topics.jargon_of(workload.source_term_id)
            )
            assert set(workload.query.split()) & topical

    def test_deterministic(self, dataset):
        a = generate_queries(dataset, n_queries=20, seed=9)
        b = generate_queries(dataset, n_queries=20, seed=9)
        assert a == b

    def test_validation(self, dataset):
        with pytest.raises(ValueError):
            generate_queries(dataset, n_queries=0)
        with pytest.raises(ValueError):
            generate_queries(dataset, min_words=3, max_words=2)
