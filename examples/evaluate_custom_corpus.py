#!/usr/bin/env python
"""Bring-your-own-corpus walkthrough: persistence, evaluation, AC answers.

Shows the full path a user with real data follows:

1. write/read a corpus as JSONL (the interchange format);
2. build a Pipeline from corpus + ontology + training map;
3. construct an AC-answer set for a query and measure precision;
4. measure separability of a score function on the resulting contexts.

Run:  python examples/evaluate_custom_corpus.py
"""

import tempfile
from pathlib import Path

from repro.corpus import read_corpus_jsonl, write_corpus_jsonl
from repro.datagen import CorpusGenerator, OntologyGenerator
from repro.eval import ACAnswerBuilder, SeparabilityExperiment
from repro.eval.metrics import precision
from repro.pipeline import Pipeline


def main() -> None:
    # Stand-in for "your data": a generated corpus saved to JSONL.  With
    # real data you produce this file yourself (one Paper dict per line).
    dataset = CorpusGenerator(
        n_papers=500,
        ontology_generator=OntologyGenerator(n_terms=80, max_depth=5),
    ).generate(seed=23)

    with tempfile.TemporaryDirectory() as tmp:
        corpus_path = Path(tmp) / "corpus.jsonl"
        count = write_corpus_jsonl(dataset.corpus, corpus_path)
        print(f"wrote {count} papers to {corpus_path.name}")
        corpus = read_corpus_jsonl(corpus_path)
        print(f"reloaded {len(corpus)} papers\n")

    pipeline = Pipeline(
        corpus=corpus,
        ontology=dataset.ontology,
        training_papers=dataset.training_papers,
    )

    # Build an AC-answer set (section 2) and score a search against it.
    term_id = pipeline.ontology.terms_at_level(3)[1]
    query = " ".join(dataset.topics.jargon_of(term_id)[:2])
    builder = ACAnswerBuilder(
        pipeline.keyword_engine, pipeline.vectors, pipeline.citation_graph
    )
    answer = builder.build(query)
    print(f"query {query!r}")
    print(
        f"AC-answer set: {len(answer)} papers "
        f"({len(answer.seeds)} seeds, {len(answer.text_expanded)} text-expanded, "
        f"{len(answer.citation_expanded)} citation-expanded)"
    )

    hits = pipeline.search(query, limit=None)
    surviving = [h.paper_id for h in hits if h.relevancy >= 0.3]
    value = precision(surviving, answer.papers)
    print(
        f"context search: {len(hits)} results, "
        f"{len(surviving)} above relevancy 0.3, precision {value if value is None else round(value, 3)}\n"
    )

    # Separability of the text scores on your contexts.
    experiment = SeparabilityExperiment(pipeline.experiment_paper_set("text"))
    result = experiment.run(pipeline.prestige("text", "text"))
    print(
        f"text-score separability: mean SD {result.mean_sd():.2f} over "
        f"{len(result.sd_by_context)} contexts "
        f"({result.percent_below(15.0):.0f}% below SD 15)"
    )


if __name__ == "__main__":
    main()
