"""Unit tests for the markdown evaluation report."""

import pytest

from repro.cli import main
from repro.datagen.queries import generate_queries
from repro.eval.report import generate_report
from repro.pipeline import Pipeline


@pytest.fixture(scope="module")
def report(small_dataset):
    pipeline = Pipeline.from_dataset(small_dataset, min_context_size=3)
    queries = [
        w.query for w in generate_queries(small_dataset, n_queries=5, seed=4)
    ]
    return generate_report(
        pipeline, queries, thresholds=(0.2, 0.4), levels=(2, 3)
    )


class TestGenerateReport:
    def test_has_all_sections(self, report):
        assert "# Context-based search evaluation" in report
        assert "## Dataset" in report
        assert "## Precision vs relevancy threshold" in report
        assert "## Separability" in report
        assert "## Top-5% overlapping ratio" in report

    def test_all_arms_reported(self, report):
        for arm in (
            "text scores on the text-based paper set",
            "citation scores on the text-based paper set",
            "pattern scores on the pattern-based paper set",
            "citation scores on the pattern-based paper set",
        ):
            assert arm in report

    def test_tables_are_markdown(self, report):
        assert "| t | average | median | empty queries |" in report
        assert "| score function / paper set |" in report

    def test_dataset_stats_present(self, report):
        assert "papers" in report
        assert "citation graph:" in report
        assert "queries evaluated: 5" in report

    def test_custom_title(self, small_dataset):
        pipeline = Pipeline.from_dataset(small_dataset, min_context_size=3)
        text = generate_report(
            pipeline, ["query one"], thresholds=(0.3,), levels=(2,),
            title="My Run",
        )
        assert text.startswith("# My Run")


class TestCliReport:
    def test_report_flag_writes_file(self, tmp_path):
        data = tmp_path / "data"
        assert (
            main(
                [
                    "generate", "--papers", "120", "--terms", "30",
                    "--seed", "3", "--out", str(data),
                ]
            )
            == 0
        )
        report_path = tmp_path / "report.md"
        code = main(
            [
                "evaluate", "--data", str(data), "--queries", "3",
                "--report", str(report_path),
            ]
        )
        assert code == 0
        content = report_path.read_text(encoding="utf-8")
        assert "## Precision vs relevancy threshold" in content
