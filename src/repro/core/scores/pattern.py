"""Pattern-based prestige (section 3.3).

    Score(P) = sum over pt in Ptr(P) of Score(pt) * M(P, pt)

where Ptr(P) is the set of the context's patterns matching paper P,
Score(pt) the pattern's own score, and M(P, pt) the matching strength
(section weight x surround similarity).

The function consumes pre-built :class:`PatternSet` objects -- typically
the ones the :class:`~repro.core.assignment.PatternContextAssigner`
constructed, so patterns are built exactly once per context.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.core.context import Context
from repro.core.patterns import (
    AnalyzedPaperCache,
    PatternSet,
    score_paper_against_patterns,
)
from repro.core.scores.base import PrestigeScoreFunction


class PatternPrestige(PrestigeScoreFunction):
    """Pattern-matching prestige over pre-built pattern sets.

    Parameters
    ----------
    pattern_sets:
        ``term_id -> PatternSet`` (contexts without an entry score empty).
    token_cache:
        The shared analysed-token cache.
    middle_only:
        Use the simplified matching of section 4 (middle tuples only,
        matching strength = section weight).  Full matching also weighs
        surround similarity.
    """

    name = "pattern"
    #: Pattern sums are unbounded above but have a true zero (no pattern
    #: matched), so normalisation divides by the context max -- preserving
    #: "matched nothing" as prestige 0.
    normalization = "max"

    def __init__(
        self,
        pattern_sets: Mapping[str, PatternSet],
        token_cache: AnalyzedPaperCache,
        middle_only: bool = False,
    ) -> None:
        self.pattern_sets = dict(pattern_sets)
        self.tokens = token_cache
        self.middle_only = middle_only

    def score_context(self, context: Context) -> Dict[str, float]:
        """Score each paper against the context's pattern set.

        Inherited contexts (ancestor fallback) score against the pattern
        set of the *ancestor* whose papers they borrowed -- their own
        training set produced no patterns, which is why they inherited.
        The RateOfDecay discount is applied afterwards by
        :meth:`PrestigeScoreFunction.score_all` via ``context.decay``.
        """
        source_term = context.inherited_from or context.term_id
        pattern_set = self.pattern_sets.get(source_term)
        if pattern_set is None or not pattern_set.patterns:
            return {}
        return {
            paper_id: score_paper_against_patterns(
                pattern_set, self.tokens, paper_id, middle_only=self.middle_only
            )
            for paper_id in context.paper_ids
        }
