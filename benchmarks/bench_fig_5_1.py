"""Figure 5.1 -- precision vs relevancy threshold, text-based context paper set.

Paper series: average and median precision of the *text-based* and the
*citation-based* score functions over ~120 queries, thresholds t in
[0.05, 0.5].  Expected shape: text precision exceeds citation precision by
>20% (relative) at moderate thresholds; citation average decays with t as
queries start returning nothing.
"""

from conftest import write_result

from repro.eval.ascii_plot import ascii_line_chart


def test_fig_5_1_precision_text_paper_set(
    benchmark, precision_experiment, results_dir
):
    def run():
        text_curve = precision_experiment.run("text", "text")
        citation_curve = precision_experiment.run("citation", "text")
        return text_curve, citation_curve

    text_curve, citation_curve = benchmark.pedantic(run, rounds=1, iterations=1)

    chart = ascii_line_chart(
        {"text": text_curve.average, "citation": citation_curve.average},
        x_labels=[f"{t:.2f}" for t in text_curve.thresholds],
        y_max=1.0,
    )
    table = "\n\n".join(
        [
            text_curve.format_table(),
            citation_curve.format_table(),
            "average precision vs threshold:",
            chart,
        ]
    )
    write_result(results_dir, "fig_5_1", table)

    # Shape assertions (moderate thresholds = 0.2..0.4).
    moderate = [i for i, t in enumerate(text_curve.thresholds) if 0.2 <= t <= 0.4]
    text_avg = sum(text_curve.average[i] for i in moderate) / len(moderate)
    citation_avg = sum(citation_curve.average[i] for i in moderate) / len(moderate)
    assert text_avg > citation_avg, (
        f"text precision {text_avg:.3f} must beat citation {citation_avg:.3f}"
    )
    assert text_avg > 1.2 * citation_avg, "paper reports a >20% gap"
    # Citation queries go empty as t rises (the paper's high-t dip).
    assert citation_curve.empty_queries[-1] >= citation_curve.empty_queries[0]
