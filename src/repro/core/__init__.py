"""The paper's core contribution: context-based prestige ranking and search.

- :mod:`repro.core.context` -- contexts and context paper sets.
- :mod:`repro.core.vectors` -- per-section TF-IDF vector store shared by
  the text machinery.
- :mod:`repro.core.representative` -- representative-paper selection.
- :mod:`repro.core.patterns` -- pattern construction/scoring (section 3.3).
- :mod:`repro.core.assignment` -- the two context-paper-set builders of
  section 4 (text-based and simplified pattern-based).
- :mod:`repro.core.scores` -- the three prestige score functions.
- :mod:`repro.core.search` -- the context-based search engine (tasks 3-5
  of the paradigm).
- :mod:`repro.core.extensions` -- the section-7 future-work extension
  (weighted cross-context relationships).
"""

from repro.core.assignment import PatternContextAssigner, TextContextAssigner
from repro.core.context import Context, ContextPaperSet
from repro.core.patterns import Pattern, PatternKind, PatternSet, PatternSetBuilder
from repro.core.representative import select_representatives
from repro.core.scores import (
    CitationPrestige,
    PatternPrestige,
    PrestigeScoreFunction,
    PrestigeScores,
    TextPrestige,
)
from repro.core.query_expansion import ContextQueryExpander, PseudoRelevanceExpander
from repro.core.recommend import RelatedWorkRecommender
from repro.core.search import (
    ContextResultGroup,
    ContextSearchEngine,
    RankingExplanation,
    SearchHit,
)
from repro.core.tuning import RelevancyTuner, TuningResult
from repro.core.vectors import PaperVectorStore

__all__ = [
    "Context",
    "ContextPaperSet",
    "PaperVectorStore",
    "select_representatives",
    "Pattern",
    "PatternKind",
    "PatternSet",
    "PatternSetBuilder",
    "TextContextAssigner",
    "PatternContextAssigner",
    "PrestigeScoreFunction",
    "PrestigeScores",
    "CitationPrestige",
    "TextPrestige",
    "PatternPrestige",
    "ContextSearchEngine",
    "SearchHit",
    "ContextResultGroup",
    "RankingExplanation",
    "ContextQueryExpander",
    "PseudoRelevanceExpander",
    "RelevancyTuner",
    "TuningResult",
    "RelatedWorkRecommender",
]
