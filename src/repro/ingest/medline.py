"""MEDLINE/PubMed XML parsing.

Streams a ``PubmedArticleSet`` export (what NCBI E-utilities ``efetch``
returns with ``rettype=xml``) into :class:`Paper` records using
``xml.etree.ElementTree.iterparse``, so multi-gigabyte exports parse at
constant memory.

Field mapping:

=================  ====================================================
Paper field        MEDLINE source
=================  ====================================================
paper_id           ``MedlineCitation/PMID`` as ``PMID:<n>``
title              ``Article/ArticleTitle``
abstract           all ``Abstract/AbstractText`` chunks joined (labelled
                   sections keep their label as a lead-in)
body               empty -- MEDLINE carries no full text; populate it
                   separately (e.g. from PubMed Central) if available
index_terms        ``MeshHeadingList/MeshHeading/DescriptorName``
authors            ``AuthorList/Author`` as ``"Initials LastName"``
                   (or ``CollectiveName``)
references         ``PubmedData/ReferenceList//ArticleId[@IdType=
                   "pubmed"]`` as ``PMID:<n>``
year               first of ``PubDate/Year``, ``DateCompleted/Year``
=================  ====================================================
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import IO, Iterator, List, Optional, Union

from repro.corpus.corpus import Corpus
from repro.corpus.paper import Paper

Source = Union[str, Path, IO]


def pmid_id(raw: str) -> str:
    """Normalise a PMID string to the canonical ``PMID:<n>`` form."""
    cleaned = raw.strip()
    if cleaned.upper().startswith("PMID:"):
        cleaned = cleaned[5:]
    return f"PMID:{cleaned}"


def iter_medline_papers(source: Source) -> Iterator[Paper]:
    """Yield one :class:`Paper` per ``PubmedArticle`` element."""
    for _event, element in ET.iterparse(source, events=("end",)):
        if element.tag != "PubmedArticle":
            continue
        paper = _parse_article(element)
        if paper is not None:
            yield paper
        element.clear()  # constant-memory streaming


def read_medline_xml(source: Source, default_year: int = 2000) -> Corpus:
    """Parse a whole MEDLINE XML export into a :class:`Corpus`.

    Articles without a PMID are skipped (they cannot be referenced);
    duplicate PMIDs keep the first occurrence, matching NCBI's own
    de-duplication advice for merged exports.
    """
    corpus = Corpus()
    for paper in iter_medline_papers(source):
        if paper.paper_id in corpus:
            continue
        if paper.year == 0:
            paper = Paper.from_dict({**paper.to_dict(), "year": default_year})
        corpus.add(paper)
    return corpus


def _parse_article(element: ET.Element) -> Optional[Paper]:
    citation = element.find("MedlineCitation")
    if citation is None:
        return None
    pmid_element = citation.find("PMID")
    if pmid_element is None or not (pmid_element.text or "").strip():
        return None
    article = citation.find("Article")
    title = _text(article.find("ArticleTitle")) if article is not None else ""
    abstract = _parse_abstract(article)
    authors = _parse_authors(article)
    mesh_terms = tuple(
        _text(descriptor)
        for descriptor in citation.findall(
            "MeshHeadingList/MeshHeading/DescriptorName"
        )
        if _text(descriptor)
    )
    references = _parse_references(element)
    year = _parse_year(citation, article)
    return Paper(
        paper_id=pmid_id(pmid_element.text),
        title=title,
        abstract=abstract,
        body="",
        index_terms=mesh_terms,
        authors=tuple(authors),
        references=tuple(references),
        year=year,
    )


def _parse_abstract(article: Optional[ET.Element]) -> str:
    if article is None:
        return ""
    chunks: List[str] = []
    for chunk in article.findall("Abstract/AbstractText"):
        text = _text(chunk)
        if not text:
            continue
        label = chunk.get("Label")
        chunks.append(f"{label}: {text}" if label else text)
    return " ".join(chunks)


def _parse_authors(article: Optional[ET.Element]) -> List[str]:
    if article is None:
        return []
    authors: List[str] = []
    for author in article.findall("AuthorList/Author"):
        collective = _text(author.find("CollectiveName"))
        if collective:
            authors.append(collective)
            continue
        last = _text(author.find("LastName"))
        initials = _text(author.find("Initials"))
        if last:
            authors.append(f"{initials} {last}".strip())
    return authors


def _parse_references(element: ET.Element) -> List[str]:
    references: List[str] = []
    for article_id in element.findall(
        "PubmedData/ReferenceList//ArticleId"
    ):
        if article_id.get("IdType") == "pubmed" and _text(article_id):
            references.append(pmid_id(article_id.text or ""))
    return references


def _parse_year(
    citation: ET.Element, article: Optional[ET.Element]
) -> int:
    candidates = []
    if article is not None:
        candidates.append(
            _text(article.find("Journal/JournalIssue/PubDate/Year"))
        )
    candidates.append(_text(citation.find("DateCompleted/Year")))
    for candidate in candidates:
        if candidate.isdigit():
            return int(candidate)
    return 0


def _text(element: Optional[ET.Element]) -> str:
    if element is None or element.text is None:
        return ""
    return element.text.strip()
