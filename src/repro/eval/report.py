"""Markdown evaluation reports.

Bundles the full section-5 evaluation of a pipeline -- corpus statistics,
both context paper sets, the precision/overlap/separability experiments
-- into one human-readable markdown document.  Used by
``repro evaluate --report`` and handy for comparing runs across corpora
or configuration changes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro import scoring
from repro.eval.experiments import (
    OverlapExperiment,
    PrecisionExperiment,
    SeparabilityExperiment,
)
from repro.pipeline import Pipeline


def _paper_set_summary(pipeline: Pipeline, name: str) -> List[str]:
    paper_set = pipeline.paper_set(name)
    sizes = sorted(context.size for context in paper_set)
    if not sizes:
        return [f"- **{name}-based paper set**: empty"]
    mean = sum(sizes) / len(sizes)
    inherited = sum(1 for c in paper_set if c.inherited_from is not None)
    return [
        f"- **{name}-based paper set**: {len(paper_set)} contexts, "
        f"sizes min/mean/max = {sizes[0]}/{mean:.1f}/{sizes[-1]}, "
        f"{inherited} inherited from ancestors",
    ]


def _precision_section(
    experiment: PrecisionExperiment, arms: Sequence[tuple]
) -> List[str]:
    from repro.eval.ascii_plot import ascii_line_chart

    lines = ["## Precision vs relevancy threshold", ""]
    curves = {}
    thresholds: Sequence[float] = ()
    for function, paper_set in arms:
        curve = experiment.run(function, paper_set)
        curves[f"{function}/{paper_set}"] = curve.average
        thresholds = curve.thresholds
        lines.append(f"### {function} scores on the {paper_set}-based paper set")
        lines.append("")
        lines.append("| t | average | median | empty queries |")
        lines.append("|---|---|---|---|")
        for i, t in enumerate(curve.thresholds):
            median = curve.median_[i]
            median_text = f"{median:.3f}" if median is not None else "-"
            lines.append(
                f"| {t:.2f} | {curve.average[i]:.3f} | {median_text} "
                f"| {curve.empty_queries[i]} |"
            )
        lines.append("")
    if curves and thresholds:
        lines.append("Average precision, all arms:")
        lines.append("")
        lines.append("```text")
        lines.append(
            ascii_line_chart(
                curves,
                x_labels=[f"{t:.2f}" for t in thresholds],
                y_max=1.0,
            )
        )
        lines.append("```")
        lines.append("")
    return lines


def _separability_section(pipeline: Pipeline) -> List[str]:
    lines = ["## Separability", ""]
    lines.append("| score function / paper set | mean SD | % contexts SD < 15 |")
    lines.append("|---|---|---|")
    for function, paper_set in scoring.evaluation_arms():
        result = SeparabilityExperiment(
            pipeline.experiment_paper_set(paper_set)
        ).run(pipeline.prestige(function, paper_set))
        mean_sd = result.mean_sd()
        mean_text = f"{mean_sd:.2f}" if mean_sd is not None else "-"
        lines.append(
            f"| {function} / {paper_set} | {mean_text} "
            f"| {result.percent_below(15.0):.1f}% |"
        )
    lines.append("")
    return lines


def _overlap_section(pipeline: Pipeline, levels: Sequence[int]) -> List[str]:
    lines = ["## Top-5% overlapping ratio by context level", ""]
    experiment = OverlapExperiment(
        pipeline.experiment_paper_set("pattern"),
        levels=levels,
        k_percents=(0.05,),
    )
    header = "| pair | " + " | ".join(f"level {lv}" for lv in levels) + " |"
    lines.append(header)
    lines.append("|" + "---|" * (len(levels) + 1))
    for a, b in scoring.overlap_pairs():
        series = experiment.run(
            pipeline.prestige(a, "pattern"), pipeline.prestige(b, "pattern")
        )
        cells = []
        for row in series.values:
            value = row[0]
            cells.append(f"{value:.3f}" if value is not None else "-")
        lines.append(f"| {a}-{b} | " + " | ".join(cells) + " |")
    lines.append("")
    return lines


def generate_report(
    pipeline: Pipeline,
    queries: Sequence[str],
    thresholds: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5),
    levels: Sequence[int] = (3, 5, 7),
    title: str = "Context-based search evaluation",
) -> str:
    """Render the full evaluation of ``pipeline`` as a markdown document."""
    lines: List[str] = [f"# {title}", ""]
    lines.append("## Dataset")
    lines.append("")
    lines.append(f"- corpus: {len(pipeline.corpus)} papers")
    lines.append(
        f"- ontology: {len(pipeline.ontology)} terms, "
        f"max level {pipeline.ontology.max_level}"
    )
    graph = pipeline.citation_graph
    lines.append(
        f"- citation graph: {graph.n_edges} edges, density {graph.density():.5f}"
    )
    lines.extend(_paper_set_summary(pipeline, "text"))
    lines.extend(_paper_set_summary(pipeline, "pattern"))
    lines.append(f"- queries evaluated: {len(queries)}")
    lines.append("")

    experiment = PrecisionExperiment(pipeline, queries, thresholds=thresholds)
    lines.extend(_precision_section(experiment, scoring.evaluation_arms()))
    lines.extend(_separability_section(pipeline))
    lines.extend(_overlap_section(pipeline, levels))
    return "\n".join(lines)
