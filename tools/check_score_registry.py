#!/usr/bin/env python3
"""Lint the score-function registry against its derived surfaces.

The registry in ``src/repro/scoring/`` is the single source of truth
for prestige score functions.  This lint (modeled on
``check_metric_names.py``) fails CI when any derived surface drifts:

1. the CLI ``--function`` choice lists (``repro search`` / ``repro
   tune``) must equal the registered names, and ``--paper-set`` must
   equal ``scoring.PAPER_SET_NAMES``;
2. the workspace must derive exactly one ``scores_<function>_<paper_set>``
   artifact per evaluation arm, with the dependency chain
   ``(<paper_set>_paper_set,) + spec.substrates``;
3. the "Registered score functions" table of ``docs/architecture.md``
   must list exactly the registered names;
4. no literal function-name dispatch ladder (``function == "citation"``)
   and no hand-rolled choices tuple of function names may exist in
   ``src/`` outside ``src/repro/scoring/`` -- derive from the registry
   instead.

Exit status 1 on any violation; intended for tools/ci.sh.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DOCS_PATH = "docs/architecture.md"
#: The registry package itself is where literal names belong.
EXEMPT_PREFIX = "src/repro/scoring/"


def check_cli_choices(scoring) -> list:
    """CLI --function / --paper-set choices must come from the registry."""
    from repro.cli import build_parser

    problems = []
    names = tuple(scoring.function_names())
    subparsers = next(
        action
        for action in build_parser()._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    seen = 0
    for subcommand, parser in subparsers.choices.items():
        for action in parser._actions:
            if "--function" in action.option_strings:
                seen += 1
                if tuple(action.choices or ()) != names:
                    problems.append(
                        f"cli: `{subcommand} --function` choices "
                        f"{tuple(action.choices or ())} != registry {names}"
                    )
            if "--paper-set" in action.option_strings:
                if tuple(action.choices or ()) != scoring.PAPER_SET_NAMES:
                    problems.append(
                        f"cli: `{subcommand} --paper-set` choices "
                        f"{tuple(action.choices or ())} != "
                        f"{scoring.PAPER_SET_NAMES}"
                    )
    if seen < 2:
        problems.append(
            f"cli: expected a --function flag on search and tune, found {seen}"
        )
    return problems


def check_workspace_artifacts(scoring) -> list:
    """One fingerprinted score artifact per arm, deps from the spec."""
    from repro.workspace import ARTIFACTS

    problems = []
    expected = {
        f"scores_{fn}_{ps}": (f"{ps}_paper_set",) + scoring.get(fn).substrates
        for fn, ps in scoring.evaluation_arms()
    }
    actual = {
        name: artifact.deps
        for name, artifact in ARTIFACTS.items()
        if name.startswith("scores_")
    }
    for name in sorted(set(expected) - set(actual)):
        problems.append(f"workspace: arm artifact {name} missing from ARTIFACTS")
    for name in sorted(set(actual) - set(expected)):
        problems.append(
            f"workspace: score artifact {name} has no registry arm"
        )
    for name in sorted(set(expected) & set(actual)):
        if expected[name] != actual[name]:
            problems.append(
                f"workspace: {name} deps {actual[name]} != spec-derived "
                f"{expected[name]}"
            )
    return problems


#: First cell of a "Registered score functions" table row.
DOCS_ROW_RE = re.compile(r"^\|\s*`([a-z][a-z0-9_]*)`\s*\|")


def docs_table_names() -> list:
    """Function names listed in the architecture docs table, in order."""
    text = (REPO_ROOT / DOCS_PATH).read_text(encoding="utf-8")
    names = []
    in_section = False
    for line in text.splitlines():
        if line.strip() == "Registered score functions:":
            in_section = True
            continue
        if in_section:
            row = DOCS_ROW_RE.match(line)
            if row:
                names.append(row.group(1))
            elif names:
                break  # table ended
    return names


def check_docs(scoring) -> list:
    documented = docs_table_names()
    registered = list(scoring.function_names())
    problems = []
    if not documented:
        problems.append(
            f"docs: no 'Registered score functions' table found in {DOCS_PATH}"
        )
        return problems
    for name in registered:
        if name not in documented:
            problems.append(
                f"docs: registered function {name!r} missing from the "
                f"{DOCS_PATH} table"
            )
    for name in documented:
        if name not in registered:
            problems.append(
                f"docs: {DOCS_PATH} table lists unregistered function {name!r}"
            )
    return problems


#: ``function == "..."`` / ``function_name == '...'`` dispatch ladders.
DISPATCH_RE = re.compile(r"\bfunction(?:_name)?\s*==\s*[\"'][a-z0-9_]+[\"']")
#: A run of two or more adjacent string literals (a choices tuple body).
LITERAL_RUN_RE = re.compile(
    r"[\"']([a-z][a-z0-9_]*)[\"'](?:\s*,\s*[\"']([a-z][a-z0-9_]*)[\"'])+"
)
COMMENT_RE = re.compile(r"#.*$")


def scan_for_ladders(scoring) -> list:
    """No literal dispatch or function-name tuples outside the registry."""
    names = set(scoring.function_names())
    paper_sets = set(scoring.PAPER_SET_NAMES)
    problems = []
    for path in sorted((REPO_ROOT / "src").rglob("*.py")):
        relative = str(path.relative_to(REPO_ROOT))
        if relative.startswith(EXEMPT_PREFIX):
            continue
        for lineno, raw in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            line = COMMENT_RE.sub("", raw)
            if DISPATCH_RE.search(line):
                problems.append(
                    f"src: {relative}:{lineno}: literal function dispatch "
                    f"(derive from repro.scoring instead)"
                )
            for match in LITERAL_RUN_RE.finditer(line):
                literals = re.findall(r"[\"']([a-z][a-z0-9_]*)[\"']", match.group(0))
                # A hand-rolled choices tuple: every literal is a registered
                # function name and at least one is unambiguously a function
                # (the text/pattern paper-set pair stays legal).
                if set(literals) <= names and not set(literals) <= paper_sets:
                    problems.append(
                        f"src: {relative}:{lineno}: literal function-name "
                        f"tuple {tuple(literals)} (use scoring.function_names())"
                    )
    return problems


def main() -> int:
    from repro import scoring

    problems = []
    problems.extend(check_cli_choices(scoring))
    problems.extend(check_workspace_artifacts(scoring))
    problems.extend(check_docs(scoring))
    problems.extend(scan_for_ladders(scoring))
    if problems:
        print("score-registry violations:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    arms = len(scoring.evaluation_arms())
    print(
        f"check_score_registry: {len(scoring.function_names())} functions, "
        f"{arms} arms -- CLI, workspace, and docs agree with the registry"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
