"""Property-based tests for the evaluation metrics and ontology invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import (
    precision,
    sd_histogram,
    separability_sd,
    top_fraction_ids,
    topk_overlap,
)
from repro.datagen.ontology_gen import OntologyGenerator

ids = st.text(alphabet="abcdefgh", min_size=1, max_size=3)
score_maps = st.dictionaries(
    ids, st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1,
    max_size=20,
)


class TestPrecisionProperties:
    @given(st.sets(ids, max_size=15), st.sets(ids, max_size=15))
    def test_bounds(self, results, answers):
        value = precision(results, answers)
        if not results:
            assert value is None
        else:
            assert 0.0 <= value <= 1.0

    @given(st.sets(ids, min_size=1, max_size=15))
    def test_perfect_when_results_subset_of_answers(self, results):
        assert precision(results, results | {"zzz"}) == 1.0


class TestTopKOverlapProperties:
    @given(score_maps, score_maps, st.integers(min_value=1, max_value=10))
    def test_bounds_and_symmetry(self, a, b, k):
        value = topk_overlap(a, b, k=k)
        assert value is not None
        assert 0.0 <= value <= 1.0
        assert math.isclose(value, topk_overlap(b, a, k=k), rel_tol=1e-12)

    @given(score_maps, st.integers(min_value=1, max_value=10))
    def test_self_overlap_is_one(self, a, k):
        assert topk_overlap(a, a, k=k) == 1.0

    @given(score_maps, st.integers(min_value=1, max_value=10))
    def test_top_ids_contains_argmax(self, a, k):
        top = top_fraction_ids(a, k)
        best = max(a, key=lambda key: (a[key], key))
        assert best in top


class TestSeparabilityProperties:
    score_lists = st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=60,
    )

    @given(score_lists)
    def test_bounds(self, scores):
        sd = separability_sd(scores)
        assert 0.0 <= sd <= 30.0 + 1e-9  # 30 = degenerate single-bin case

    @given(score_lists)
    def test_histogram_percentages_sum_to_100(self, scores):
        sd = separability_sd(scores)
        histogram = sd_histogram([sd])
        assert math.isclose(sum(p for _, p in histogram), 100.0)

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_constant_scores_are_degenerate(self, value):
        assert separability_sd([value] * 10) == separability_sd([value] * 50)


class TestOntologyProperties:
    @given(st.integers(min_value=1, max_value=120), st.integers(min_value=0, max_value=10))
    @settings(max_examples=25, deadline=None)
    def test_generated_ontology_invariants(self, n_terms, seed):
        ontology = OntologyGenerator(n_terms=n_terms, max_depth=6).generate(seed=seed)
        assert len(ontology) == n_terms
        # Levels: every child sits exactly one below its shallowest parent.
        for term in ontology:
            if term.parent_ids:
                best = min(ontology.level(p) for p in term.parent_ids)
                assert ontology.level(term.term_id) == best + 1
            else:
                assert ontology.level(term.term_id) == 1
        # Information content is anti-monotone along ancestor chains.
        for term in ontology:
            ic = ontology.information_content(term.term_id)
            for ancestor in ontology.ancestors(term.term_id):
                assert ontology.information_content(ancestor) <= ic + 1e-9
        # p(root) == 1 for a single-root ontology.
        if len(ontology.roots) == 1:
            assert math.isclose(ontology.p(ontology.roots[0]), 1.0)
