"""Information-content semantic similarity between ontology terms.

The paper already uses Resnik's information content (reference [13]) to
quantify informativeness decay; this module completes the classic IC
similarity family over the same machinery:

- **Resnik** -- IC of the most informative common ancestor (MICA);
- **Lin**    -- ``2 * IC(MICA) / (IC(a) + IC(b))``, normalised to [0, 1];
- **Jiang-Conrath distance** -- ``IC(a) + IC(b) - 2 * IC(MICA)`` (0 =
  identical), plus the standard similarity transform ``1 / (1 + dist)``.

These are the standard tools for grading how related two GO contexts are
-- e.g. a finer-grained weighting schedule for the section-7 extension
than the binary hierarchically-related test.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.ontology.ontology import Ontology, OntologyError


def common_ancestors(ontology: Ontology, a: str, b: str) -> Set[str]:
    """Shared ancestors of ``a`` and ``b`` (each including itself)."""
    return ontology.ancestors(a, include_self=True) & ontology.ancestors(
        b, include_self=True
    )


def most_informative_common_ancestor(
    ontology: Ontology, a: str, b: str
) -> Optional[str]:
    """The common ancestor with the highest information content (MICA).

    None when the terms share no ancestor (different roots).  Ties break
    on term id for determinism.
    """
    shared = common_ancestors(ontology, a, b)
    if not shared:
        return None
    return max(
        sorted(shared), key=lambda tid: ontology.information_content(tid)
    )


def resnik_similarity(ontology: Ontology, a: str, b: str) -> float:
    """IC of the MICA; 0.0 for terms with no common ancestor."""
    mica = most_informative_common_ancestor(ontology, a, b)
    if mica is None:
        return 0.0
    return ontology.information_content(mica)


def lin_similarity(ontology: Ontology, a: str, b: str) -> float:
    """Lin's normalised similarity in [0, 1].

    1.0 for a term with itself (when it has positive IC); 0.0 for
    unrelated terms or when either term is a root (IC 0, nothing to
    share).
    """
    denominator = ontology.information_content(a) + ontology.information_content(b)
    if denominator == 0.0:
        return 0.0
    return 2.0 * resnik_similarity(ontology, a, b) / denominator


def jiang_conrath_distance(ontology: Ontology, a: str, b: str) -> float:
    """JC distance: IC(a) + IC(b) - 2 IC(MICA); 0 = semantically identical.

    Raises :class:`OntologyError` when the terms share no ancestor -- the
    distance is undefined across disconnected roots.
    """
    mica = most_informative_common_ancestor(ontology, a, b)
    if mica is None:
        raise OntologyError(f"{a} and {b} share no common ancestor")
    return (
        ontology.information_content(a)
        + ontology.information_content(b)
        - 2.0 * ontology.information_content(mica)
    )


def jiang_conrath_similarity(ontology: Ontology, a: str, b: str) -> float:
    """``1 / (1 + JC distance)`` in (0, 1]; 0.0 for disconnected terms."""
    try:
        distance = jiang_conrath_distance(ontology, a, b)
    except OntologyError:
        return 0.0
    return 1.0 / (1.0 + distance)
