"""Bibliographic coupling and co-citation similarities.

Section 3.2's reference facet:

    SimReferences(PQ, PX) = BibWeight * Sim_bib + (1 - BibWeight) * Sim_coc

- *Bibliographic coupling* (Kessler 1963, reference [15]): two papers are
  similar when they cite the same papers -- measured here as the cosine of
  their reference sets (|common refs| / sqrt(|refs_a| * |refs_b|)).
- *Co-citation* (Small 1973, reference [14]): two papers are similar when
  the same papers cite both -- cosine of their citing sets.

Cosine set overlap keeps both measures in [0, 1] and symmetric, and reduces
to 1.0 for identical non-empty sets.
"""

from __future__ import annotations

import math
from typing import Set

from repro.citations.graph import CitationGraph


def _cosine_overlap(a: Set[str], b: Set[str]) -> float:
    if not a or not b:
        return 0.0
    return len(a & b) / math.sqrt(len(a) * len(b))


def bibliographic_coupling(graph: CitationGraph, paper_a: str, paper_b: str) -> float:
    """Cosine overlap of the two papers' *outgoing* reference sets."""
    if paper_a == paper_b:
        return 1.0 if graph.out_degree(paper_a) > 0 else 0.0
    refs_a = set(graph.out_neighbors(paper_a))
    refs_b = set(graph.out_neighbors(paper_b))
    return _cosine_overlap(refs_a, refs_b)


def cocitation(graph: CitationGraph, paper_a: str, paper_b: str) -> float:
    """Cosine overlap of the two papers' *incoming* citer sets."""
    if paper_a == paper_b:
        return 1.0 if graph.in_degree(paper_a) > 0 else 0.0
    citers_a = set(graph.in_neighbors(paper_a))
    citers_b = set(graph.in_neighbors(paper_b))
    return _cosine_overlap(citers_a, citers_b)


def citation_similarity(
    graph: CitationGraph,
    paper_a: str,
    paper_b: str,
    bib_weight: float = 0.5,
) -> float:
    """The combined SimReferences of section 3.2.

    ``bib_weight`` is BibWeight; co-citation gets ``1 - bib_weight``.
    """
    if not 0.0 <= bib_weight <= 1.0:
        raise ValueError(f"bib_weight must be in [0, 1], got {bib_weight}")
    return bib_weight * bibliographic_coupling(graph, paper_a, paper_b) + (
        1.0 - bib_weight
    ) * cocitation(graph, paper_a, paper_b)
