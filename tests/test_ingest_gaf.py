"""Unit tests for GAF parsing."""

import io

import pytest

from repro.ingest.gaf import EXPERIMENTAL_EVIDENCE_CODES, read_gaf_training_map

SAMPLE_GAF = """!gaf-version: 2.2
!generated-by: test
UniProtKB\tP00001\tGENE1\t\tGO:0003700\tPMID:100|GO_REF:0000033\tIDA\t\tF\t\t\tprotein\ttaxon:9606\t20200101\tUniProt\t\t
UniProtKB\tP00002\tGENE2\t\tGO:0003700\tPMID:200\tIEA\t\tF\t\t\tprotein\ttaxon:9606\t20200101\tUniProt\t\t
UniProtKB\tP00003\tGENE3\t\tGO:0006355\tPMID:300\tIMP\t\tP\t\t\tprotein\ttaxon:9606\t20200101\tUniProt\t\t
UniProtKB\tP00004\tGENE4\t\tGO:0006355\tPMID:100\tEXP\t\tP\t\t\tprotein\ttaxon:9606\t20200101\tUniProt\t\t
UniProtKB\tP00005\tGENE5\t\tGO:0006355\tPMID:100\tIDA\t\tP\t\t\tprotein\ttaxon:9606\t20200101\tUniProt\t\t
short\trow
"""


class TestReadGafTrainingMap:
    def test_experimental_rows_kept(self):
        training = read_gaf_training_map(io.StringIO(SAMPLE_GAF))
        assert training["GO:0003700"] == ["PMID:100"]
        assert training["GO:0006355"] == ["PMID:300", "PMID:100"]

    def test_iea_filtered_by_default(self):
        training = read_gaf_training_map(io.StringIO(SAMPLE_GAF))
        assert "PMID:200" not in training.get("GO:0003700", [])

    def test_custom_evidence_codes(self):
        training = read_gaf_training_map(
            io.StringIO(SAMPLE_GAF), evidence_codes={"IEA"}
        )
        assert training == {"GO:0003700": ["PMID:200"]}

    def test_duplicate_pmid_per_term_deduplicated(self):
        training = read_gaf_training_map(io.StringIO(SAMPLE_GAF))
        # PMID:100 appears twice for GO:0006355 (EXP and IDA rows).
        assert training["GO:0006355"].count("PMID:100") == 1

    def test_restrict_to_corpus_ids(self):
        training = read_gaf_training_map(
            io.StringIO(SAMPLE_GAF),
            restrict_to_paper_ids={"PMID:100"},
        )
        assert training == {
            "GO:0003700": ["PMID:100"],
            "GO:0006355": ["PMID:100"],
        }

    def test_max_papers_per_term(self):
        training = read_gaf_training_map(
            io.StringIO(SAMPLE_GAF), max_papers_per_term=1
        )
        assert training["GO:0006355"] == ["PMID:300"]

    def test_non_pmid_references_ignored(self):
        training = read_gaf_training_map(io.StringIO(SAMPLE_GAF))
        for papers in training.values():
            assert all(pid.startswith("PMID:") for pid in papers)

    def test_malformed_rows_skipped(self):
        # The 'short\trow' line must not raise.
        read_gaf_training_map(io.StringIO(SAMPLE_GAF))

    def test_reads_from_path(self, tmp_path):
        path = tmp_path / "annotations.gaf"
        path.write_text(SAMPLE_GAF, encoding="utf-8")
        training = read_gaf_training_map(str(path))
        assert "GO:0003700" in training

    def test_evidence_code_set_sane(self):
        assert "IDA" in EXPERIMENTAL_EVIDENCE_CODES
        assert "IEA" not in EXPERIMENTAL_EVIDENCE_CODES


class TestEndToEndIngest:
    def test_medline_plus_gaf_feed_pipeline(self):
        """The full real-data path: XML + GAF -> Pipeline -> search."""
        from repro.ingest.medline import read_medline_xml
        from repro.ontology import Ontology
        from repro.ontology.term import Term
        from repro.pipeline import Pipeline

        xml = """<?xml version="1.0"?>
        <PubmedArticleSet>
          <PubmedArticle><MedlineCitation><PMID>100</PMID>
            <Article><ArticleTitle>transcription factor binding</ArticleTitle>
            <Abstract><AbstractText>dna binding transcription factor activity assays</AbstractText></Abstract>
            </Article></MedlineCitation></PubmedArticle>
          <PubmedArticle><MedlineCitation><PMID>300</PMID>
            <Article><ArticleTitle>regulation of transcription</ArticleTitle>
            <Abstract><AbstractText>transcription regulation experiments and analysis</AbstractText></Abstract>
            </Article></MedlineCitation></PubmedArticle>
        </PubmedArticleSet>"""
        corpus = read_medline_xml(io.StringIO(xml))
        ontology = Ontology(
            [
                Term("GO:0003674", "molecular function"),
                Term(
                    "GO:0003700",
                    "dna binding transcription factor activity",
                    parent_ids=("GO:0003674",),
                ),
                Term(
                    "GO:0006355",
                    "regulation of transcription",
                    parent_ids=("GO:0003674",),
                ),
            ]
        )
        training = read_gaf_training_map(
            io.StringIO(SAMPLE_GAF), restrict_to_paper_ids=corpus.paper_ids()
        )
        pipeline = Pipeline(
            corpus=corpus,
            ontology=ontology,
            training_papers=training,
            min_context_size=1,
        )
        hits = pipeline.search("transcription factor")
        assert hits
        assert hits[0].paper_id in {"PMID:100", "PMID:300"}
