"""Citation-based prestige (section 3.1).

Per context: take the induced citation subgraph over the context's papers
("only citation information between papers in the given context") and run
the paper's PageRank variant on it.  Papers in sparse subgraphs collapse
to few unique scores -- the separability weakness figures 5.4/5.7 report.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.citations.graph import CitationGraph
from repro.citations.pagerank import TeleportKind, pagerank
from repro.core.context import Context
from repro.core.scores.base import PrestigeScoreFunction


class CitationPrestige(PrestigeScoreFunction):
    """Per-context PageRank prestige.

    Parameters
    ----------
    graph:
        The corpus-wide citation graph; each context scores against its
        induced subgraph.
    teleport:
        E1 (constant) or E2 (uniform redistribution) from section 3.1.
    d:
        Teleport probability (1 - damping).
    """

    name = "citation"
    #: PageRank's teleport floor is a real baseline: papers tied at it are
    #: equally (somewhat) important, not all worthless, so per-context
    #: normalisation divides by the max instead of subtracting the min.
    normalization = "max"

    def __init__(
        self,
        graph: CitationGraph,
        teleport: TeleportKind = TeleportKind.E2_UNIFORM,
        d: float = 0.15,
        max_iterations: int = 100,
    ) -> None:
        self.graph = graph
        self.teleport = teleport
        self.d = d
        self.max_iterations = max_iterations

    def score_context(self, context: Context) -> Dict[str, float]:
        if not context.paper_ids:
            return {}
        subgraph = self.graph.subgraph(context.paper_ids)
        result = pagerank(
            subgraph,
            teleport=self.teleport,
            d=self.d,
            max_iterations=self.max_iterations,
        )
        return result.scores

    def subgraph_density(self, context: Context) -> float:
        """Density of the context's citation subgraph (diagnostics)."""
        return self.graph.subgraph(context.paper_ids).density()
