"""Vocabulary: term <-> integer id mapping with document frequencies.

The vocabulary underpins the TF-IDF model and the inverted index.  Ids are
dense and assigned in first-seen order, so vectors built against the same
vocabulary are directly comparable.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class Vocabulary:
    """A growable term dictionary with document-frequency bookkeeping."""

    def __init__(self) -> None:
        self._term_to_id: Dict[str, int] = {}
        self._id_to_term: List[str] = []
        self._doc_freq: List[int] = []
        self._n_documents = 0

    # -- construction ---------------------------------------------------------

    def add_term(self, term: str) -> int:
        """Intern ``term`` and return its id (existing id if already known)."""
        term_id = self._term_to_id.get(term)
        if term_id is None:
            term_id = len(self._id_to_term)
            self._term_to_id[term] = term_id
            self._id_to_term.append(term)
            self._doc_freq.append(0)
        return term_id

    def add_document(self, terms: Iterable[str]) -> List[int]:
        """Register one document's terms; updates document frequencies.

        Returns the term-id sequence of the document (with duplicates, in
        order), which callers typically feed straight into vectorisation.
        """
        term_ids = [self.add_term(term) for term in terms]
        for term_id in set(term_ids):
            self._doc_freq[term_id] += 1
        self._n_documents += 1
        return term_ids

    def remove_document(self, terms: Iterable[str]) -> List[int]:
        """Unregister one previously-added document's terms.

        The exact inverse of :meth:`add_document` for the statistics that
        feed IDF: every distinct term's document frequency is decremented
        and the document count drops by one.  Term *ids* are never
        reclaimed -- a term whose frequency reaches zero stays interned
        with ``df == 0`` so ids assigned to later documents are identical
        whether or not this document ever existed.  Callers must pass the
        same term sequence the document was added with.
        """
        term_ids = [self.add_term(term) for term in terms]
        for term_id in set(term_ids):
            if self._doc_freq[term_id] <= 0:
                raise ValueError(
                    f"cannot remove document: term {self._id_to_term[term_id]!r} "
                    "has zero document frequency (was this document added?)"
                )
            self._doc_freq[term_id] -= 1
        if self._n_documents <= 0:
            raise ValueError("cannot remove a document from an empty vocabulary")
        self._n_documents -= 1
        return term_ids

    # -- lookup ---------------------------------------------------------------

    def id_of(self, term: str) -> Optional[int]:
        """Return the id of ``term`` or None if unknown."""
        return self._term_to_id.get(term)

    def term_of(self, term_id: int) -> str:
        """Return the term string for ``term_id`` (raises on bad id)."""
        return self._id_to_term[term_id]

    def doc_freq(self, term: str) -> int:
        """Number of registered documents containing ``term`` (0 if unknown)."""
        term_id = self._term_to_id.get(term)
        if term_id is None:
            return 0
        return self._doc_freq[term_id]

    def doc_freq_by_id(self, term_id: int) -> int:
        """Document frequency for a known term id."""
        return self._doc_freq[term_id]

    @property
    def n_documents(self) -> int:
        """Number of documents registered via :meth:`add_document`."""
        return self._n_documents

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_term)

    def items(self) -> Iterator[Tuple[str, int]]:
        """Iterate ``(term, id)`` pairs."""
        return iter(self._term_to_id.items())

    # -- (de)serialisation ------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """JSON-able snapshot; ids are implicit in the term list order."""
        return {
            "terms": list(self._id_to_term),
            "doc_freq": list(self._doc_freq),
            "n_documents": self._n_documents,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "Vocabulary":
        """Rebuild from :meth:`to_payload` output (ids preserved exactly)."""
        vocabulary = cls()
        terms = list(payload["terms"])
        doc_freq = [int(df) for df in payload["doc_freq"]]
        if len(terms) != len(doc_freq):
            raise ValueError(
                f"vocabulary payload mismatch: {len(terms)} terms vs "
                f"{len(doc_freq)} doc_freq entries"
            )
        vocabulary._id_to_term = terms
        vocabulary._term_to_id = {term: i for i, term in enumerate(terms)}
        vocabulary._doc_freq = doc_freq
        vocabulary._n_documents = int(payload["n_documents"])
        return vocabulary

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Vocabulary({len(self)} terms, {self._n_documents} documents)"
