"""Request-scoped telemetry for the query path.

Every ``Pipeline.search`` / ``search_many`` / ``explain`` call runs
inside one *request context*: it gets a process-unique query id, a root
span (``request.<kind>``) under which selection/scoring/cache spans are
parented -- across ``search_many`` worker threads too, via
:func:`repro.obs.trace.attach_span` -- and a latency observation into
the per-kind histogram (``search.run.latency`` / ``search.batch.latency``
/ ``search.explain.latency``).

Capture policy (head + tail sampling): while telemetry is *enabled*,
every request records its span tree; at completion the record is offered
to the bounded slow-query log when it was **head-sampled** (probability
``sample_rate``), **slow** (duration >= ``slow_ms``), or **errored** --
so the tail is never lost to sampling, and the log keeps only the N
slowest either way.  Each completed request also appends one
:class:`~repro.obs.slo.QueryEvent` to a bounded rolling window, the
substrate SLO evaluation and the ``/slo`` endpoint read.

While telemetry is *disabled* (the default) the request context is a
hair above free: one sentinel check, two monotonic-clock reads, one
histogram observation, one counter increment -- the
"instrumentation-disabled fast path" guarded by
``benchmarks/test_perf_obs_overhead.py`` (within 2% of a stripped
baseline).

The process-wide instance mirrors the metrics registry idiom::

    from repro.obs import configure_telemetry, get_telemetry

    configure_telemetry(enabled=True, sample_rate=0.1, slow_ms=250.0)
    with get_telemetry().request("search", query="dna repair") as req:
        ...
        req.cache(hit=False)
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.obs.metrics import get_registry
from repro.obs.slo import (
    DEFAULT_SLOS,
    QueryEvent,
    SLO,
    evaluate_slos,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import Span, current_tracer, span, start_tracing

__all__ = [
    "QueryRecord",
    "QueryTelemetry",
    "configure_telemetry",
    "get_telemetry",
    "reset_telemetry",
]

#: Per-kind latency histograms (seconds); unknown kinds fall back to the
#: generic request latency.  All four are catalogued in
#: docs/observability.md.
_LATENCY_METRIC = {
    "search": "search.run.latency",
    "search_many": "search.batch.latency",
    "search_grouped": "search.grouped.latency",
    "explain": "search.explain.latency",
}
_FALLBACK_LATENCY_METRIC = "search.request.latency"

#: Queries longer than this are truncated in records (ids stay unique).
_MAX_QUERY_CHARS = 200

#: Hard cap on the rolling SLO event window (deque maxlen).
_MAX_WINDOW_EVENTS = 65536


class QueryRecord:
    """Everything telemetry keeps about one finished request."""

    __slots__ = (
        "query_id", "kind", "query", "attrs", "started_unix", "duration_s",
        "sampled", "slow", "error", "queries", "cache_hits", "cache_lookups",
        "root",
    )

    def __init__(
        self,
        query_id: str,
        kind: str,
        query: str,
        attrs: Dict[str, Any],
        sampled: bool,
        queries: int,
    ) -> None:
        self.query_id = query_id
        self.kind = kind
        self.query = query[:_MAX_QUERY_CHARS]
        self.attrs = attrs
        self.started_unix = time.time()
        self.duration_s = 0.0
        self.sampled = sampled
        self.slow = False
        self.error: Optional[str] = None
        self.queries = queries
        self.cache_hits = 0
        self.cache_lookups = 0
        self.root: Optional[Span] = None

    @property
    def duration_ms(self) -> float:
        return self.duration_s * 1000.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "query_id": self.query_id,
            "kind": self.kind,
            "query": self.query,
            "attrs": dict(self.attrs),
            "started_unix": round(self.started_unix, 3),
            "duration_ms": round(self.duration_ms, 3),
            "sampled": self.sampled,
            "slow": self.slow,
            "error": self.error,
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "cache_lookups": self.cache_lookups,
            "spans": self.root.to_dict() if self.root is not None else None,
        }


class _ActiveRequest:
    """The handle a request body uses to attribute work to its record."""

    __slots__ = ("record", "_span")

    def __init__(self, record: QueryRecord, span_node) -> None:
        self.record = record
        self._span = span_node

    def set(self, **attrs: Any) -> None:
        """Attach attributes to both the record and its root span."""
        self.record.attrs.update(attrs)
        self._span.set(**attrs)

    def cache(self, hit: bool) -> None:
        """Record one result-cache lookup (hit or miss)."""
        self.record.cache_lookups += 1
        if hit:
            self.record.cache_hits += 1

    def cache_batch(self, hits: int, lookups: int) -> None:
        """Record a batch's aggregate result-cache attribution."""
        self.record.cache_hits += hits
        self.record.cache_lookups += lookups


class _NullRequest:
    """Shared do-nothing handle for the telemetry-disabled fast path."""

    __slots__ = ()
    record = None

    def set(self, **attrs: Any) -> None:
        pass

    def cache(self, hit: bool) -> None:
        pass

    def cache_batch(self, hits: int, lookups: int) -> None:
        pass


_NULL_REQUEST = _NullRequest()


class QueryTelemetry:
    """Per-query request contexts, sampling, slow-query log, SLO window.

    Thread-safe: id allocation and the sampling RNG share one small lock,
    the slow-query log locks internally, and the event window is a
    bounded deque (appends are atomic; pruning locks).
    """

    def __init__(
        self,
        enabled: bool = False,
        sample_rate: float = 0.05,
        slow_ms: float = 100.0,
        slowlog_capacity: int = 32,
        slos: Optional[Sequence[SLO]] = None,
        seed: Optional[int] = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        if slow_ms < 0:
            raise ValueError(f"slow_ms must be >= 0, got {slow_ms}")
        self.enabled = enabled
        self.sample_rate = sample_rate
        self.slow_ms = slow_ms
        self.slowlog = SlowQueryLog(capacity=slowlog_capacity)
        self.slos: List[SLO] = list(DEFAULT_SLOS if slos is None else slos)
        self._ids = itertools.count(1)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=_MAX_WINDOW_EVENTS)
        self._listeners: List = []
        self._owned_tracer = None
        if enabled:
            self._ensure_tracer()

    # -- lifecycle -------------------------------------------------------------------

    def _ensure_tracer(self) -> None:
        """Make sure spans are recorded somewhere while telemetry is on.

        Reuses an externally installed tracer (CLI ``--trace-out``) when
        one is active; otherwise installs one of its own, whose roots are
        discarded per request so an always-on server never accumulates
        span trees outside the bounded slow-query log.
        """
        if current_tracer() is None:
            self._owned_tracer = start_tracing()

    def add_listener(self, listener) -> None:
        """Register a finish-hook called with every completed QueryRecord.

        The hook for stream consumers such as the query-analytics
        aggregator (:class:`repro.serving.analytics.QueryAnalytics`).
        Listeners run on the request thread *after* the latency
        observation, only while telemetry is enabled (the disabled fast
        path never builds a record); exceptions are swallowed per
        listener so a broken consumer cannot fail live queries.
        """
        with self._lock:
            if listener not in self._listeners:
                self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        """Deregister a finish-hook (missing listeners are ignored)."""
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    def disable(self) -> None:
        """Turn request capture off and drop a telemetry-owned tracer."""
        from repro.obs.trace import stop_tracing

        self.enabled = False
        if (
            self._owned_tracer is not None
            and current_tracer() is self._owned_tracer
        ):
            stop_tracing()
        self._owned_tracer = None

    # -- the request context ---------------------------------------------------------

    @contextmanager
    def request(
        self, kind: str, query: str = "", queries: int = 1, **attrs: Any
    ) -> Iterator:
        """Wrap one query-path call; yields the request handle.

        ``kind`` selects the latency histogram and names the root span
        ``request.<kind>``; extra ``attrs`` land on both the record and
        the span.  Exceptions are counted, recorded, and re-raised.
        """
        registry = get_registry()
        latency = registry.histogram(
            _LATENCY_METRIC.get(kind, _FALLBACK_LATENCY_METRIC)
        )
        started = time.perf_counter()
        if not self.enabled:
            # Disabled fast path: no ids, no sampling, no span capture
            # beyond whatever tracer the caller installed themselves.
            try:
                yield _NULL_REQUEST
            except BaseException:
                registry.counter("search.request.errors").inc()
                raise
            finally:
                registry.counter("search.request.queries").inc()
                latency.observe(time.perf_counter() - started)
            return

        with self._lock:
            query_id = f"q-{next(self._ids):06d}"
            sampled = self._rng.random() < self.sample_rate
        record = QueryRecord(
            query_id=query_id, kind=kind, query=query,
            attrs=dict(attrs), sampled=sampled, queries=queries,
        )
        tracer = current_tracer()
        if tracer is None:  # an external tracer was stopped mid-flight
            self._ensure_tracer()
            tracer = current_tracer()
        owns_tracer = tracer is self._owned_tracer
        try:
            with span(
                f"request.{kind}", query_id=query_id, query=record.query,
                **attrs,
            ) as root:
                record.root = root
                yield _ActiveRequest(record, root)
        except BaseException as error:
            record.error = f"{type(error).__name__}: {error}"
            registry.counter("search.request.errors").inc()
            raise
        finally:
            record.duration_s = time.perf_counter() - started
            record.slow = record.duration_ms >= self.slow_ms
            registry.counter("search.request.queries").inc()
            latency.observe(record.duration_s)
            if owns_tracer and record.root is not None:
                tracer.discard_root(record.root)
            self._finish(record, registry)

    def _finish(self, record: QueryRecord, registry) -> None:
        if record.sampled:
            registry.counter("telemetry.request.sampled").inc()
        if record.slow:
            registry.counter("telemetry.request.slow").inc()
        if record.sampled or record.slow or record.error is not None:
            if self.slowlog.offer(record):
                registry.counter("telemetry.slowlog.captured").inc()
        self._events.append(
            QueryEvent(
                ts=time.monotonic(),
                kind=record.kind,
                duration_s=record.duration_s / max(record.queries, 1),
                queries=record.queries,
                error=record.error is not None,
                cache_hits=record.cache_hits,
                cache_lookups=record.cache_lookups,
            )
        )
        with self._lock:
            listeners = tuple(self._listeners)
        for listener in listeners:
            try:
                listener(record)
            except Exception:
                registry.counter("telemetry.listener.errors").inc()

    # -- SLO evaluation --------------------------------------------------------------

    def events(self) -> List[QueryEvent]:
        """A snapshot of the rolling event window (oldest first)."""
        return list(self._events)

    def slo_statuses(self, now: Optional[float] = None) -> List:
        """Every declared SLO evaluated over the current window."""
        if now is None:
            now = time.monotonic()
        return evaluate_slos(self.slos, self.events(), now)

    # -- export ----------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The ``--telemetry-out`` dump shape (JSON-able)."""
        return {
            "enabled": self.enabled,
            "sample_rate": self.sample_rate,
            "slow_ms": self.slow_ms,
            "slowlog_capacity": self.slowlog.capacity,
            "window_events": len(self._events),
            "slowlog": self.slowlog.to_dicts(),
            "slo": [status.to_dict() for status in self.slo_statuses()],
        }

    def dump(self, path) -> None:
        import json

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


_telemetry = QueryTelemetry()
_telemetry_lock = threading.Lock()


def get_telemetry() -> QueryTelemetry:
    """The process-wide telemetry the query path records into."""
    return _telemetry


def configure_telemetry(**kwargs: Any) -> QueryTelemetry:
    """Install (and return) a freshly configured process-wide telemetry.

    Accepts the :class:`QueryTelemetry` constructor arguments; the
    previous instance is disabled first so a tracer it owned does not
    leak.
    """
    global _telemetry
    with _telemetry_lock:
        _telemetry.disable()
        _telemetry = QueryTelemetry(**kwargs)
        return _telemetry


def reset_telemetry() -> QueryTelemetry:
    """Back to the disabled default (test isolation / end of a run)."""
    return configure_telemetry()
