"""Public-API surface tests: exports, doctests, determinism."""

import doctest

import pytest

import repro
import repro.baselines
import repro.citations
import repro.core
import repro.core.scores
import repro.corpus
import repro.datagen
import repro.eval
import repro.index
import repro.ingest
import repro.ontology
import repro.text


PACKAGES = [
    repro,
    repro.text,
    repro.ontology,
    repro.corpus,
    repro.citations,
    repro.index,
    repro.datagen,
    repro.core,
    repro.core.scores,
    repro.eval,
    repro.baselines,
    repro.ingest,
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES, ids=lambda p: p.__name__)
    def test_all_names_resolve(self, package):
        if not hasattr(package, "__all__"):
            pytest.skip("no __all__")
        for name in package.__all__:
            assert hasattr(package, name), f"{package.__name__}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES, ids=lambda p: p.__name__)
    def test_all_has_no_duplicates(self, package):
        if not hasattr(package, "__all__"):
            pytest.skip("no __all__")
        assert len(package.__all__) == len(set(package.__all__))

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_top_level_convenience(self):
        # The README quickstart names must exist at the top level.
        for name in ("build_demo_pipeline", "Pipeline", "Corpus", "Paper",
                     "Ontology", "pagerank"):
            assert hasattr(repro, name)


DOCTEST_MODULES = [
    "repro.text.tokenize",
    "repro.text.stem",
    "repro.text.stopwords",
    "repro.text.similarity",
    "repro.text.analyze",
    "repro.ontology.term",
    "repro.eval.ascii_plot",
]


class TestDoctests:
    @pytest.mark.parametrize("module_name", DOCTEST_MODULES)
    def test_module_doctests(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0, f"{results.failed} doctest failures"
        assert results.attempted > 0, "expected at least one doctest example"


class TestEndToEndDeterminism:
    def test_identical_precision_curves_across_runs(self, small_dataset):
        """The entire experiment stack is seed-deterministic."""
        from repro.datagen.queries import generate_queries
        from repro.eval.experiments import PrecisionExperiment
        from repro.pipeline import Pipeline

        queries = [
            w.query for w in generate_queries(small_dataset, n_queries=4, seed=6)
        ]

        def run_curve():
            pipeline = Pipeline.from_dataset(small_dataset, min_context_size=3)
            experiment = PrecisionExperiment(
                pipeline, queries, thresholds=(0.2, 0.4)
            )
            return experiment.run("text", "text")

        first = run_curve()
        second = run_curve()
        assert first.average == second.average
        assert first.median_ == second.median_
        assert first.empty_queries == second.empty_queries
