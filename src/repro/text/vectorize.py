"""Sparse vectors and the TF-IDF weighting model.

Implements the classic ``tf * idf`` scheme from Salton's *Automatic Text
Processing* (paper reference [6]): term frequency (optionally
log-normalised) times ``log(N / df)``, with cosine-ready L2 normalisation.

Vectors are dict-backed sparse maps from term id to weight.  For the corpus
sizes this system targets (10^4..10^5 documents, 10^4..10^5 terms) dict
sparse vectors beat dense numpy rows on both memory and similarity time,
because paper vectors are short (10^2..10^3 non-zeros).
"""

from __future__ import annotations

import math
import sys
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.text.vocabulary import Vocabulary


class SparseVector:
    """An immutable-by-convention sparse vector of ``{term_id: weight}``."""

    __slots__ = ("weights", "_norm")

    def __init__(self, weights: Optional[Mapping[int, float]] = None) -> None:
        self.weights: Dict[int, float] = dict(weights) if weights else {}
        self._norm: Optional[float] = None

    @property
    def norm(self) -> float:
        """L2 norm, cached after first computation.

        Computed scale-invariantly (factor out the peak magnitude before
        squaring) so vectors of tiny weights don't lose precision to
        subnormal underflow and huge weights can't overflow.
        """
        if self._norm is None:
            peak = max((abs(w) for w in self.weights.values()), default=0.0)
            if peak == 0.0:
                self._norm = 0.0
            else:
                self._norm = peak * math.sqrt(
                    sum((w / peak) ** 2 for w in self.weights.values())
                )
        return self._norm

    def dot(self, other: "SparseVector") -> float:
        """Sparse dot product (iterates the smaller vector)."""
        a, b = self.weights, other.weights
        if len(a) > len(b):
            a, b = b, a
        return sum(weight * b[term] for term, weight in a.items() if term in b)

    def cosine(self, other: "SparseVector") -> float:
        """Cosine similarity in [0, 1] for non-negative weights.

        Returns 0.0 if either vector is empty (the conventional IR choice:
        an empty document matches nothing).
        """
        na, nb = self.norm, other.norm
        if na == 0.0 or nb == 0.0:
            return 0.0
        denominator = na * nb
        if denominator == 0.0 or math.isinf(denominator):
            # The norm product under/overflowed (subnormal or huge
            # weights).  Dividing raw weights by a subnormal norm loses
            # almost every bit of precision, so normalise each vector via
            # ``normalized()`` (which rescales by the peak magnitude into
            # a well-conditioned range first) and dot the unit vectors.
            value = self.normalized().dot(other.normalized())
        else:
            value = self.dot(other) / denominator
        # Guard against floating point drift pushing past 1.
        return min(max(value, 0.0), 1.0)

    def normalized(self) -> "SparseVector":
        """Return a unit-norm copy (or an empty vector if norm is 0)."""
        n = self.norm
        if n == 0.0:
            return SparseVector()
        if n < sys.float_info.min:
            # A subnormal norm carries too little precision to divide by:
            # rescale by the peak magnitude first, then normalise the
            # well-conditioned intermediate.
            peak = max(abs(w) for w in self.weights.values())
            scaled = {t: w / peak for t, w in self.weights.items()}
            m = math.sqrt(sum(v * v for v in scaled.values()))
            return SparseVector({t: v / m for t, v in scaled.items()})
        return SparseVector({t: w / n for t, w in self.weights.items()})

    def scaled(self, factor: float) -> "SparseVector":
        """Return a copy with every weight multiplied by ``factor``."""
        return SparseVector({t: w * factor for t, w in self.weights.items()})

    def add(self, other: "SparseVector") -> "SparseVector":
        """Return the element-wise sum of two vectors."""
        result = dict(self.weights)
        for term, weight in other.weights.items():
            result[term] = result.get(term, 0.0) + weight
        return SparseVector(result)

    def top_terms(self, k: int) -> List[Tuple[int, float]]:
        """Return the ``k`` highest-weighted ``(term_id, weight)`` pairs."""
        return sorted(self.weights.items(), key=lambda item: (-item[1], item[0]))[:k]

    def __len__(self) -> int:
        return len(self.weights)

    def __bool__(self) -> bool:
        return bool(self.weights)

    def __iter__(self) -> Iterator[Tuple[int, float]]:
        return iter(self.weights.items())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SparseVector({len(self.weights)} nonzeros, norm={self.norm:.4f})"


def centroid(vectors: Iterable[SparseVector]) -> SparseVector:
    """Arithmetic-mean centroid of ``vectors`` (empty input -> empty vector).

    Used by the AC-answer-set text expansion ("papers sufficiently similar
    to the centroid of the initial paper set", paper section 2).
    """
    total: Dict[int, float] = {}
    count = 0
    for vector in vectors:
        count += 1
        for term, weight in vector.weights.items():
            total[term] = total.get(term, 0.0) + weight
    if count == 0:
        return SparseVector()
    return SparseVector({t: w / count for t, w in total.items()})


class TfidfModel:
    """TF-IDF weighting over a fixed document collection.

    Build with :meth:`fit` (or incrementally via a shared
    :class:`~repro.text.vocabulary.Vocabulary`), then turn term sequences
    into :class:`SparseVector` instances with :meth:`vectorize`.

    Parameters
    ----------
    sublinear_tf:
        If True (default), use ``1 + log(tf)`` instead of raw ``tf`` --
        Salton's recommended dampening for long documents (paper bodies are
        two orders of magnitude longer than titles).
    smooth_idf:
        If True (default), use ``log((1 + N) / (1 + df)) + 1`` so unseen and
        ubiquitous terms keep small positive weight instead of exploding or
        vanishing.
    """

    def __init__(
        self,
        vocabulary: Optional[Vocabulary] = None,
        sublinear_tf: bool = True,
        smooth_idf: bool = True,
    ) -> None:
        self.vocabulary = vocabulary if vocabulary is not None else Vocabulary()
        self.sublinear_tf = sublinear_tf
        self.smooth_idf = smooth_idf

    def fit(self, documents: Iterable[Iterable[str]]) -> "TfidfModel":
        """Register every document's terms with the vocabulary."""
        for terms in documents:
            self.vocabulary.add_document(terms)
        return self

    def idf(self, term_id: int) -> float:
        """Inverse document frequency for ``term_id``."""
        n = self.vocabulary.n_documents
        df = self.vocabulary.doc_freq_by_id(term_id)
        if self.smooth_idf:
            return math.log((1.0 + n) / (1.0 + df)) + 1.0
        if df == 0:
            return 0.0
        return math.log(n / df)

    def vectorize(self, terms: Iterable[str], normalize: bool = True) -> SparseVector:
        """Build the TF-IDF vector of a term sequence.

        Terms unknown to the vocabulary are ignored (standard IR behaviour
        for query terms never seen at indexing time).  Terms whose document
        frequency has dropped to zero -- ghosts left behind by incremental
        document removal -- are treated exactly like unknown terms, so a
        delta-updated model vectorizes identically to one fitted from
        scratch on the surviving documents.
        """
        counts: Dict[int, int] = {}
        for term in terms:
            term_id = self.vocabulary.id_of(term)
            if term_id is not None and self.vocabulary.doc_freq_by_id(term_id) > 0:
                counts[term_id] = counts.get(term_id, 0) + 1
        weights: Dict[int, float] = {}
        for term_id, count in counts.items():
            tf = 1.0 + math.log(count) if self.sublinear_tf else float(count)
            weights[term_id] = tf * self.idf(term_id)
        vector = SparseVector(weights)
        return vector.normalized() if normalize else vector

    def vectorize_counts(
        self, counts: Mapping[str, int], normalize: bool = True
    ) -> SparseVector:
        """Vectorize a precomputed ordered ``term -> count`` map.

        Produces the same vector -- weights *and* dict insertion order,
        which downstream dot products sum in -- as :meth:`vectorize` on a
        term stream whose first-occurrence order matches the mapping's
        iteration order.  Lets callers cache analysis output once and
        re-weight cheaply after incremental IDF updates.
        """
        weights: Dict[int, float] = {}
        for term, count in counts.items():
            term_id = self.vocabulary.id_of(term)
            if term_id is None or self.vocabulary.doc_freq_by_id(term_id) <= 0:
                continue
            tf = 1.0 + math.log(count) if self.sublinear_tf else float(count)
            weights[term_id] = tf * self.idf(term_id)
        vector = SparseVector(weights)
        return vector.normalized() if normalize else vector

    # -- (de)serialisation --------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """JSON-able snapshot of the fitted model (vocabulary + flags)."""
        return {
            "vocabulary": self.vocabulary.to_payload(),
            "sublinear_tf": self.sublinear_tf,
            "smooth_idf": self.smooth_idf,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "TfidfModel":
        """Rebuild a fitted model from :meth:`to_payload` output."""
        return cls(
            vocabulary=Vocabulary.from_payload(payload["vocabulary"]),
            sublinear_tf=bool(payload["sublinear_tf"]),
            smooth_idf=bool(payload["smooth_idf"]),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TfidfModel({len(self.vocabulary)} terms, "
            f"{self.vocabulary.n_documents} documents)"
        )
