"""Figure 5.7 -- citation-score SD histograms per level (pattern paper set).

Paper observation: citation separability is inversely proportional to the
context level -- deeper contexts have sparser citation subgraphs, so
PageRank assigns fewer unique scores and the distribution degenerates.
"""

from conftest import write_result

from repro.eval.experiments import SeparabilityExperiment

LEVELS = (3, 5, 7)


def low_sd_share(histogram, cut=25.0):
    return sum(percent for edge, percent in histogram if edge < cut)


def test_fig_5_7_citation_separability_by_level(benchmark, pipeline, results_dir):
    paper_set = pipeline.experiment_paper_set("pattern")
    experiment = SeparabilityExperiment(paper_set, levels=LEVELS)

    def run():
        return experiment.run(pipeline.prestige("citation", "pattern"))

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    from repro.eval.ascii_plot import ascii_histogram

    lines = [result.format_table(), "", "per-level %contexts with SD < 25:"]
    shares = {}
    for level in LEVELS:
        shares[level] = low_sd_share(result.histogram_by_level[level])
        lines.append(f"  level {level}: {shares[level]:.1f}%")
    for level in LEVELS:
        lines.append(f"\nlevel {level} SD histogram:")
        lines.append(ascii_histogram(result.histogram_by_level[level]))
    write_result(results_dir, "fig_5_7", "\n".join(lines))

    # Citation separability degrades with depth...
    assert shares[LEVELS[0]] >= shares[LEVELS[-1]], (
        f"citation separability must degrade with depth: "
        f"{shares[LEVELS[0]]:.1f}% at level {LEVELS[0]} vs "
        f"{shares[LEVELS[-1]]:.1f}% at level {LEVELS[-1]}"
    )
    # ...and is poor overall (most contexts near the degenerate SD).
    assert result.mean_sd() > 20.0
