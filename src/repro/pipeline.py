"""End-to-end pipeline wiring: the one-stop user-facing API.

:class:`Pipeline` is a thin façade over the three layers of the system
(see ``docs/architecture.md``):

1. the **scoring registry** (:mod:`repro.scoring`) -- every prestige
   score function, declared once, driving dispatch/CLI/workspace/sweeps;
2. the **build layer** (:class:`~repro.serving.substrate.SubstrateStore`)
   -- index, vectors, token cache, citation graph, the two context paper
   sets, representatives, memoised scores, and a mutation revision;
3. the **serve layer** (:class:`~repro.serving.view.ServingView`) -- an
   immutable-per-refresh snapshot of memoised search engines plus the
   LRU result cache, swapped atomically by :meth:`Pipeline.refresh` so
   concurrent searches never observe a half-invalidated cache.

Build one from your own data or call :func:`build_demo_pipeline` for a
seeded synthetic dataset.

Typical use::

    pipeline = build_demo_pipeline(seed=7, n_papers=800)
    hits = pipeline.search("dna repair kinase", limit=10)
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.citations.graph import CitationGraph
from repro.core.assignment import PatternContextAssigner
from repro.core.context import ContextPaperSet
from repro.core.patterns import AnalyzedPaperCache
from repro.core.scores import PrestigeScores
from repro.core.search import ContextSearchEngine, RankingExplanation, SearchHit
from repro.core.vectors import PaperVectorStore
from repro.corpus.corpus import Corpus
from repro.datagen.corpus_gen import CorpusGenerator, GeneratedDataset
from repro.datagen.ontology_gen import OntologyGenerator
from repro.index.backends.base import SearchBackend
from repro.index.search import KeywordSearchEngine
from repro.obs import get_registry, get_telemetry, span
from repro.obs.quality import (
    DriftExceeded,
    DriftReport,
    evaluate_drift,
    export_drift_gauges,
)
from repro.ontology.ontology import Ontology
from repro.serving import SearchResultCache, ServingView, SubstrateStore

__all__ = ["Pipeline", "SearchResultCache", "build_demo_pipeline"]


class Pipeline:
    """Lazily-built artefact graph over one corpus + ontology + training map.

    Parameters
    ----------
    corpus / ontology / training_papers:
        The raw inputs (training papers are the per-term annotation
        evidence driving representatives and patterns).
    text_similarity_threshold:
        Membership bar for the text-based context paper set.
    min_context_size:
        Contexts smaller than this are dropped from the *experiment* view
        (the paper excludes small contexts); search still uses all.
    result_cache_size:
        Capacity of the serving-side LRU result cache (entries);
        ``0`` disables result caching entirely.
    index_backend:
        Name of the registered index backend (``repro.index.backends``)
        that builds/persists/opens the inverted index -- ``memory``
        (default) or ``ondisk``, plus any plugin registrations.
    """

    def __init__(
        self,
        corpus: Corpus,
        ontology: Ontology,
        training_papers: Mapping[str, Sequence[str]],
        text_similarity_threshold: float = 0.10,
        min_context_size: int = 5,
        w_prestige: float = 0.7,
        w_matching: float = 0.3,
        result_cache_size: int = 256,
        index_backend: str = "memory",
    ) -> None:
        self.min_context_size = min_context_size
        self.w_prestige = w_prestige
        self.w_matching = w_matching
        self.result_cache_size = result_cache_size
        self._store = SubstrateStore(
            corpus,
            ontology,
            training_papers,
            text_similarity_threshold=text_similarity_threshold,
            index_backend=index_backend,
        )
        self._serving = ServingView(
            self._store,
            self._store.revision,
            w_prestige=w_prestige,
            w_matching=w_matching,
            result_cache_size=result_cache_size,
        )
        # Reload drift detection (configure_drift): a pinned probe-query
        # baseline, the threshold an *enforced* refresh refuses above,
        # and the substrate revision a refused swap pinned the old view
        # against (None = no refusal in effect).
        self._drift_config: Optional[dict] = None
        self._drift_baseline: Optional[Dict[str, Dict[str, tuple]]] = None
        self._drift_hold_revision: Optional[int] = None
        self.last_drift_report: Optional[DriftReport] = None

    @classmethod
    def from_dataset(cls, dataset: GeneratedDataset, **kwargs) -> "Pipeline":
        """Build from a :class:`GeneratedDataset` (synthetic testbed)."""
        return cls(
            corpus=dataset.corpus,
            ontology=dataset.ontology,
            training_papers=dataset.training_papers,
            **kwargs,
        )

    @classmethod
    def from_directory(cls, data_dir, **kwargs) -> "Pipeline":
        """Build from a data directory using the standard file layout.

        Expects ``corpus.jsonl`` (one Paper per line), ``ontology.obo``,
        and ``training.json`` (``{term_id: [paper_id, ...]}``) -- the
        layout ``repro generate`` writes and the layout to use for real
        data.  Raises ``FileNotFoundError`` naming the first missing file.
        """
        import json
        from pathlib import Path

        from repro.corpus.io import read_corpus_jsonl
        from repro.ontology.obo import read_obo

        data = Path(data_dir)
        for name in ("corpus.jsonl", "ontology.obo", "training.json"):
            if not (data / name).exists():
                raise FileNotFoundError(
                    f"{data / name} not found (run `repro generate` or place "
                    f"your own data there)"
                )
        corpus = read_corpus_jsonl(data / "corpus.jsonl")
        ontology = read_obo(data / "ontology.obo")
        training_path = data / "training.json"
        with open(training_path, "r", encoding="utf-8") as handle:
            try:
                training = json.load(handle)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{training_path}: corrupt JSON ({error})"
                ) from error
        return cls(
            corpus=corpus, ontology=ontology, training_papers=training, **kwargs
        )

    # -- layer access ---------------------------------------------------------------

    @property
    def substrates(self) -> SubstrateStore:
        """The build layer owning every heavy substrate."""
        return self._store

    @property
    def serving_view(self) -> ServingView:
        """The current serve-layer snapshot (auto-refreshed when stale)."""
        return self._view()

    def _view(self) -> ServingView:
        view = self._serving
        if view.revision != self._store.revision:
            if self._drift_hold_revision == self._store.revision:
                # A drift-gated refresh refused this revision: keep
                # serving the pinned old view until an operator forces
                # the swap or the substrate moves again.
                return view
            try:
                return self.refresh(enforce_drift=True)
            except DriftExceeded:
                # The automatic staleness refresh hit the armed drift
                # gate; refresh() pinned the hold, so keep serving the
                # old view.  Only an explicit forced reload swaps now.
                return view
        return view

    def refresh(self, enforce_drift: bool = False) -> ServingView:
        """Swap in a fresh :class:`ServingView` (atomic reference swap).

        Drops memoised search engines and cached search results in one
        step; in-flight requests holding the previous view finish against
        its still-consistent engine/cache pair.  Called automatically
        whenever the substrate revision moves (artifact installation),
        and available for explicit use after hand-mutating pipeline
        state.

        When drift detection is configured (:meth:`configure_drift`),
        the pinned probe queries run against the *candidate* view before
        the swap and the comparison against the pinned baseline is
        exported as ``serving.reload.drift.*`` gauges.  With
        ``enforce_drift=True`` (the ``POST /admin/reload`` path) and a
        configured ``max_drift``, churn above the threshold raises
        :class:`~repro.obs.quality.DriftExceeded` *without* swapping --
        the old view keeps serving, and automatic staleness refreshes
        hold it pinned until a forced reload or another substrate
        change.
        """
        view = ServingView(
            self._store,
            self._store.revision,
            w_prestige=self.w_prestige,
            w_matching=self.w_matching,
            result_cache_size=self.result_cache_size,
        )
        candidate_rankings: Optional[Dict[str, Dict[str, tuple]]] = None
        if self._drift_config is not None and self._drift_baseline is not None:
            config = self._drift_config
            with span("serving.reload.drift", functions=len(config["functions"])):
                candidate_rankings = self._probe_rankings(view)
                report = evaluate_drift(
                    self._drift_baseline, candidate_rankings, k=config["k"]
                )
            self.last_drift_report = report
            export_drift_gauges(report)
            get_registry().counter("serving.reload.drift.checks").inc()
            max_drift = config["max_drift"]
            if (
                enforce_drift
                and max_drift is not None
                and report.exceeds(max_drift)
            ):
                get_registry().counter("serving.reload.drift.refused").inc()
                self._drift_hold_revision = self._store.revision
                raise DriftExceeded(report, max_drift)
        self._serving = view
        self._drift_hold_revision = None
        if candidate_rankings is not None:
            # The swap went through: the candidate's rankings become the
            # pinned baseline the *next* reload is compared against.
            self._drift_baseline = candidate_rankings
        get_registry().counter("serving.view.refresh").inc()
        return view

    # -- reload drift detection ------------------------------------------------------

    def configure_drift(
        self,
        probe_queries: Sequence[str],
        functions: Sequence[str] = ("text",),
        paper_set_name: str = "text",
        selection_strategy: str = "probe",
        k: int = 10,
        max_drift: Optional[float] = None,
    ) -> DriftReport:
        """Pin a probe-query set for reload drift detection.

        Runs every probe query through the *current* serving view for
        every listed score function and pins the rankings as the
        baseline future :meth:`refresh` calls are compared against
        (``serving.reload.drift.*`` gauges; per-function mean
        Jaccard@k / Kendall tau and result-set churn).  ``max_drift``
        in ``[0, 1]`` arms the gate: an *enforced* refresh whose worst
        per-query churn exceeds it is refused.  Returns the zero-drift
        report of the baseline against itself (shape documentation for
        callers).
        """
        from repro import scoring

        probes = [query for query in probe_queries if query and query.strip()]
        if not probes:
            raise ValueError("need at least one non-empty probe query")
        registered = scoring.function_names()
        unknown = [fn for fn in functions if fn not in registered]
        if unknown:
            raise ValueError(
                f"unknown probe function(s) {unknown}; registered: "
                f"{tuple(registered)}"
            )
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if max_drift is not None and not 0.0 <= max_drift <= 1.0:
            raise ValueError(
                f"max_drift must be in [0, 1], got {max_drift}"
            )
        self._drift_config = {
            "probe_queries": tuple(probes),
            "functions": tuple(dict.fromkeys(functions)),
            "paper_set_name": paper_set_name,
            "selection_strategy": selection_strategy,
            "k": k,
            "max_drift": max_drift,
        }
        self._drift_baseline = self._probe_rankings(self._view())
        self._drift_hold_revision = None
        report = evaluate_drift(self._drift_baseline, self._drift_baseline, k=k)
        self.last_drift_report = report
        return report

    def _probe_rankings(
        self, view: ServingView
    ) -> Dict[str, Dict[str, tuple]]:
        """``{function: {query: top-k ids}}`` straight off a view's engines.

        Bypasses the result cache and request telemetry on purpose:
        probe traffic is synthetic and must neither warm the serving
        cache nor count into live query analytics.
        """
        config = self._drift_config
        assert config is not None
        rankings: Dict[str, Dict[str, tuple]] = {}
        for function in config["functions"]:
            engine = view.engine(
                function, config["paper_set_name"],
                config["selection_strategy"],
            )
            rankings[function] = {
                query: tuple(
                    hit.paper_id
                    for hit in engine.search(query, limit=config["k"])
                )
                for query in config["probe_queries"]
            }
        return rankings

    def invalidate_serving_caches(self) -> None:
        """Drop memoised search engines and cached search results.

        Equivalent to :meth:`refresh`; kept as the historical spelling.
        """
        self.refresh()

    # -- incremental corpus updates ---------------------------------------------------

    def add_papers(self, papers: Sequence["Paper"]):
        """Add papers to the corpus, delta-updating every built substrate.

        The incremental counterpart of rebuilding the pipeline on an
        extended corpus: the index, vectors, citation graph, and context
        assignments update in place (see
        :meth:`~repro.serving.substrate.SubstrateStore.apply_delta`), and
        prestige is recomputed only for contexts whose paper sets
        changed.  Returns the
        :class:`~repro.serving.substrate.DeltaReport`.

        The substrate revision bumps once, so the next search observes a
        fresh serving view (stale result-cache entries and engine memos
        are unreachable); an armed drift gate applies exactly as it does
        for any other substrate change.
        """
        return self._store.apply_delta(added_papers=papers)

    def remove_papers(self, paper_ids: Sequence[str]):
        """Remove papers from the corpus, delta-updating built substrates.

        See :meth:`add_papers`; removals and additions can be combined in
        one atomic delta via ``substrates.apply_delta``.
        """
        return self._store.apply_delta(removed_ids=paper_ids)

    # -- raw inputs (delegated to the substrate store) ------------------------------

    @property
    def corpus(self) -> Corpus:
        return self._store.corpus

    @property
    def ontology(self) -> Ontology:
        return self._store.ontology

    @property
    def training_papers(self) -> Dict[str, List[str]]:
        return self._store.training_papers

    @property
    def text_similarity_threshold(self) -> float:
        return self._store.text_similarity_threshold

    @property
    def index_backend(self) -> str:
        """Name of the registered index backend this pipeline builds with."""
        return self._store.index_backend

    # -- shared substrates ----------------------------------------------------------

    @property
    def index(self) -> SearchBackend:
        return self._store.index

    @property
    def vectors(self) -> PaperVectorStore:
        return self._store.vectors

    @property
    def tokens(self) -> AnalyzedPaperCache:
        return self._store.tokens

    @property
    def citation_graph(self) -> CitationGraph:
        return self._store.citation_graph

    @property
    def keyword_engine(self) -> KeywordSearchEngine:
        """The PubMed-style baseline search engine."""
        return self._store.keyword_engine

    # -- context paper sets ---------------------------------------------------------

    @property
    def text_paper_set(self) -> ContextPaperSet:
        """The text-based context paper set (section 4, first builder)."""
        return self._store.text_paper_set

    @property
    def representatives(self) -> Dict[str, str]:
        """Representative paper per context of the text paper set."""
        return self._store.representatives

    @property
    def pattern_paper_set(self) -> ContextPaperSet:
        """The pattern-based context paper set (section 4, second builder)."""
        return self._store.pattern_paper_set

    @property
    def pattern_assigner(self) -> PatternContextAssigner:
        """The pattern assigner, running pattern construction on first use."""
        return self._store.pattern_assigner

    def paper_set(self, paper_set_name: str) -> ContextPaperSet:
        """The context paper set named by ``paper_set_name``."""
        return self._store.paper_set(paper_set_name)

    # -- backward-compatible private slots ------------------------------------------
    # Older call sites (and a few tests) reach for the pre-split private
    # attributes; these map reads to the store's raw slots (no lazy
    # build) and writes to the store's install methods (revision bump).

    @property
    def _index(self) -> Optional[SearchBackend]:
        return self._store._index

    @_index.setter
    def _index(self, value: Optional[SearchBackend]) -> None:
        self._store.install_index(value)

    @property
    def _vectors(self) -> Optional[PaperVectorStore]:
        return self._store._vectors

    @_vectors.setter
    def _vectors(self, value: Optional[PaperVectorStore]) -> None:
        self._store.install_vectors(value)

    @property
    def _tokens(self) -> Optional[AnalyzedPaperCache]:
        return self._store._tokens

    @_tokens.setter
    def _tokens(self, value: Optional[AnalyzedPaperCache]) -> None:
        self._store.install_tokens(value)

    @property
    def _graph(self) -> Optional[CitationGraph]:
        return self._store._graph

    @_graph.setter
    def _graph(self, value: Optional[CitationGraph]) -> None:
        self._store.install_citation_graph(value)

    @property
    def _text_paper_set(self) -> Optional[ContextPaperSet]:
        return self._store._text_paper_set

    @_text_paper_set.setter
    def _text_paper_set(self, value: Optional[ContextPaperSet]) -> None:
        self._store.install_text_paper_set(value)

    @property
    def _pattern_paper_set(self) -> Optional[ContextPaperSet]:
        return self._store._pattern_paper_set

    @_pattern_paper_set.setter
    def _pattern_paper_set(self, value: Optional[ContextPaperSet]) -> None:
        self._store.install_pattern_paper_set(value)

    @property
    def _representatives(self) -> Optional[Dict[str, str]]:
        return self._store._representatives

    @_representatives.setter
    def _representatives(self, value: Optional[Mapping[str, str]]) -> None:
        self._store.install_representatives(value)

    @property
    def _scores(self) -> Dict[str, PrestigeScores]:
        return self._store.scores

    @property
    def _result_cache(self) -> SearchResultCache:
        return self._view().result_cache

    # -- precomputed artefacts ------------------------------------------------------

    def load_precomputed(self, data_dir) -> int:
        """Load paper-set/score artefacts from a directory of JSON files.

        Any ``text_paper_set.json`` / ``pattern_paper_set.json`` /
        ``scores_<function>_<set>.json`` found is installed into the
        substrate store, short-circuiting the expensive builds.  Returns
        the number of artefacts loaded.  Missing files are fine (you can
        precompute a subset); corrupt files raise.  For full zero-rebuild
        hydration of every substrate use :meth:`open_workspace` instead.
        """
        from pathlib import Path

        from repro.core.io import read_context_paper_set, read_prestige_scores

        data = Path(data_dir)
        loaded = 0
        text_set = data / "text_paper_set.json"
        if text_set.exists():
            self._store.install_text_paper_set(
                read_context_paper_set(text_set, self.ontology)
            )
            loaded += 1
        pattern_set = data / "pattern_paper_set.json"
        if pattern_set.exists():
            self._store.install_pattern_paper_set(
                read_context_paper_set(pattern_set, self.ontology)
            )
            loaded += 1
        for scores_path in sorted(data.glob("scores_*_*.json")):
            # Filename is scores_<function>_<set>; the *function* may itself
            # contain underscores ("citation_xctx"), the paper-set name never
            # does -- so split the set off from the right, not the left.
            function, _, paper_set_name = scores_path.stem[len("scores_"):].rpartition(
                "_"
            )
            if not function or not paper_set_name:
                continue
            self._store.install_scores(
                f"{function}/{paper_set_name}", read_prestige_scores(scores_path)
            )
            loaded += 1
        if loaded:
            self.refresh()
        return loaded

    # -- workspace (artifact graph) -------------------------------------------------

    @classmethod
    def open_workspace(
        cls, data_dir, workspace_dir=None, strict: bool = True, **kwargs
    ) -> "Pipeline":
        """Open a data directory and hydrate every cache from its workspace.

        The generalisation of :meth:`load_precomputed`: a workspace built
        by ``repro build`` (see :mod:`repro.workspace`) holds *all* heavy
        substrates -- index, vectors, token cache, citation graph, paper
        sets, representatives, prestige scores -- so a fully-built
        workspace opens with zero rebuilds.

        ``workspace_dir`` defaults to ``<data_dir>/workspace``.  With
        ``strict=True`` any missing or stale artifact raises
        :class:`~repro.workspace.builder.StaleWorkspaceError`; with
        ``strict=False`` stale artifacts are skipped and rebuilt lazily
        on first use.
        """
        from pathlib import Path

        from repro.workspace import open_workspace as _open

        pipeline = cls.from_directory(data_dir, **kwargs)
        if workspace_dir is None:
            workspace_dir = Path(data_dir) / "workspace"
        _open(pipeline, workspace_dir, strict=strict)
        return pipeline

    def build_workspace(
        self, workspace_dir, only=None, force: bool = False
    ):
        """Build (incrementally) the on-disk workspace for this pipeline.

        Returns the :class:`~repro.workspace.builder.BuildReport` listing
        what was built and what was already fresh.
        """
        from repro.workspace import WorkspaceBuilder

        return WorkspaceBuilder(self, workspace_dir).build(only=only, force=force)

    # -- prestige scores ------------------------------------------------------------

    def prestige(self, function: str, paper_set_name: str = "text") -> PrestigeScores:
        """Memoised prestige scores.

        ``function`` is any score function registered with
        :mod:`repro.scoring` (``repro.scoring.function_names()`` lists
        them); ``paper_set_name`` selects the context paper set, matching
        section 4's two experiment arms.  Concurrent cold lookups of the
        same key compute the scores exactly once (single-flight).
        """
        return self._store.prestige(function, paper_set_name)

    # -- search ---------------------------------------------------------------------

    def search_engine(
        self,
        function: str = "text",
        paper_set_name: str = "text",
        selection_strategy: str = "probe",
    ) -> ContextSearchEngine:
        """A context search engine over the chosen paper set + prestige.

        Engines are memoised per (function, paper set, selection
        strategy) on the current serving view; see
        :meth:`~repro.serving.view.ServingView.engine`.
        """
        return self._view().engine(function, paper_set_name, selection_strategy)

    def search(
        self,
        query: str,
        function: str = "text",
        paper_set_name: str = "text",
        limit: Optional[int] = 10,
        threshold: float = 0.0,
        selection_strategy: str = "probe",
        use_cache: bool = True,
        contexts: Optional[Sequence[str]] = None,
    ) -> List[SearchHit]:
        """One-call context-based search with sensible defaults.

        Results are served from a bounded LRU cache when an identical
        request (same query, function, paper set, strategy, limit,
        threshold, explicit contexts) was answered since the last
        artifact change; pass ``use_cache=False`` to force a fresh
        evaluation.  ``contexts`` overrides automatic context selection
        (the HTTP service's ``context`` parameter); it participates in
        the cache key, so a restricted search never shares an entry
        with an automatically-selected one.

        Runs inside a request-scoped telemetry context (query id, root
        span, sampling, SLO event) -- see :mod:`repro.obs.request`.
        """
        view = self._view()
        cache = view.result_cache
        caching = use_cache and cache.enabled
        contexts = tuple(contexts) if contexts is not None else None
        key = self._cache_key(
            query, function, paper_set_name, selection_strategy, limit,
            threshold, contexts,
        )
        with get_telemetry().request(
            "search", query=query, function=function, paper_set=paper_set_name
        ) as request, span(
            "pipeline.search",
            query=query,
            function=function,
            paper_set=paper_set_name,
        ) as trace:
            if caching:
                cached = cache.get(key)
                request.cache(hit=cached is not None)
                if cached is not None:
                    trace.set(cache="hit", hits=len(cached))
                    # Hit count and top score land on the record either
                    # way -- the analytics aggregator must see cache
                    # hits too, or the zero-result rate would only
                    # reflect cache misses.
                    request.set(hits=len(cached))
                    if cached:
                        request.set(top_score=cached[0].relevancy)
                    return cached
            engine = view.engine(function, paper_set_name, selection_strategy)
            hits = engine.search(
                query, threshold=threshold, limit=limit, contexts=contexts
            )
            if caching:
                trace.set(cache="miss")
                cache.put(key, hits)
            request.set(hits=len(hits))
            if hits:
                request.set(top_score=hits[0].relevancy)
            return hits

    @staticmethod
    def _cache_key(
        query: str,
        function: str,
        paper_set_name: str,
        selection_strategy: str,
        limit: Optional[int],
        threshold: float,
        contexts: Optional[tuple] = None,
    ) -> tuple:
        """The full query identity every result-cache entry is keyed on.

        One constructor for both :meth:`search` and :meth:`search_many`,
        so a batch miss populates exactly the entry a later single-query
        call will look up (``contexts`` is part of the identity; batch
        search never restricts contexts, hence ``None``).
        """
        return (
            query, function, paper_set_name, selection_strategy, limit,
            threshold, contexts,
        )

    def search_many(
        self,
        queries: Sequence[str],
        function: str = "text",
        paper_set_name: str = "text",
        limit: Optional[int] = 10,
        threshold: float = 0.0,
        selection_strategy: str = "probe",
        max_workers: int = 4,
        use_cache: bool = True,
    ) -> List[List[SearchHit]]:
        """Batch search: answer independent queries concurrently.

        Cached queries are answered inline; the misses fan out through
        :meth:`ContextSearchEngine.search_many` on a thread pool.  The
        returned list is index-aligned with ``queries`` (deterministic
        merge), and each miss populates the result cache.  The whole
        batch is served from one :class:`ServingView` snapshot, so a
        concurrent :meth:`refresh` cannot tear it.
        """
        queries = list(queries)
        view = self._view()
        cache = view.result_cache
        caching = use_cache and cache.enabled
        with get_telemetry().request(
            "search_many",
            query=f"[batch of {len(queries)}]",
            queries=max(len(queries), 1),
            function=function,
            paper_set=paper_set_name,
        ) as request, span(
            "pipeline.search_many",
            queries=len(queries),
            function=function,
            paper_set=paper_set_name,
        ) as trace:
            results: List[Optional[List[SearchHit]]] = [None] * len(queries)
            misses: List[int] = []
            for position, query in enumerate(queries):
                key = self._cache_key(
                    query, function, paper_set_name, selection_strategy,
                    limit, threshold,
                )
                cached = cache.get(key) if caching else None
                if cached is not None:
                    results[position] = cached
                else:
                    misses.append(position)
            if caching:
                request.cache_batch(
                    hits=len(queries) - len(misses), lookups=len(queries)
                )
            trace.set(cached=len(queries) - len(misses))
            if misses:
                engine = view.engine(function, paper_set_name, selection_strategy)
                fresh = engine.search_many(
                    [queries[i] for i in misses],
                    max_workers=max_workers,
                    threshold=threshold,
                    limit=limit,
                )
                for position, hits in zip(misses, fresh):
                    results[position] = hits
                    if caching:
                        key = self._cache_key(
                            queries[position], function, paper_set_name,
                            selection_strategy, limit, threshold,
                        )
                        cache.put(key, hits)
            return [hits if hits is not None else [] for hits in results]

    def search_grouped(
        self,
        query: str,
        function: str = "text",
        paper_set_name: str = "text",
        max_contexts: int = 5,
        threshold: float = 0.0,
        per_context_limit: Optional[int] = 10,
        selection_strategy: str = "probe",
    ):
        """Search with results *grouped by context* (unmerged).

        Pipeline-level counterpart of
        :meth:`~repro.core.search.ContextSearchEngine.search_grouped`,
        resolved against the current serving view's memoised engine and
        wrapped in the same request-scoped telemetry as :meth:`search`
        (kind ``search_grouped``; grouped results are not result-cached
        -- the cache holds merged rankings only).
        """
        view = self._view()
        with get_telemetry().request(
            "search_grouped", query=query, function=function,
            paper_set=paper_set_name,
        ) as request, span(
            "pipeline.search_grouped",
            query=query,
            function=function,
            paper_set=paper_set_name,
        ):
            engine = view.engine(function, paper_set_name, selection_strategy)
            groups = engine.search_grouped(
                query,
                max_contexts=max_contexts,
                threshold=threshold,
                per_context_limit=per_context_limit,
            )
            request.set(groups=len(groups))
            return groups

    def explain(
        self,
        query: str,
        paper_id: str,
        function: str = "text",
        paper_set_name: str = "text",
        selection_strategy: str = "probe",
        max_contexts: int = 5,
    ) -> RankingExplanation:
        """Why (or why not) ``paper_id`` ranks for ``query``.

        Pipeline-level counterpart of
        :meth:`~repro.core.search.ContextSearchEngine.explain`, resolved
        against the current serving view's memoised engine and wrapped in
        the same request-scoped telemetry as :meth:`search` (kind
        ``explain``).
        """
        view = self._view()
        with get_telemetry().request(
            "explain", query=query, function=function, paper_set=paper_set_name
        ), span(
            "pipeline.explain",
            query=query,
            paper=paper_id,
            function=function,
        ):
            engine = view.engine(function, paper_set_name, selection_strategy)
            return engine.explain(query, paper_id, max_contexts=max_contexts)

    # -- experiment views -----------------------------------------------------------

    def experiment_paper_set(self, paper_set_name: str = "text") -> ContextPaperSet:
        """The paper set with small contexts excluded (experiment view)."""
        return self._store.paper_set(paper_set_name).filter_small(
            self.min_context_size
        )


def build_demo_pipeline(
    seed: int = 0,
    n_papers: int = 800,
    n_terms: int = 120,
    max_depth: int = 6,
    **pipeline_kwargs,
) -> Pipeline:
    """Generate a seeded synthetic dataset and wrap it in a Pipeline."""
    generator = CorpusGenerator(
        n_papers=n_papers,
        ontology_generator=OntologyGenerator(n_terms=n_terms, max_depth=max_depth),
    )
    dataset = generator.generate(seed=seed)
    return Pipeline.from_dataset(dataset, **pipeline_kwargs)
