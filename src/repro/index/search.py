"""The keyword search engine (PubMed-style baseline).

Two retrieval modes, matching the two roles the baseline plays in the
paper:

- :meth:`KeywordSearchEngine.search` -- ranked retrieval (TF-IDF by
  default, BM25 optionally) with section weighting and optional score
  threshold.  Scores are normalised to [0, 1] by the maximum achievable
  self-score of the query, so the "high threshold" seed step of
  AC-answer-set construction has an absolute scale to cut against.
- :meth:`KeywordSearchEngine.search_unranked` -- the PubMed behaviour the
  introduction criticises: every paper containing all query terms, listed
  in descending id/year order with *no* relevance score.

Quoted segments (``'"gene expression" yeast'``) are exact-phrase filters
when the engine runs over a :class:`~repro.index.positional.PositionalIndex`.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.corpus.corpus import Corpus
from repro.corpus.paper import Section
from repro.index.inverted import InvertedIndex
from repro.obs import get_registry

_PHRASE_RE = re.compile(r'"([^"]*)"')

#: Default per-section match weights: a title hit is worth more than a body
#: hit, mirroring standard digital-library ranking practice.
DEFAULT_SECTION_WEIGHTS: Mapping[Section, float] = {
    Section.TITLE: 3.0,
    Section.ABSTRACT: 2.0,
    Section.INDEX_TERMS: 2.0,
    Section.BODY: 1.0,
}


@dataclass(frozen=True)
class KeywordHit:
    """One ranked search result."""

    paper_id: str
    score: float
    matched_terms: int


class KeywordSearchEngine:
    """Ranked keyword search over an :class:`InvertedIndex`.

    Parameters
    ----------
    scoring:
        ``"tfidf"`` (sublinear tf x smoothed idf, the default used by the
        reproduction experiments) or ``"bm25"`` (Okapi BM25 with
        per-section length normalisation).
    k1, b:
        BM25 saturation and length-normalisation constants (ignored for
        TF-IDF).
    """

    def __init__(
        self,
        index: InvertedIndex,
        section_weights: Optional[Mapping[Section, float]] = None,
        scoring: str = "tfidf",
        k1: float = 1.5,
        b: float = 0.75,
    ) -> None:
        if scoring not in ("tfidf", "bm25"):
            raise ValueError(f"scoring must be 'tfidf' or 'bm25', got {scoring!r}")
        if k1 <= 0 or not 0.0 <= b <= 1.0:
            raise ValueError(f"need k1 > 0 and 0 <= b <= 1, got k1={k1}, b={b}")
        self.index = index
        self.section_weights = (
            dict(section_weights)
            if section_weights is not None
            else dict(DEFAULT_SECTION_WEIGHTS)
        )
        self.scoring = scoring
        self.k1 = k1
        self.b = b
        self._section_lengths: Optional[Dict[Tuple[str, Section], int]] = None
        self._avg_section_length: Optional[Dict[Section, float]] = None
        self._lengths_cache_hits = 0

    # -- ranked retrieval ----------------------------------------------------------

    def search(
        self,
        query: str,
        limit: Optional[int] = None,
        threshold: float = 0.0,
        require_all_terms: bool = False,
    ) -> List[KeywordHit]:
        """Ranked TF-IDF retrieval.

        Parameters
        ----------
        query:
            Free-text query; analysed with the index's analyzer.
        limit:
            Return at most this many hits (None = all).
        threshold:
            Drop hits scoring below this value (scores are in [0, 1]).
        require_all_terms:
            If True, keep only papers matching *every* distinct query term
            (boolean AND semantics, like PubMed).
        """
        distinct_terms, phrases = self._parse_query(query)
        if not distinct_terms:
            return []
        scores: Dict[str, float] = {}
        matches: Dict[str, set] = {}
        postings_scanned = 0
        for term in distinct_terms:
            idf = self._idf(term)
            if idf == 0.0:
                continue
            for posting in self.index.postings(term):
                postings_scanned += 1
                weight = self.section_weights.get(posting.section, 1.0)
                tf_component = self._tf_component(posting)
                scores[posting.paper_id] = scores.get(posting.paper_id, 0.0) + (
                    weight * tf_component * idf
                )
                matches.setdefault(posting.paper_id, set()).add(term)
        registry = get_registry()
        registry.counter("index.keyword.queries").inc()
        registry.counter("index.keyword.postings_scanned").inc(postings_scanned)
        if self._lengths_cache_hits:
            registry.gauge("index.keyword.lengths_cache_hits").set(
                self._lengths_cache_hits
            )

        allowed = self._phrase_filter(phrases)
        max_score = self._max_possible_score(distinct_terms)
        hits = []
        for paper_id, raw in scores.items():
            if require_all_terms and len(matches[paper_id]) < len(distinct_terms):
                continue
            if allowed is not None and paper_id not in allowed:
                continue
            normalised = raw / max_score if max_score > 0 else 0.0
            normalised = min(normalised, 1.0)
            if normalised >= threshold:
                hits.append(
                    KeywordHit(
                        paper_id=paper_id,
                        score=normalised,
                        matched_terms=len(matches[paper_id]),
                    )
                )
        hits.sort(key=lambda hit: (-hit.score, hit.paper_id))
        if limit is not None:
            hits = hits[:limit]
        return hits

    def _parse_query(self, query: str) -> Tuple[List[str], List[List[str]]]:
        """Split a query into distinct scoring terms + quoted phrase filters."""
        phrases = []
        for raw_phrase in _PHRASE_RE.findall(query):
            terms = self.index.analyzer.analyze(raw_phrase)
            if terms:
                phrases.append(terms)
        unquoted = _PHRASE_RE.sub(" ", query)
        terms = self.index.analyzer.analyze(unquoted)
        for phrase in phrases:
            terms.extend(phrase)  # phrase words still contribute to scoring
        return list(dict.fromkeys(terms)), phrases

    def _phrase_filter(self, phrases: List[List[str]]) -> Optional[set]:
        """Papers containing every quoted phrase (None = no phrase filter)."""
        if not phrases:
            return None
        papers_containing_phrase = getattr(
            self.index, "papers_containing_phrase", None
        )
        if papers_containing_phrase is None:
            raise TypeError(
                "quoted-phrase queries need a PositionalIndex "
                "(repro.index.positional); this engine's index has no "
                "positional data"
            )
        allowed: Optional[set] = None
        for phrase in phrases:
            containing = set(papers_containing_phrase(phrase))
            allowed = containing if allowed is None else allowed & containing
            if not allowed:
                break
        return allowed if allowed is not None else set()

    # -- scoring components ----------------------------------------------------------

    def _tf_component(self, posting) -> float:
        """Per-posting term-frequency factor under the active scheme."""
        if self.scoring == "tfidf":
            return 1.0 + math.log(posting.term_frequency)
        # BM25 with per-section length normalisation.
        lengths, averages = self._ensure_lengths()
        length = lengths.get((posting.paper_id, posting.section), 0)
        average = averages.get(posting.section, 0.0)
        denominator_norm = 1.0 - self.b + (
            self.b * (length / average) if average > 0 else 0.0
        )
        tf = posting.term_frequency
        return tf * (self.k1 + 1.0) / (tf + self.k1 * denominator_norm)

    def _ensure_lengths(self):
        # Invalidate when the index's paper count changed (papers added or
        # removed since the lengths were computed).
        if (
            self._section_lengths is not None
            and getattr(self, "_lengths_n_papers", None) != self.index.n_papers
        ):
            self._section_lengths = None
            self._avg_section_length = None
        if self._section_lengths is not None:
            # Plain int, not a registry counter: this runs once per posting
            # under BM25.  search() flushes it to a gauge per query.
            self._lengths_cache_hits += 1
        if self._section_lengths is None:
            lengths: Dict[Tuple[str, Section], int] = {}
            totals: Dict[Section, int] = {}
            counts: Dict[Section, int] = {}
            for term in self.index.vocabulary():
                for posting in self.index.postings(term):
                    key = (posting.paper_id, posting.section)
                    lengths[key] = lengths.get(key, 0) + posting.term_frequency
            for (_, section), length in lengths.items():
                totals[section] = totals.get(section, 0) + length
                counts[section] = counts.get(section, 0) + 1
            self._section_lengths = lengths
            self._avg_section_length = {
                section: totals[section] / counts[section] for section in totals
            }
            self._lengths_n_papers = self.index.n_papers
        return self._section_lengths, self._avg_section_length

    def match_score(self, query: str, paper_id: str) -> float:
        """Text-matching score of one (query, paper) pair in [0, 1].

        This is the ``text_matching_score(p, q)`` component of the
        relevancy formula in section 3.
        """
        distinct_terms, _phrases = self._parse_query(query)
        if not distinct_terms:
            return 0.0
        raw = 0.0
        for term in distinct_terms:
            idf = self._idf(term)
            if idf == 0.0:
                continue
            for section, weight in self.section_weights.items():
                tf = self.index.term_frequency(paper_id, term, section)
                if tf > 0:
                    posting = _ScoringPosting(paper_id, section, tf)
                    raw += weight * self._tf_component(posting) * idf
        max_score = self._max_possible_score(distinct_terms)
        if max_score == 0.0:
            return 0.0
        return min(raw / max_score, 1.0)

    # -- PubMed-style unranked retrieval --------------------------------------------

    def search_unranked(self, query: str, corpus: Corpus) -> List[str]:
        """Boolean-AND retrieval listed by descending (year, id) -- no scores.

        Reproduces the PubMed behaviour described in the introduction:
        "PubMed simply lists search results in descending order of their
        PubMed ids or publication years."
        """
        query_terms = list(dict.fromkeys(self.index.analyzer.analyze(query)))
        if not query_terms:
            return []
        candidate_sets = [set(self.index.papers_containing(t)) for t in query_terms]
        if not candidate_sets or any(not s for s in candidate_sets):
            return []
        result = set.intersection(*candidate_sets)
        return sorted(
            result,
            key=lambda pid: (-corpus.paper(pid).year, pid),
            reverse=False,
        )

    # -- internals --------------------------------------------------------------------

    def _idf(self, term: str) -> float:
        df = self.index.document_frequency(term)
        if df == 0:
            return 0.0
        if self.scoring == "bm25":
            n = self.index.n_papers
            return math.log(1.0 + (n - df + 0.5) / (df + 0.5))
        return math.log((1.0 + self.index.n_papers) / (1.0 + df)) + 1.0

    def _max_possible_score(self, distinct_terms: Sequence[str]) -> float:
        """Upper bound: every term matched in every section at a saturating tf.

        Using a shared bound for all papers keeps scores comparable across
        papers and bounded by 1 without per-paper renormalisation.  For
        TF-IDF a tf of e^2 (~7 occurrences) is treated as saturation; for
        BM25 the tf component saturates at k1 + 1 by construction.
        """
        total_weight = sum(self.section_weights.values())
        saturating_tf = (self.k1 + 1.0) if self.scoring == "bm25" else 3.0
        return sum(
            total_weight * saturating_tf * self._idf(term)
            for term in distinct_terms
            if self._idf(term) > 0.0
        )


@dataclass(frozen=True)
class _ScoringPosting:
    """Minimal posting stand-in for scoring one (paper, section, tf) cell."""

    paper_id: str
    section: Section
    term_frequency: int
