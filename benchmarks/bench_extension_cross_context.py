"""Extension A4 -- section 7's weighted cross-context relationships.

The paper proposes keeping citation edges that cross the context boundary
at graded weights (within > hierarchically-related > unrelated) instead
of dropping them.  This bench compares the strict within-context citation
function against the extension on:

- separability (cross-context edges densify sparse subgraphs, so more
  unique scores should appear);
- precision at the figure-5.1 operating point.
"""

from conftest import write_result

from repro.core.extensions import CrossContextCitationPrestige, CrossContextWeights
from repro.core.search import ContextSearchEngine
from repro.eval.experiments import SeparabilityExperiment
from repro.eval.metrics import precision

THRESHOLD = 0.3


def test_extension_cross_context_weights(
    benchmark, pipeline, queries, precision_experiment, results_dir
):
    paper_set = pipeline.experiment_paper_set("pattern")

    def run():
        baseline_scores = pipeline.prestige("citation", "pattern")
        extension = CrossContextCitationPrestige(
            pipeline.citation_graph,
            pipeline.ontology,
            pipeline.pattern_paper_set,
            weights=CrossContextWeights(within=1.0, related=0.6, unrelated=0.2),
        )
        extension_scores = extension.score_all(pipeline.pattern_paper_set)
        separability = {
            "baseline": SeparabilityExperiment(paper_set).run(baseline_scores),
            "extension": SeparabilityExperiment(paper_set).run(extension_scores),
        }
        precisions = {}
        for name, scores in (
            ("baseline", baseline_scores),
            ("extension", extension_scores),
        ):
            engine = ContextSearchEngine(
                pipeline.ontology,
                pipeline.pattern_paper_set,
                scores,
                pipeline.keyword_engine,
                w_prestige=pipeline.w_prestige,
                w_matching=pipeline.w_matching,
            )
            values = []
            for query in queries:
                answers = precision_experiment.answer_set(query)
                hits = engine.search(query)
                surviving = [h.paper_id for h in hits if h.relevancy >= THRESHOLD]
                value = precision(surviving, answers)
                values.append(0.0 if value is None else value)
            precisions[name] = sum(values) / len(values)
        return separability, precisions

    separability, precisions = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "separability (mean SD, lower is better):",
        f"  within-context only:   {separability['baseline'].mean_sd():.2f}",
        f"  graded cross-context:  {separability['extension'].mean_sd():.2f}",
        f"precision at t={THRESHOLD}:",
        f"  within-context only:   {precisions['baseline']:.3f}",
        f"  graded cross-context:  {precisions['extension']:.3f}",
    ]
    write_result(results_dir, "extension_cross_context", "\n".join(lines))

    # Section 7 is future work: the paper publishes no expected numbers,
    # so this bench reports the comparison and asserts only structural
    # sanity -- the extension scores at least as many contexts and its
    # distributions stay in the valid SD range.
    assert len(separability["extension"].sd_by_context) >= len(
        separability["baseline"].sd_by_context
    )
    for result in separability.values():
        for sd in result.sd_by_context.values():
            assert 0.0 <= sd <= 30.0 + 1e-9
    for value in precisions.values():
        assert 0.0 <= value <= 1.0
