"""Tests for the artifact-graph workspace (repro.workspace).

Covers the registry/topology, fingerprint-driven freshness, incremental
builds (--only / --force semantics), the manifest schema, typed codecs,
and the zero-rebuild guarantee of ``Pipeline.open_workspace`` -- the
latter asserted through the ``workspace.load.*`` / ``workspace.build.*``
observability counters, not just timing.
"""

import json
import shutil

import pytest

from repro.corpus import write_corpus_jsonl
from repro.datagen import CorpusGenerator, OntologyGenerator
from repro.obs.metrics import reset_registry
from repro.ontology import write_obo
from repro.pipeline import Pipeline
from repro.workspace import (
    ARTIFACTS,
    StaleWorkspaceError,
    WorkspaceBuilder,
    artifact_names,
    open_workspace,
    read_manifest,
    topological_order,
    validate_manifest_payload,
    workspace_status,
)

SEED = 11


@pytest.fixture(scope="module")
def data_dir(tmp_path_factory):
    """A small on-disk data directory (corpus + ontology + training)."""
    directory = tmp_path_factory.mktemp("workspace-data")
    generator = CorpusGenerator(
        n_papers=120,
        ontology_generator=OntologyGenerator(n_terms=30, max_depth=5),
    )
    dataset = generator.generate(seed=SEED)
    write_corpus_jsonl(dataset.corpus, directory / "corpus.jsonl")
    write_obo(dataset.ontology, directory / "ontology.obo")
    with open(directory / "training.json", "w", encoding="utf-8") as handle:
        json.dump(dataset.training_papers, handle)
    return directory


@pytest.fixture(scope="module")
def built(data_dir):
    """A pipeline with a fully built workspace next to its data."""
    pipeline = Pipeline.from_directory(data_dir)
    workspace = data_dir / "workspace"
    report = pipeline.build_workspace(workspace)
    return pipeline, workspace, report


class TestRegistry:
    def test_topological_order_covers_registry(self):
        order = topological_order()
        assert sorted(order) == sorted(artifact_names())
        seen = set()
        for name in order:
            assert set(ARTIFACTS[name].deps) <= seen
            seen.add(name)

    def test_unknown_artifact_rejected(self):
        with pytest.raises(KeyError, match="unknown artifact"):
            topological_order(["nope"])

    def test_target_closure_includes_dependencies(self):
        order = topological_order(["scores_citation_text"])
        assert order[-1] == "scores_citation_text"
        assert "text_paper_set" in order
        assert "index" in order
        # Unrelated artifacts stay out of the closure.
        assert "pattern_paper_set" not in order

    def test_filenames_unique(self):
        filenames = [a.filename for a in ARTIFACTS.values()]
        assert len(filenames) == len(set(filenames))


class TestBuild:
    def test_builds_every_artifact(self, built):
        _, workspace, report = built
        assert sorted(report.built) == sorted(artifact_names())
        for artifact in ARTIFACTS.values():
            assert (workspace / artifact.filename).exists()

    def test_manifest_written_and_valid(self, built):
        _, workspace, _ = built
        payload = read_manifest(workspace)
        assert payload is not None
        validate_manifest_payload(payload)
        assert sorted(payload["artifacts"]) == sorted(artifact_names())
        entry = payload["artifacts"]["text_paper_set"]
        assert entry["deps"] == ["index", "vectors"]
        assert entry["size_bytes"] > 0

    def test_rebuild_is_noop(self, built):
        pipeline, workspace, _ = built
        report = pipeline.build_workspace(workspace)
        assert report.is_noop()
        assert report.built == []
        assert sorted(report.fresh) == sorted(artifact_names())

    def test_status_all_fresh(self, built):
        pipeline, workspace, _ = built
        states = {s.name: s.state for s in workspace_status(pipeline, workspace)}
        assert set(states.values()) == {"fresh"}

    def test_report_table_renders(self, built):
        _, _, report = built
        table = report.format_table()
        assert "index" in table
        assert f"of {len(ARTIFACTS)} artifacts" in table


class TestOpenWorkspace:
    def test_zero_rebuild_hydration(self, built, data_dir):
        """Acceptance: a fully-built workspace opens with zero rebuilds."""
        registry = reset_registry()
        pipeline = Pipeline.open_workspace(data_dir)
        counters = registry.snapshot()["counters"]
        assert counters.get("workspace.load.artifacts") == len(ARTIFACTS)
        assert counters.get("workspace.build.artifacts", 0) == 0
        assert counters.get("workspace.load.stale", 0) == 0
        # Search touches paper sets + scores; nothing recomputes.
        pipeline.search("metabolic process", limit=5)
        counters = registry.snapshot()["counters"]
        assert counters.get("pipeline.prestige.computed", 0) == 0

    def test_search_results_identical(self, built, data_dir):
        source, _, _ = built
        hydrated = Pipeline.open_workspace(data_dir)
        for function, paper_set in (("text", "text"), ("citation", "pattern")):
            expected = source.search(
                "metabolic process", function=function, paper_set_name=paper_set
            )
            actual = hydrated.search(
                "metabolic process", function=function, paper_set_name=paper_set
            )
            assert [(h.paper_id, h.relevancy) for h in actual] == [
                (h.paper_id, h.relevancy) for h in expected
            ]

    def test_strict_open_of_unbuilt_raises(self, data_dir, tmp_path):
        pipeline = Pipeline.from_directory(data_dir)
        with pytest.raises(StaleWorkspaceError, match="not fully built"):
            open_workspace(pipeline, tmp_path / "empty")

    def test_non_strict_open_skips_missing(self, built, data_dir, tmp_path):
        _, workspace, _ = built
        partial = tmp_path / "partial"
        shutil.copytree(workspace, partial)
        (partial / ARTIFACTS["citation_graph"].filename).unlink()
        pipeline = Pipeline.from_directory(data_dir)
        with pytest.raises(StaleWorkspaceError, match="citation_graph"):
            open_workspace(pipeline, partial)
        pipeline = Pipeline.from_directory(data_dir)
        loaded = open_workspace(pipeline, partial, strict=False)
        assert loaded == len(ARTIFACTS) - 1
        assert pipeline._graph is None  # left to lazy rebuild


class TestIncremental:
    def test_search_weights_do_not_invalidate(self, built, data_dir):
        _, workspace, _ = built
        pipeline = Pipeline.from_directory(data_dir, w_prestige=0.9, w_matching=0.1)
        states = {s.name: s.state for s in workspace_status(pipeline, workspace)}
        assert set(states.values()) == {"fresh"}

    def test_threshold_change_stales_exactly_the_dependents(self, built, data_dir):
        _, workspace, _ = built
        pipeline = Pipeline.from_directory(data_dir, text_similarity_threshold=0.2)
        stale = {
            s.name
            for s in workspace_status(pipeline, workspace)
            if s.state != "fresh"
        }
        assert stale == {
            "text_paper_set",
            "representatives",
            "scores_text_text",
            "scores_citation_text",
            "scores_combined_text",
        }

    def test_incremental_rebuild_after_config_change(self, built, data_dir, tmp_path):
        _, workspace, _ = built
        copy = tmp_path / "ws"
        shutil.copytree(workspace, copy)
        pipeline = Pipeline.from_directory(data_dir, text_similarity_threshold=0.2)
        report = pipeline.build_workspace(copy)
        assert sorted(report.built) == [
            "representatives",
            "scores_citation_text",
            "scores_combined_text",
            "scores_text_text",
            "text_paper_set",
        ]
        # The second run converges to a no-op.
        assert Pipeline.from_directory(
            data_dir, text_similarity_threshold=0.2
        ).build_workspace(copy).is_noop()

    def test_only_builds_requested_closure(self, data_dir, tmp_path):
        pipeline = Pipeline.from_directory(data_dir)
        workspace = tmp_path / "ws"
        report = pipeline.build_workspace(workspace, only=["citation_graph"])
        assert report.built == ["citation_graph"]
        states = {s.name: s.state for s in workspace_status(pipeline, workspace)}
        assert states["citation_graph"] == "fresh"
        assert states["index"] == "missing"

    def test_force_rebuilds_only_the_requested(self, built, data_dir, tmp_path):
        _, workspace, _ = built
        copy = tmp_path / "ws"
        shutil.copytree(workspace, copy)
        pipeline = Pipeline.from_directory(data_dir)
        report = pipeline.build_workspace(
            copy, only=["scores_citation_text"], force=True
        )
        assert report.built == ["scores_citation_text"]

    def test_deleted_file_detected_and_rebuilt(self, built, data_dir, tmp_path):
        _, workspace, _ = built
        copy = tmp_path / "ws"
        shutil.copytree(workspace, copy)
        (copy / "representatives.json").unlink()
        pipeline = Pipeline.from_directory(data_dir)
        statuses = {s.name: s for s in workspace_status(pipeline, copy)}
        assert statuses["representatives"].state == "missing"
        report = pipeline.build_workspace(copy)
        assert report.built == ["representatives"]


class TestManifest:
    def test_corrupt_manifest_raises_with_path(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{nope", encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt JSON") as excinfo:
            read_manifest(tmp_path)
        assert "manifest.json" in str(excinfo.value)

    def test_wrong_format_tag_rejected(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"format": "other/v9"}), encoding="utf-8"
        )
        with pytest.raises(ValueError, match="expected format"):
            read_manifest(tmp_path)

    def test_missing_entry_field_rejected(self):
        payload = {
            "format": "repro/workspace-manifest/v1",
            "inputs": {"corpus": "a", "ontology": "b", "training": "c"},
            "artifacts": {"index": {"file": "index.json"}},
        }
        with pytest.raises(ValueError, match="missing 'fingerprint'"):
            validate_manifest_payload(payload)

    def test_missing_manifest_is_none(self, tmp_path):
        assert read_manifest(tmp_path) is None


class TestFingerprints:
    def test_stable_across_pipelines(self, data_dir):
        from repro.workspace import artifact_fingerprints

        a = artifact_fingerprints(Pipeline.from_directory(data_dir))
        b = artifact_fingerprints(Pipeline.from_directory(data_dir))
        assert a == b

    def test_config_only_reaches_dependents(self, data_dir):
        from repro.workspace import artifact_fingerprints

        base = artifact_fingerprints(Pipeline.from_directory(data_dir))
        changed = artifact_fingerprints(
            Pipeline.from_directory(data_dir, text_similarity_threshold=0.3)
        )
        differing = {name for name in base if base[name] != changed[name]}
        assert differing == {
            "text_paper_set",
            "representatives",
            "scores_text_text",
            "scores_citation_text",
            "scores_combined_text",
        }


class TestCodecs:
    """Round-trips of the typed save/load pairs on the tiny testbed."""

    def test_inverted_index_round_trip(self, tiny_corpus, tmp_path):
        from repro.core.io import read_inverted_index, write_inverted_index
        from repro.index.inverted import InvertedIndex

        index = InvertedIndex().index_corpus(tiny_corpus)
        write_inverted_index(index, tmp_path / "index.json")
        restored = read_inverted_index(tmp_path / "index.json")
        assert restored.to_payload() == index.to_payload()
        assert restored.n_papers == index.n_papers
        for term in ("glucose", "kinase", "quasar"):
            assert restored.document_frequency(term) == index.document_frequency(
                term
            )

    def test_vector_store_round_trip(self, tiny_corpus, tmp_path):
        from repro.core.io import read_vector_store, write_vector_store
        from repro.core.vectors import PaperVectorStore
        from repro.index.inverted import InvertedIndex

        index = InvertedIndex().index_corpus(tiny_corpus)
        vectors = PaperVectorStore(tiny_corpus, index.analyzer)
        vectors.warm()
        write_vector_store(vectors, tmp_path / "vectors.json")
        restored = read_vector_store(
            tmp_path / "vectors.json", tiny_corpus, index.analyzer
        )
        for paper_id in tiny_corpus.paper_ids():
            assert restored.full_vector(paper_id).weights == pytest.approx(
                vectors.full_vector(paper_id).weights
            )

    def test_token_cache_round_trip(self, tiny_corpus, tmp_path):
        from repro.core.io import read_token_cache, write_token_cache
        from repro.core.patterns import AnalyzedPaperCache
        from repro.corpus.paper import Section
        from repro.index.inverted import InvertedIndex

        index = InvertedIndex().index_corpus(tiny_corpus)
        tokens = AnalyzedPaperCache(tiny_corpus, index.analyzer)
        tokens.warm()
        write_token_cache(tokens, tmp_path / "tokens.json")
        restored = read_token_cache(
            tmp_path / "tokens.json", tiny_corpus, index.analyzer
        )
        for paper_id in tiny_corpus.paper_ids():
            assert restored.tokens(paper_id, Section.ABSTRACT) == tokens.tokens(
                paper_id, Section.ABSTRACT
            )

    def test_citation_graph_round_trip(self, tiny_corpus, tmp_path):
        from repro.citations.graph import CitationGraph
        from repro.core.io import read_citation_graph, write_citation_graph

        graph = CitationGraph.from_corpus(tiny_corpus)
        write_citation_graph(graph, tmp_path / "graph.json")
        restored = read_citation_graph(tmp_path / "graph.json")
        assert restored.to_payload() == graph.to_payload()

    def test_representatives_round_trip(self, tmp_path):
        from repro.core.io import read_representatives, write_representatives

        representatives = {"met": "M1", "sig": "S1"}
        write_representatives(representatives, tmp_path / "reps.json")
        assert read_representatives(tmp_path / "reps.json") == representatives

    def test_corrupt_artifact_names_path(self, tmp_path):
        from repro.core.io import read_inverted_index

        path = tmp_path / "index.json"
        path.write_text("{broken", encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt JSON") as excinfo:
            read_inverted_index(path)
        assert str(path) in str(excinfo.value)

    def test_mismatched_format_tag_names_both_tags(self, tmp_path):
        from repro.core.io import read_citation_graph, write_representatives

        path = tmp_path / "artifact.json"
        write_representatives({"a": "b"}, path)
        with pytest.raises(ValueError, match="expected format"):
            read_citation_graph(path)
