"""The HTTP search service: schemas, admission, parity, reload races.

Everything here runs against a live :class:`SearchService` on an
ephemeral port, hit with urllib -- the same client surface an external
caller sees.  The load-bearing properties:

- every search endpoint's JSON is produced by the same serializers the
  tests use to encode ``Pipeline`` results, so an HTTP ranking is
  byte-identical to the in-process call;
- bad parameters are 400s with the offending parameter named, never
  500s;
- a saturated admission controller sheds with 429 + ``Retry-After``
  while the observability routes keep answering;
- ``GET /search`` racing ``POST /admin/reload`` never observes a torn
  view (the PR-7 swap-race property, extended over HTTP);
- the batch sequential short-circuit records the same telemetry as the
  threaded path, and batch cache entries are the entries single-query
  search looks up.
"""

import json
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import configure_telemetry, get_registry, reset_registry
from repro.pipeline import build_demo_pipeline
from repro.serving.service import (
    AdmissionController,
    AdmissionRejected,
    SearchService,
    explanation_to_dict,
    group_to_dict,
    hit_to_dict,
)

QUERIES = (
    "gene expression regulation",
    "protein binding activity",
    "cell membrane transport",
    "dna repair mechanism",
)


@pytest.fixture(scope="module")
def pipeline():
    return build_demo_pipeline(seed=7, n_papers=120, n_terms=30)


@pytest.fixture
def service(pipeline):
    live = SearchService(pipeline, port=0).start()
    yield live
    live.stop()


def _request(service, path, method="GET", **params):
    """(status, headers, body text); HTTP errors are returned, not raised."""
    url = f"http://{service.host}:{service.port}{path}"
    if params:
        url += "?" + urllib.parse.urlencode(params, doseq=True)
    request = urllib.request.Request(url, method=method)
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, response.headers, response.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.headers, error.read().decode()


class TestSearchEndpoint:
    def test_search_matches_pipeline_byte_for_byte(self, pipeline, service):
        for query in QUERIES:
            status, headers, body = _request(
                service, "/search", q=query, top_k=5, score_function="text"
            )
            assert status == 200
            assert headers["Content-Type"] == "application/json"
            payload = json.loads(body)
            expected = [
                hit_to_dict(hit)
                for hit in pipeline.search(query, function="text", limit=5)
            ]
            assert payload["hits"] == expected
            assert payload["count"] == len(expected)
            # Canonical encoding: sorted keys, one trailing newline --
            # re-serializing the parsed payload reproduces the body.
            assert body == json.dumps(payload, sort_keys=True) + "\n"

    def test_search_response_schema(self, service):
        _, _, body = _request(service, "/search", q=QUERIES[0])
        payload = json.loads(body)
        assert set(payload) == {
            "query", "score_function", "paper_set", "selection_strategy",
            "top_k", "threshold", "contexts", "count", "hits",
        }
        for hit in payload["hits"]:
            assert set(hit) == {
                "paper_id", "context_id", "relevancy", "prestige", "matching",
            }

    def test_context_restriction_param(self, pipeline, service):
        hits = pipeline.search(QUERIES[0], limit=10)
        context_id = hits[0].context_id
        expected = [
            hit_to_dict(hit)
            for hit in pipeline.search(
                QUERIES[0], limit=10, contexts=[context_id]
            )
        ]
        _, _, body = _request(
            service, "/search", q=QUERIES[0], top_k=10, context=context_id
        )
        payload = json.loads(body)
        assert payload["contexts"] == [context_id]
        assert payload["hits"] == expected
        assert all(hit["context_id"] == context_id for hit in payload["hits"])

    def test_nondefault_ranking_params_passed_through(self, pipeline, service):
        _, _, body = _request(
            service, "/search", q=QUERIES[1], score_function="citation",
            paper_set="pattern", selection_strategy="name", top_k=3,
            threshold=0.01,
        )
        payload = json.loads(body)
        expected = [
            hit_to_dict(hit)
            for hit in pipeline.search(
                QUERIES[1], function="citation", paper_set_name="pattern",
                selection_strategy="name", limit=3, threshold=0.01,
            )
        ]
        assert payload["hits"] == expected


class TestGroupedAndExplain:
    def test_search_grouped_matches_pipeline(self, pipeline, service):
        status, _, body = _request(
            service, "/search_grouped", q=QUERIES[0], top_k=4, max_contexts=3
        )
        assert status == 200
        payload = json.loads(body)
        expected = [
            group_to_dict(group)
            for group in pipeline.search_grouped(
                QUERIES[0], per_context_limit=4, max_contexts=3
            )
        ]
        assert payload["groups"] == expected
        assert payload["count"] == len(expected)
        for group in payload["groups"]:
            assert set(group) == {"context_id", "selection_strength", "hits"}

    def test_explain_matches_pipeline(self, pipeline, service):
        paper_id = pipeline.search(QUERIES[0], limit=1)[0].paper_id
        status, _, body = _request(
            service, "/explain", q=QUERIES[0], paper_id=paper_id
        )
        assert status == 200
        payload = json.loads(body)
        expected = explanation_to_dict(
            pipeline.explain(QUERIES[0], paper_id)
        )
        expected["score_function"] = "text"
        expected["paper_set"] = "text"
        assert payload == expected
        assert payload["retrievable"] is True


class TestBadRequests:
    @pytest.mark.parametrize(
        "path, params, fragment",
        [
            ("/search", {}, "'q'"),
            ("/search", {"q": "x", "score_function": "nope"}, "score_function"),
            ("/search", {"q": "x", "paper_set": "nope"}, "paper_set"),
            ("/search", {"q": "x", "selection_strategy": "nope"},
             "selection_strategy"),
            ("/search", {"q": "x", "top_k": "many"}, "top_k"),
            ("/search", {"q": "x", "top_k": "0"}, "top_k"),
            ("/search", {"q": "x", "threshold": "high"}, "threshold"),
            ("/search", {"q": ["a", "b"]}, "2 times"),
            ("/search_grouped", {"q": "x", "max_contexts": "-1"},
             "max_contexts"),
            ("/explain", {"q": "x"}, "paper_id"),
            ("/explain", {"q": "x", "paper_id": "NOPE-404"}, "NOPE-404"),
        ],
    )
    def test_bad_params_are_400s(self, service, path, params, fragment):
        status, _, body = _request(service, path, **params)
        assert status == 400
        payload = json.loads(body)
        assert fragment in payload["error"]

    def test_bad_request_counter_increments(self, service):
        before = get_registry().counter("serving.http.bad_request").value
        _request(service, "/search")
        assert (
            get_registry().counter("serving.http.bad_request").value
            == before + 1
        )

    def test_unknown_route_is_404(self, service):
        status, _, body = _request(service, "/rank")
        assert status == 404
        assert "no route" in json.loads(body)["error"]

    def test_post_to_search_is_404(self, service):
        status, _, _ = _request(service, "/search", method="POST", q="x")
        assert status == 404


class TestAdmission:
    def test_saturated_service_sheds_with_429(self, pipeline, monkeypatch):
        service = SearchService(
            pipeline, port=0, max_in_flight=1, queue_depth=0,
            retry_after_s=2.0,
        ).start()
        entered = threading.Event()
        release = threading.Event()

        def slow_search(query, **kwargs):
            entered.set()
            assert release.wait(timeout=10)
            return []

        monkeypatch.setattr(pipeline, "search", slow_search)
        try:
            with ThreadPoolExecutor(max_workers=1) as pool:
                occupier = pool.submit(
                    _request, service, "/search", q="slow one"
                )
                assert entered.wait(timeout=10)
                # The only in-flight slot is held and the queue is zero
                # deep: the next search must shed immediately.
                status, headers, body = _request(service, "/search", q="shed me")
                assert status == 429
                assert headers["Retry-After"] == "2"
                payload = json.loads(body)
                assert payload["retry_after_s"] == 2.0
                assert "saturated" in payload["error"]
                # Observability routes stay exempt under saturation.
                health_status, _, health_body = _request(service, "/health")
                assert health_status == 200
                assert json.loads(health_body)["in_flight"] == 1
                shed = get_registry().counter("serving.http.shed").value
                assert shed == 1
                release.set()
                status, _, _ = occupier.result(timeout=10)
                assert status == 200
        finally:
            release.set()
            service.stop()
        assert service.admission.in_flight == 0

    def test_queue_absorbs_burst_without_shedding(self, pipeline):
        service = SearchService(
            pipeline, port=0, max_in_flight=2, queue_depth=8
        ).start()
        try:
            with ThreadPoolExecutor(max_workers=6) as pool:
                statuses = list(
                    pool.map(
                        lambda q: _request(service, "/search", q=q)[0],
                        [QUERIES[i % len(QUERIES)] for i in range(12)],
                    )
                )
            assert statuses == [200] * 12
            assert get_registry().counter("serving.http.shed").value == 0
        finally:
            service.stop()

    def test_admission_controller_validation(self):
        with pytest.raises(ValueError, match="max_in_flight"):
            AdmissionController(max_in_flight=0)
        with pytest.raises(ValueError, match="queue_depth"):
            AdmissionController(queue_depth=-1)
        with pytest.raises(ValueError, match="retry_after_s"):
            AdmissionController(retry_after_s=0.0)

    def test_admission_controller_counts(self):
        admission = AdmissionController(max_in_flight=1, queue_depth=0)
        with admission.admit():
            assert admission.in_flight == 1
            with pytest.raises(AdmissionRejected):
                with admission.admit():
                    pass
        assert admission.in_flight == 0
        # The shed released nothing it did not hold: a new admit works.
        with admission.admit():
            pass
        registry = get_registry()
        assert registry.counter("serving.http.accepted").value == 2
        assert registry.counter("serving.http.shed").value == 1


class TestReload:
    def test_reload_swaps_the_view(self, pipeline, service):
        view_before = pipeline.serving_view
        status, _, body = _request(service, "/admin/reload", method="POST")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "reloaded"
        assert payload["view_revision"] == pipeline.serving_view.revision
        assert pipeline.serving_view is not view_before

    def test_reload_via_get_is_404(self, service):
        status, _, _ = _request(service, "/admin/reload")
        assert status == 404

    def test_search_racing_reload_stays_byte_identical(
        self, pipeline, service
    ):
        baseline = {
            query: [
                hit_to_dict(hit)
                for hit in pipeline.search(query, limit=10)
            ]
            for query in QUERIES
        }
        stop = threading.Event()
        reloads = 0

        def reloader():
            nonlocal reloads
            while not stop.is_set():
                status, _, _ = _request(
                    service, "/admin/reload", method="POST"
                )
                assert status == 200
                reloads += 1

        def searcher(worker: int):
            mismatches = []
            for i in range(10):
                query = QUERIES[(worker + i) % len(QUERIES)]
                status, _, body = _request(
                    service, "/search", q=query, top_k=10
                )
                if status != 200:
                    mismatches.append((query, status))
                    continue
                if json.loads(body)["hits"] != baseline[query]:
                    mismatches.append((query, "torn ranking"))
            return mismatches

        reload_thread = threading.Thread(target=reloader, daemon=True)
        reload_thread.start()
        try:
            with ThreadPoolExecutor(max_workers=4) as pool:
                all_mismatches = list(pool.map(searcher, range(4)))
        finally:
            stop.set()
            reload_thread.join(timeout=10)
        assert all(not m for m in all_mismatches), all_mismatches
        assert reloads > 0  # the reloader actually raced the searchers


class TestReadiness:
    def test_ready_reports_live_view(self, pipeline, service):
        status, _, body = _request(service, "/ready")
        payload = json.loads(body)
        assert status == 200
        assert payload["ready"] is True
        assert payload["view_present"] is True
        assert payload["view_revision"] == pipeline.serving_view.revision
        assert payload["substrate_revision"] == pipeline.substrates.revision
        assert payload["max_age_s"] is None
        assert payload["view_age_s"] >= 0.0

    def test_stale_view_fails_readiness(self, pipeline):
        live = SearchService(pipeline, port=0, ready_max_age_s=0.0).start()
        try:
            time.sleep(0.05)  # any nonzero age exceeds a 0.0 budget
            status, _, body = _request(live, "/ready")
        finally:
            live.stop()
        payload = json.loads(body)
        assert status == 503
        assert payload["ready"] is False
        assert payload["view_present"] is True

    def test_fresh_view_passes_generous_age_budget(self, pipeline):
        pipeline.refresh()
        live = SearchService(pipeline, port=0, ready_max_age_s=3600.0).start()
        try:
            status, _, body = _request(live, "/ready")
        finally:
            live.stop()
        assert status == 200
        assert json.loads(body)["max_age_s"] == 3600.0


class TestAnalyticsEndpoint:
    def test_analytics_reports_live_traffic_and_shadow_agreement(
        self, pipeline
    ):
        # Telemetry must be on before start(): the analytics listener
        # registers against the telemetry instance live at start time.
        configure_telemetry(enabled=True, sample_rate=0.0, seed=3)
        live = SearchService(
            pipeline, port=0,
            shadow_functions=["citation"], shadow_sample_rate=1.0,
            shadow_seed=3,
        ).start()
        try:
            assert _request(live, "/search", q=QUERIES[0])[0] == 200
            assert _request(live, "/search", q="zzzz qqqq vvvv")[0] == 200
            assert live.shadow.drain(timeout_s=30.0)
            status, _, body = _request(live, "/analytics")
        finally:
            live.stop()
        payload = json.loads(body)
        assert status == 200
        analytics = payload["analytics"]
        assert analytics["queries"] == 2
        assert analytics["zero_results"] == 1
        assert analytics["zero_result_rate"] == 0.5
        agreement = payload["shadow"]["agreement"]["citation"]
        assert agreement["samples"] >= 1
        assert 0.0 <= agreement["mean_jaccard"] <= 1.0
        assert payload["drift"] is None  # drift never configured here

    def test_analytics_without_shadow_or_traffic(self, service):
        status, _, body = _request(service, "/analytics")
        payload = json.loads(body)
        assert status == 200
        assert payload["shadow"] is None
        assert payload["analytics"]["queries"] == 0


class TestDriftGatedReload:
    PROBES = (QUERIES[0], QUERIES[3])

    @staticmethod
    def _invert_text_scores(target, query):
        from repro.core.scores import PrestigeScores

        store = target._store
        engine = target.serving_view.engine("text", "text", "probe")
        top_ids = {hit.paper_id for hit in engine.search(query, limit=5)}
        old = store.scores["text/text"]
        perturbed = {
            ctx: {
                pid: (0.001 if pid in top_ids else value + 10.0)
                for pid, value in old.of(ctx).items()
            }
            for ctx in old.context_ids()
        }
        store.install_scores("text/text", PrestigeScores("text", perturbed))

    def test_reload_without_drift_config_has_no_drift_key(self, service):
        status, _, body = _request(service, "/admin/reload", method="POST")
        assert status == 200
        assert "drift" not in json.loads(body)

    def test_drift_gated_reload_flow_over_http(self):
        # Own pipeline: this test mutates the substrate store.
        target = build_demo_pipeline(seed=7, n_papers=120, n_terms=30)
        live = SearchService(target, port=0).start()
        try:
            target.configure_drift(
                self.PROBES, functions=["text"], max_drift=0.2
            )

            # Identical substrate: reload swaps and reports zero drift.
            status, _, body = _request(live, "/admin/reload", method="POST")
            payload = json.loads(body)
            assert status == 200
            assert payload["status"] == "reloaded"
            assert payload["drift"]["max_churn"] == 0.0

            # Injected ranking regression: refused with the report.
            self._invert_text_scores(target, self.PROBES[0])
            view_before = target._serving
            status, _, body = _request(live, "/admin/reload", method="POST")
            payload = json.loads(body)
            assert status == 409
            assert payload["status"] == "refused"
            assert payload["max_drift"] == 0.2
            assert payload["drift"]["max_churn"] > 0.2
            assert target._serving is view_before

            # The pinned old view keeps serving searches.
            status, _, _ = _request(live, "/search", q=self.PROBES[0])
            assert status == 200
            assert target._serving is view_before

            # force=1 pushes the swap through.
            status, _, body = _request(
                live, "/admin/reload", method="POST", force=1
            )
            payload = json.loads(body)
            assert status == 200
            assert payload["status"] == "reloaded"
            assert target._serving is not view_before
        finally:
            live.stop()


class TestMetricsExposition:
    def test_fresh_view_scrape_skips_unobserved_hit_rate(
        self, pipeline, service
    ):
        pipeline.refresh()  # fresh result cache: zero lookups so far
        _, _, body = _request(service, "/metrics")
        # The hit-rate gauge has no meaningful sample before the first
        # lookup; a fresh scrape must omit it rather than export NaN.
        assert "search_cache_hit_rate" not in body
        assert "serving_view_revision" in body
        _request(service, "/search", q=QUERIES[0])  # miss
        _request(service, "/search", q=QUERIES[0])  # hit
        _, _, body = _request(service, "/metrics")
        assert "search_cache_hit_rate 0.5" in body

    def test_endpoint_latency_and_request_counters(self, service):
        _request(service, "/search", q=QUERIES[0])
        _request(service, "/search_grouped", q=QUERIES[0])
        _request(service, "/explain", q=QUERIES[0])  # 400: missing paper_id
        registry = get_registry()
        assert registry.counter("serving.http.requests").value == 3
        for endpoint in ("search", "search_grouped", "explain"):
            assert (
                registry.histogram(f"serving.http.{endpoint}.latency").count
                == 1
            )

    def test_health_reports_view_and_admission_state(self, pipeline, service):
        _, _, body = _request(service, "/health")
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["view_revision"] == pipeline.serving_view.revision
        assert payload["papers"] == len(pipeline.corpus)
        assert payload["in_flight"] == 0


class TestBatchParity:
    """The sequential short-circuit is an optimisation, not a different path."""

    def _run_batch(self, pipeline, max_workers):
        reset_registry()
        telemetry = configure_telemetry(enabled=True, sample_rate=0.0)
        pipeline.refresh()  # fresh cache: identical miss pattern per run
        results = pipeline.search_many(
            list(QUERIES), limit=10, max_workers=max_workers
        )
        counters = dict(get_registry().snapshot()["counters"])
        events = [
            (e.kind, e.queries, e.error, e.cache_hits, e.cache_lookups)
            for e in telemetry.events()
        ]
        histogram_counts = {
            name: summary["count"]
            for name, summary in
            get_registry().snapshot()["histograms"].items()
        }
        return results, counters, events, histogram_counts

    def test_sequential_short_circuit_records_identical_telemetry(
        self, pipeline
    ):
        threaded = self._run_batch(pipeline, max_workers=4)
        sequential = self._run_batch(pipeline, max_workers=1)
        assert sequential[0] == threaded[0]  # rankings
        assert sequential[1] == threaded[1]  # every counter, same value
        assert sequential[2] == threaded[2]  # SLO event stream
        assert sequential[3] == threaded[3]  # histogram observation counts

    def test_single_query_batch_records_identical_telemetry(self, pipeline):
        """len(queries) == 1 short-circuits even with max_workers > 1."""
        def run(max_workers):
            reset_registry()
            configure_telemetry(enabled=True, sample_rate=0.0)
            pipeline.refresh()
            results = pipeline.search_many(
                [QUERIES[0]], limit=10, max_workers=max_workers
            )
            return results, dict(get_registry().snapshot()["counters"])

        assert run(max_workers=4) == run(max_workers=1)

    def test_batch_cache_entries_served_to_single_query_search(
        self, pipeline
    ):
        """search_many and search share one cache-key shape."""
        pipeline.refresh()
        registry = get_registry()
        pipeline.search_many(list(QUERIES), limit=10)
        hits_before = registry.counter("search.cache.hit").value
        misses_before = registry.counter("search.cache.miss").value
        batch_results = pipeline.search_many(list(QUERIES), limit=10)
        single_results = [
            pipeline.search(query, limit=10) for query in QUERIES
        ]
        assert single_results == batch_results
        assert (
            registry.counter("search.cache.hit").value
            == hits_before + 2 * len(QUERIES)
        )
        assert registry.counter("search.cache.miss").value == misses_before
