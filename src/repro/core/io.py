"""Persistence for expensive pipeline artefacts.

Context paper sets and prestige scores take minutes to build on large
corpora; these helpers serialise them to JSON so a deployment computes
them once (the paper's "query independent pre-processing steps") and
serves searches from disk thereafter.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from typing import Dict, Optional

from repro.citations.graph import CitationGraph
from repro.core.context import Context, ContextPaperSet
from repro.core.patterns import AnalyzedPaperCache
from repro.core.scores.base import PrestigeScores
from repro.core.vectors import PaperVectorStore
from repro.corpus.corpus import Corpus
from repro.ontology.ontology import Ontology
from repro.text.analyze import Analyzer

PathLike = Union[str, Path]

_PAPER_SET_FORMAT = "repro/context-paper-set/v1"
_SCORES_FORMAT = "repro/prestige-scores/v1"
_INDEX_FORMAT = "repro/inverted-index/v1"
_VECTORS_FORMAT = "repro/vector-store/v1"
_TOKENS_FORMAT = "repro/token-cache/v1"
_GRAPH_FORMAT = "repro/citation-graph/v1"
_REPRESENTATIVES_FORMAT = "repro/representatives/v1"


def write_tagged_json(payload: dict, path: PathLike, format_tag: str) -> None:
    """Write ``payload`` with a ``format`` tag for load-time validation."""
    payload = {"format": format_tag, **payload}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def read_tagged_json(path: PathLike, format_tag: str) -> dict:
    """Read a JSON artefact, refusing mismatched or corrupt files.

    Both failure modes raise ``ValueError`` naming the offending path, so
    a broken workspace points at the file to rebuild.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}: corrupt JSON ({error})") from error
    if not isinstance(payload, dict) or payload.get("format") != format_tag:
        found = payload.get("format") if isinstance(payload, dict) else None
        raise ValueError(
            f"{path}: expected format {format_tag!r}, found {found!r}"
        )
    return payload


def write_context_paper_set(paper_set: ContextPaperSet, path: PathLike) -> None:
    """Serialise a context paper set (ontology is *not* embedded)."""
    payload = {
        "format": _PAPER_SET_FORMAT,
        "contexts": [
            {
                "term_id": context.term_id,
                "paper_ids": list(context.paper_ids),
                "training_paper_ids": list(context.training_paper_ids),
                "inherited_from": context.inherited_from,
                "decay": context.decay,
            }
            for context in paper_set
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def read_context_paper_set(path: PathLike, ontology: Ontology) -> ContextPaperSet:
    """Load a context paper set against the ontology it was built on.

    Terms missing from ``ontology`` raise (a paper set only makes sense
    with its ontology; silently dropping contexts would skew experiments).
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != _PAPER_SET_FORMAT:
        raise ValueError(
            f"{path}: not a context paper set file "
            f"(format={payload.get('format')!r})"
        )
    contexts = [
        Context(
            term_id=raw["term_id"],
            paper_ids=tuple(raw["paper_ids"]),
            training_paper_ids=tuple(raw.get("training_paper_ids", ())),
            inherited_from=raw.get("inherited_from"),
            decay=float(raw.get("decay", 1.0)),
        )
        for raw in payload["contexts"]
    ]
    return ContextPaperSet(ontology, contexts)


def write_prestige_scores(scores: PrestigeScores, path: PathLike) -> None:
    """Serialise prestige scores (function name + per-context maps).

    ``pre_propagation`` rides along when the scores carry it, so a
    workspace-hydrated pipeline keeps the incremental per-context patch
    path that in-memory scores get (see ``PrestigeScores``).  Files
    written before the field existed load with ``pre_propagation=None``
    and fall back to full lazy recompute on delta.
    """
    payload = {
        "format": _SCORES_FORMAT,
        "function": scores.function_name,
        "by_context": {
            context_id: scores.of(context_id)
            for context_id in scores.context_ids()
        },
    }
    if scores.pre_propagation is not None:
        payload["pre_propagation"] = {
            context_id: dict(context_scores)
            for context_id, context_scores in scores.pre_propagation.items()
        }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def read_prestige_scores(path: PathLike) -> PrestigeScores:
    """Load prestige scores written by :func:`write_prestige_scores`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != _SCORES_FORMAT:
        raise ValueError(
            f"{path}: not a prestige-scores file "
            f"(format={payload.get('format')!r})"
        )
    by_context = {
        context_id: {pid: float(v) for pid, v in scores.items()}
        for context_id, scores in payload["by_context"].items()
    }
    pre_propagation = None
    if "pre_propagation" in payload:
        pre_propagation = {
            context_id: {pid: float(v) for pid, v in scores.items()}
            for context_id, scores in payload["pre_propagation"].items()
        }
    return PrestigeScores(
        payload["function"], by_context, pre_propagation=pre_propagation
    )


# -- workspace substrate codecs ---------------------------------------------------
#
# Each heavy pipeline substrate gets a symmetric (write_*, read_*) pair
# over its in-place ``to_payload``/``from_payload`` snapshot.  Readers
# take the live objects the artefact cannot embed (corpus, analyzer) --
# the same convention as :func:`read_context_paper_set`'s ontology.


def write_inverted_index(index, path: PathLike) -> None:
    """Persist an index via the memory backend's codec (compat shim).

    New code should go through :func:`repro.index.backends.save_index`,
    which dispatches on the backend that produced the object.
    """
    from repro.index import backends  # lazy: backends' codecs import this module

    backends.get("memory").save(index, path)


def read_inverted_index(path: PathLike, analyzer: Optional[Analyzer] = None):
    """Load a memory-backend index artifact (compat shim).

    New code should go through :func:`repro.index.backends.open_index`,
    which sniffs the format tag and dispatches to the owning backend.
    """
    from repro.index import backends  # lazy: backends' codecs import this module

    return backends.get("memory").load(path, analyzer=analyzer)


def write_vector_store(vectors: PaperVectorStore, path: PathLike) -> None:
    write_tagged_json(vectors.to_payload(), path, _VECTORS_FORMAT)


def read_vector_store(
    path: PathLike, corpus: Corpus, analyzer: Optional[Analyzer] = None
) -> PaperVectorStore:
    payload = read_tagged_json(path, _VECTORS_FORMAT)
    return PaperVectorStore.from_payload(payload, corpus, analyzer=analyzer)


def write_token_cache(tokens: AnalyzedPaperCache, path: PathLike) -> None:
    write_tagged_json(tokens.to_payload(), path, _TOKENS_FORMAT)


def read_token_cache(
    path: PathLike, corpus: Corpus, analyzer: Optional[Analyzer] = None
) -> AnalyzedPaperCache:
    payload = read_tagged_json(path, _TOKENS_FORMAT)
    return AnalyzedPaperCache.from_payload(payload, corpus, analyzer=analyzer)


def write_citation_graph(graph: CitationGraph, path: PathLike) -> None:
    write_tagged_json(graph.to_payload(), path, _GRAPH_FORMAT)


def read_citation_graph(path: PathLike) -> CitationGraph:
    payload = read_tagged_json(path, _GRAPH_FORMAT)
    return CitationGraph.from_payload(payload)


def write_representatives(representatives: Dict[str, str], path: PathLike) -> None:
    write_tagged_json({"by_context": dict(representatives)}, path,
                      _REPRESENTATIVES_FORMAT)


def read_representatives(path: PathLike) -> Dict[str, str]:
    payload = read_tagged_json(path, _REPRESENTATIVES_FORMAT)
    return dict(payload["by_context"])
