"""Fast regression guards for the paper's structural findings.

The full shape reproduction lives in benchmarks/; these tests pin the
most stable orderings at small scale so a regression shows up in the
ordinary test run, not only when someone runs the benches.
"""

import pytest

from repro.eval.experiments import SeparabilityExperiment
from repro.pipeline import Pipeline


@pytest.fixture(scope="module")
def pipeline(small_dataset):
    return Pipeline.from_dataset(small_dataset, min_context_size=5)


class TestStructuralShapes:
    def test_citation_separability_worst_on_text_set(self, pipeline):
        paper_set = pipeline.experiment_paper_set("text")
        experiment = SeparabilityExperiment(paper_set)
        text_sd = experiment.run(pipeline.prestige("text", "text")).mean_sd()
        citation_sd = experiment.run(
            pipeline.prestige("citation", "text")
        ).mean_sd()
        assert citation_sd > text_sd

    def test_citation_separability_worst_on_pattern_set(self, pipeline):
        paper_set = pipeline.experiment_paper_set("pattern")
        experiment = SeparabilityExperiment(paper_set)
        pattern_sd = experiment.run(
            pipeline.prestige("pattern", "pattern")
        ).mean_sd()
        citation_sd = experiment.run(
            pipeline.prestige("citation", "pattern")
        ).mean_sd()
        assert citation_sd > pattern_sd

    def test_citation_scores_degenerate_in_sparse_contexts(self, pipeline):
        """Most contexts' citation scores collapse to few unique values --
        the mechanism behind every citation finding in the paper."""
        scores = pipeline.prestige("citation", "pattern")
        degenerate = 0
        total = 0
        for context in pipeline.experiment_paper_set("pattern"):
            context_scores = scores.of(context.term_id)
            if len(context_scores) < 5:
                continue
            total += 1
            unique = len(set(context_scores.values()))
            if unique <= len(context_scores) / 2:
                degenerate += 1
        assert total > 0
        assert degenerate / total > 0.5

    def test_text_scores_not_degenerate(self, pipeline):
        scores = pipeline.prestige("text", "text")
        healthy = 0
        total = 0
        for context in pipeline.experiment_paper_set("text"):
            context_scores = scores.of(context.term_id)
            if len(context_scores) < 5:
                continue
            total += 1
            unique = len(set(context_scores.values()))
            if unique > len(context_scores) * 0.8:
                healthy += 1
        assert total > 0
        assert healthy / total > 0.8

    def test_context_output_smaller_than_keyword_output(
        self, pipeline, small_dataset
    ):
        """The [2] output-reduction claim holds directionally."""
        from repro.datagen.queries import generate_queries

        queries = [
            w.query for w in generate_queries(small_dataset, n_queries=6, seed=3)
        ]
        engine = pipeline.search_engine("text", "text")
        reductions = []
        for query in queries:
            keyword_n = len(pipeline.keyword_engine.search(query))
            if keyword_n == 0:
                continue
            context_n = len(engine.search(query))
            reductions.append(1 - context_n / keyword_n)
        assert reductions
        assert sum(reductions) / len(reductions) > 0.0
