#!/usr/bin/env python
"""The real-data path: MEDLINE XML + GO OBO + GAF -> searchable pipeline.

Uses inline miniature fixtures standing in for the files you would
download (an E-utilities XML export, go-basic.obo, a GOA GAF file), so
the example runs offline -- swap the paths for your downloads and the
code is identical.

Run:  python examples/real_data_ingest.py
"""

import io

from repro.corpus.validate import validate_corpus
from repro.ingest import read_gaf_training_map, read_medline_xml
from repro.ontology import read_obo
from repro.pipeline import Pipeline

MEDLINE_XML = """<?xml version="1.0"?>
<PubmedArticleSet>
  <PubmedArticle><MedlineCitation><PMID>11111</PMID>
    <Article>
      <Journal><JournalIssue><PubDate><Year>2001</Year></PubDate></JournalIssue></Journal>
      <ArticleTitle>DNA repair pathways in mammalian cells</ArticleTitle>
      <Abstract><AbstractText>We characterize dna repair mechanisms and
      their regulation after damage induction.</AbstractText></Abstract>
      <AuthorList><Author><LastName>Rivera</LastName><Initials>M</Initials></Author></AuthorList>
    </Article>
    <MeshHeadingList><MeshHeading><DescriptorName>DNA Repair</DescriptorName></MeshHeading></MeshHeadingList>
  </MedlineCitation></PubmedArticle>
  <PubmedArticle><MedlineCitation><PMID>22222</PMID>
    <Article>
      <Journal><JournalIssue><PubDate><Year>2003</Year></PubDate></JournalIssue></Journal>
      <ArticleTitle>Regulation of dna repair by kinase signaling</ArticleTitle>
      <Abstract><AbstractText>Kinase cascades modulate dna repair activity
      in response to stress signals.</AbstractText></Abstract>
      <AuthorList><Author><LastName>Chen</LastName><Initials>L</Initials></Author></AuthorList>
    </Article>
  </MedlineCitation>
  <PubmedData><ReferenceList><Reference>
    <ArticleIdList><ArticleId IdType="pubmed">11111</ArticleId></ArticleIdList>
  </Reference></ReferenceList></PubmedData></PubmedArticle>
</PubmedArticleSet>"""

GO_OBO = """format-version: 1.2

[Term]
id: GO:0008150
name: biological process

[Term]
id: GO:0006281
name: dna repair
is_a: GO:0008150
"""

GOA_GAF = """!gaf-version: 2.2
UniProtKB\tP0001\tRAD51\t\tGO:0006281\tPMID:11111\tIDA\t\tP\t\t\tprotein\ttaxon:9606\t20200101\tUniProt\t\t
UniProtKB\tP0002\tATM\t\tGO:0006281\tPMID:22222\tIMP\t\tP\t\t\tprotein\ttaxon:9606\t20200101\tUniProt\t\t
"""


def main() -> None:
    # 1. Parse the three public artefacts.
    corpus = read_medline_xml(io.StringIO(MEDLINE_XML))
    ontology = read_obo(io.StringIO(GO_OBO))
    training = read_gaf_training_map(
        io.StringIO(GOA_GAF), restrict_to_paper_ids=corpus.paper_ids()
    )
    print(f"corpus: {len(corpus)} papers | ontology: {len(ontology)} terms")
    print(f"training map: {training}")

    # 2. Lint before committing compute to it.
    report = validate_corpus(corpus)
    print(f"\nvalidation: {report.summary().splitlines()[0]}")

    # 3. Build the pipeline and search.
    pipeline = Pipeline(
        corpus=corpus,
        ontology=ontology,
        training_papers=training,
        min_context_size=1,
    )
    print("\nsearch 'dna repair kinase':")
    for hit in pipeline.search("dna repair kinase"):
        paper = pipeline.corpus.paper(hit.paper_id)
        print(f"  {hit.relevancy:.3f}  [{hit.paper_id}] {paper.title}")

    # 4. Explain a ranking decision.
    engine = pipeline.search_engine()
    explanation = engine.explain("dna repair kinase", "PMID:11111")
    print("\n" + explanation.format())


if __name__ == "__main__":
    main()
