"""Build/serve layer split (see ``docs/architecture.md``).

:class:`~repro.serving.substrate.SubstrateStore` is the mutable build
layer (index, vectors, graph, paper sets, scores, revision counter);
:class:`~repro.serving.view.ServingView` is the immutable-per-refresh
serve layer (memoised engines + LRU result cache) the pipeline swaps
atomically; :class:`~repro.serving.service.SearchService` puts the view
behind HTTP search endpoints with admission control (``repro serve``).
"""

from repro.serving.analytics import QueryAnalytics, ShadowScorer
from repro.serving.service import (
    AdmissionController,
    AdmissionRejected,
    SearchService,
)
from repro.serving.substrate import SubstrateStore
from repro.serving.view import SearchResultCache, ServingView

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "QueryAnalytics",
    "SearchService",
    "ShadowScorer",
    "SubstrateStore",
    "SearchResultCache",
    "ServingView",
]
