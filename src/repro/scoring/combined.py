"""The ``combined`` rank-fusion score function -- the plugin seam, proven.

A weighted blend of citation and text prestige, in the spirit of the
related citation-context ranking work (C-Rank, Doslu & Bingol): citation
links carry endorsement, text similarity carries topicality, and a
convex combination hedges each one's failure mode (sparse in-context
subgraphs for citation, representative drift for text).

This module is deliberately *only* a registration: it builds entirely on
the public plugin API (:class:`~repro.scoring.registry.ScoreFunctionSpec`
+ :func:`~repro.scoring.registry.register`) and touches no core module.
Deleting the registration below removes the function from the CLI, the
workspace, and every evaluation sweep -- which is the proof that adding
a ranking function is a one-file change.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.core.context import Context
from repro.core.scores import (
    CitationPrestige,
    NORMALIZERS,
    PrestigeScoreFunction,
    TextPrestige,
)
from repro.scoring.registry import ScoreFunctionSpec, register


class CombinedPrestige(PrestigeScoreFunction):
    """Weighted blend of component prestige functions.

    Each component's raw per-context scores are put through that
    component's *own* normaliser first (PageRank keeps its teleport
    floor, text similarity stays raw), so the blend mixes commensurable
    [0, 1] values; the weighted sum is then used as-is.  Hierarchy
    max-propagation happens once, at the blend level, via the inherited
    :meth:`~repro.core.scores.base.PrestigeScoreFunction.score_all`.
    """

    name = "combined"
    #: Components are normalised individually; the convex blend of [0, 1]
    #: values needs no second rescale.
    normalization = "none"

    def __init__(
        self, components: Sequence[Tuple[PrestigeScoreFunction, float]]
    ) -> None:
        if not components:
            raise ValueError("combined prestige needs at least one component")
        total = sum(weight for _, weight in components)
        if total <= 0.0:
            raise ValueError("component weights must sum to a positive value")
        # Store convex weights so the blend stays in [0, 1].
        self.components = tuple(
            (scorer, weight / total) for scorer, weight in components
        )

    def score_context(self, context: Context) -> Dict[str, float]:
        blended: Dict[str, float] = {}
        for scorer, weight in self.components:
            raw = scorer.score_context(context)
            if not raw:
                continue
            normalised = NORMALIZERS[scorer.normalization](raw)
            for paper_id, value in normalised.items():
                blended[paper_id] = blended.get(paper_id, 0.0) + weight * value
        return blended


#: The blend weights: citation endorsement vs text topicality.
CITATION_WEIGHT = 0.5
TEXT_WEIGHT = 0.5


def _combined_factory(substrates) -> CombinedPrestige:
    return CombinedPrestige(
        [
            (CitationPrestige(substrates.citation_graph), CITATION_WEIGHT),
            (
                TextPrestige(
                    substrates.corpus,
                    substrates.vectors,
                    substrates.citation_graph,
                    substrates.representatives,
                ),
                TEXT_WEIGHT,
            ),
        ]
    )


register(
    ScoreFunctionSpec(
        name="combined",
        factory=_combined_factory,
        # The union of the citation and text substrate chains.
        substrates=("citation_graph", "vectors", "representatives"),
        paper_sets=("text",),
        description="rank fusion: convex blend of citation and text prestige",
    )
)
