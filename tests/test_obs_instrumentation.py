"""End-to-end instrumentation: a real search emits the documented spans.

Drives one context-based search through :class:`Pipeline` under an
active tracer and asserts the span chain (selection -> scoring -> merge)
and the counter invariant (hits = scored - dropped - deduped).  Also
covers the PageRank convergence metrics and the CLI round trip
(``search --trace-out/--metrics-out`` then ``obs report``).
"""

import json

import pytest

from repro.cli import main
from repro.obs import get_registry, reset_registry, start_tracing, stop_tracing
from repro.pipeline import build_demo_pipeline


@pytest.fixture(autouse=True)
def fresh_obs_state():
    stop_tracing()
    reset_registry()
    yield
    stop_tracing()
    reset_registry()


def _find_spans(node, name, found):
    if node.name == name:
        found.append(node)
    for child in node.children:
        _find_spans(child, name, found)


def _spans_named(tracer, name):
    found = []
    for root in tracer.roots:
        _find_spans(root, name, found)
    return found


class TestPipelineSearchSpans:
    @pytest.fixture(scope="class")
    def pipeline(self):
        return build_demo_pipeline(seed=3, n_papers=200, n_terms=40)

    def test_search_emits_selection_scoring_merge_chain(self, pipeline):
        tracer = start_tracing()
        hits = pipeline.search("gene expression regulation", limit=10)
        stop_tracing()

        (run,) = _spans_named(tracer, "search.run")
        child_names = [child.name for child in run.children]
        assert child_names == ["search.select", "search.score", "search.merge"]

        select, score, merge = run.children
        assert select.attrs["probed"] >= select.attrs["selected"] > 0
        assert score.attrs["contexts"] == select.attrs["selected"]
        assert merge.attrs["hits"] == len(hits)
        for node in (run, select, score, merge):
            assert node.duration > 0.0

        # Per-score-function scoring ran under the pipeline (first search
        # on a fresh pipeline computes prestige lazily).
        assert _spans_named(tracer, "scores.text.score_all")

    def test_counters_match_returned_hits(self, pipeline):
        registry = reset_registry()
        hits = pipeline.search("gene expression regulation", limit=None)
        counters = registry.snapshot()["counters"]
        assert counters["search.context.queries"] == 1
        scored = counters["search.context.papers_scored"]
        dropped = counters["search.context.papers_dropped"]
        deduped = counters["search.context.merge_deduped"]
        assert scored > 0
        assert len(hits) == scored - dropped - deduped

    def test_score_function_timing_recorded(self, pipeline):
        registry = reset_registry()
        # Force prestige recomputation: drop the scores AND the serving
        # caches (memoised engines hold a reference to the old scores).
        pipeline._scores.clear()
        pipeline.invalidate_serving_caches()
        pipeline.search("gene expression", limit=5)
        snapshot = registry.snapshot()
        assert snapshot["histograms"]["scores.text.seconds"]["count"] >= 1
        assert snapshot["counters"]["scores.text.papers_scored"] > 0


class TestPageRankMetrics:
    def test_convergence_metrics_exposed(self):
        from repro.citations.graph import CitationGraph
        from repro.citations.pagerank import pagerank

        registry = reset_registry()
        graph = CitationGraph()
        for src, dst in (("a", "b"), ("b", "c"), ("c", "a"), ("a", "c")):
            graph.add_edge(src, dst)
        pagerank(graph)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["citations.pagerank.runs"] == 1
        assert snapshot["histograms"]["citations.pagerank.graph_size"]["max"] == 3
        assert snapshot["histograms"]["citations.pagerank.iterations"]["count"] == 1
        assert snapshot["gauges"]["citations.pagerank.residual"] >= 0.0

    def test_iteration_cap_warns_and_counts(self, capsys):
        from repro.citations.graph import CitationGraph
        from repro.citations.pagerank import pagerank
        from repro.obs import configure_logging

        registry = reset_registry()
        # Asymmetric graph: the uniform start is far from stationary, so a
        # 1-iteration cap cannot converge under an absurdly tight tolerance.
        graph = CitationGraph()
        for src, dst in (("a", "b"), ("a", "c"), ("b", "c")):
            graph.add_edge(src, dst)
        configure_logging(json_format=False)
        pagerank(graph, max_iterations=1, tolerance=1e-30)
        assert registry.snapshot()["counters"][
            "citations.pagerank.unconverged"
        ] == 1
        captured = capsys.readouterr()
        assert "without converging" in captured.err


class TestCliRoundTrip:
    @pytest.fixture(scope="class")
    def data_dir(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("obs-cli-data")
        main([
            "generate", "--papers", "150", "--terms", "40", "--seed", "5",
            "--out", str(directory),
        ])
        return directory

    def test_search_writes_dumps_and_report_renders(
        self, data_dir, tmp_path, capsys
    ):
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.json"
        code = main([
            "search", "--data", str(data_dir), "--query", "repair process",
            "--limit", "5",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        capsys.readouterr()  # discard search output

        payload = json.loads(metrics_path.read_text(encoding="utf-8"))
        assert "search.context.queries" in payload["metrics"]["counters"]

        code = main([
            "obs", "report",
            "--trace", str(trace_path), "--metrics", str(metrics_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        for expected in (
            "pipeline.search", "search.select", "search.score", "search.merge",
            "scores.", "== metrics:", "search.context.queries",
        ):
            assert expected in out

    def test_report_missing_file_errors(self, tmp_path, capsys):
        code = main(["obs", "report", "--trace", str(tmp_path / "nope.jsonl")])
        assert code == 1
        assert "not found" in capsys.readouterr().err

    def test_report_requires_an_input(self, capsys):
        code = main(["obs", "report"])
        assert code == 1
        assert "pass --trace" in capsys.readouterr().err
