"""Citation graphs and per-context subgraphs.

The citation-based score function (paper section 3.1) deliberately uses
"only citation information between papers in the given context", so the
central operation here is restricting a corpus-wide citation graph to an
arbitrary node subset while keeping edge direction: an edge ``u -> v``
means *u cites v*.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.corpus.corpus import Corpus


class CitationGraph:
    """A directed citation graph over paper ids (``u -> v`` = u cites v)."""

    def __init__(self, edges: Optional[Iterable[Tuple[str, str]]] = None,
                 nodes: Optional[Iterable[str]] = None) -> None:
        self._out: Dict[str, List[str]] = {}
        self._in: Dict[str, List[str]] = {}
        if nodes is not None:
            for node in nodes:
                self.add_node(node)
        if edges is not None:
            for source, target in edges:
                self.add_edge(source, target)

    @classmethod
    def from_corpus(cls, corpus: Corpus) -> "CitationGraph":
        """Build the corpus-wide graph from resolvable references."""
        graph = cls()
        for paper in corpus:
            graph.add_node(paper.paper_id)
        for paper in corpus:
            for reference in corpus.references_of(paper.paper_id):
                graph.add_edge(paper.paper_id, reference)
        return graph

    # -- construction -------------------------------------------------------------

    def add_node(self, node: str) -> None:
        """Ensure ``node`` exists (idempotent)."""
        if node not in self._out:
            self._out[node] = []
            self._in[node] = []

    def add_edge(self, source: str, target: str) -> None:
        """Add a citation edge; self-loops and duplicates are ignored.

        Self-citations of the *same paper record* cannot occur in a clean
        corpus and would distort PageRank; duplicate edges would silently
        double-weight one reference list entry.
        """
        self.add_node(source)
        self.add_node(target)
        if source == target:
            return
        if target not in self._out[source]:
            self._out[source].append(target)
            self._in[target].append(source)

    def remove_node(self, node: str) -> None:
        """Remove ``node`` and every incident edge; unknown nodes are an error.

        Neighbour adjacency lists keep their relative order, so removal is
        indistinguishable from the node never having been added.
        """
        if node not in self._out:
            raise KeyError(f"unknown node {node!r}")
        for target in self._out.pop(node):
            self._in[target].remove(node)
        for source in self._in.pop(node):
            self._out[source].remove(node)

    def apply_corpus_delta(
        self,
        corpus: Corpus,
        added_ids: Sequence[str],
        removed_ids: Sequence[str],
    ) -> None:
        """Splice a corpus delta into the graph, canonically.

        ``corpus`` must be the *final* corpus (removals and additions
        already applied); ``added_ids``/``removed_ids`` list the papers
        that changed, with added papers appended at the end of corpus
        insertion order.  The result is byte-identical -- node order,
        adjacency-list order, everything -- to ``from_corpus(corpus)``:

        - removed nodes disappear from neighbour lists in place (relative
          order of survivors is unchanged, as if never added);
        - new nodes land at the end of the node map, matching their
          position in corpus order;
        - old papers whose previously-dangling references now resolve get
          their out-lists recomputed from the corpus so the new targets
          sit at their canonical reference-order positions;
        - in-lists of touched targets are rebuilt in corpus-order of the
          citing papers, which is exactly the order ``from_corpus``
          produces.
        """
        added = [pid for pid in added_ids if pid in corpus]
        added_set = set(added)
        for node in removed_ids:
            if node in self._out:
                self.remove_node(node)
        for node in added:
            self.add_node(node)
        # Old citers whose dangling references now resolve to a new paper:
        # recompute their out-lists from the corpus so the resurrected
        # targets appear at reference-order positions, not appended.
        old_citers: Dict[str, None] = {}
        for pid in added:
            for citer in corpus.citations_of(pid):
                if citer not in added_set:
                    old_citers.setdefault(citer)
        for citer in old_citers:
            self._out[citer] = list(dict.fromkeys(corpus.references_of(citer)))
        for pid in added:
            self._out[pid] = list(dict.fromkeys(corpus.references_of(pid)))
            for target in self._out[pid]:
                if target not in added_set and pid not in self._in[target]:
                    self._in[target].append(pid)
        for pid in added:
            self._in[pid] = list(dict.fromkeys(corpus.citations_of(pid)))

    # -- access --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._out)

    def __contains__(self, node: str) -> bool:
        return node in self._out

    def nodes(self) -> List[str]:
        """All node ids in insertion order."""
        return list(self._out)

    def edges(self) -> Iterator[Tuple[str, str]]:
        """Iterate all ``(citing, cited)`` pairs."""
        for source, targets in self._out.items():
            for target in targets:
                yield source, target

    @property
    def n_edges(self) -> int:
        return sum(len(targets) for targets in self._out.values())

    def out_neighbors(self, node: str) -> List[str]:
        """Papers cited by ``node``."""
        return list(self._out.get(node, ()))

    def in_neighbors(self, node: str) -> List[str]:
        """Papers citing ``node``."""
        return list(self._in.get(node, ()))

    def out_degree(self, node: str) -> int:
        return len(self._out.get(node, ()))

    def in_degree(self, node: str) -> int:
        return len(self._in.get(node, ()))

    def density(self) -> float:
        """Edge density |E| / (|V| (|V|-1)); 0.0 for graphs with < 2 nodes.

        The paper's explanation for citation-score weakness is per-context
        graph *sparsity*; experiments report this directly.
        """
        n = len(self)
        if n < 2:
            return 0.0
        return self.n_edges / (n * (n - 1))

    # -- subgraphs -------------------------------------------------------------------

    def subgraph(self, nodes: Iterable[str]) -> "CitationGraph":
        """The induced subgraph on ``nodes`` (unknown ids become isolated nodes).

        This is the "only citations between papers in the given context"
        restriction of section 3.1: edges with either endpoint outside the
        context are dropped.
        """
        keep: Set[str] = set(nodes)
        result = CitationGraph()
        for node in self._out:
            if node in keep:
                result.add_node(node)
        for node in keep - set(self._out):
            result.add_node(node)
        for source in result.nodes():
            for target in self._out.get(source, ()):
                if target in keep:
                    result.add_edge(source, target)
        return result

    def within_path_length(
        self, sources: Iterable[str], max_hops: int, directed: bool = False
    ) -> Set[str]:
        """Nodes reachable from ``sources`` within ``max_hops`` citation steps.

        AC-answer-set citation expansion (paper section 2) collects "papers
        in the citation path of length at most 2 from the initial paper
        set"; with ``directed=False`` both citing and cited directions are
        followed, which is the inclusive reading used here.
        """
        if max_hops < 0:
            raise ValueError(f"max_hops must be >= 0, got {max_hops}")
        frontier: Set[str] = {node for node in sources if node in self._out}
        reached: Set[str] = set(frontier)
        for _ in range(max_hops):
            next_frontier: Set[str] = set()
            for node in frontier:
                next_frontier.update(self._out.get(node, ()))
                if not directed:
                    next_frontier.update(self._in.get(node, ()))
            next_frontier -= reached
            if not next_frontier:
                break
            reached |= next_frontier
            frontier = next_frontier
        return reached

    # -- (de)serialisation ----------------------------------------------------------

    def to_payload(self) -> Dict[str, List]:
        """JSON-able snapshot: node list (insertion order) + edge list."""
        return {
            "nodes": self.nodes(),
            "edges": [[source, target] for source, target in self.edges()],
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "CitationGraph":
        """Rebuild from :meth:`to_payload` output (orders preserved)."""
        return cls(
            nodes=payload["nodes"],
            edges=[(source, target) for source, target in payload["edges"]],
        )

    # -- interop -------------------------------------------------------------------

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` (for analysis/visualisation).

        Edge direction is preserved: ``u -> v`` means u cites v.
        """
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes())
        graph.add_edges_from(self.edges())
        return graph

    @classmethod
    def from_networkx(cls, graph) -> "CitationGraph":
        """Import from any networkx directed graph (self-loops dropped)."""
        result = cls()
        for node in graph.nodes():
            result.add_node(str(node))
        for source, target in graph.edges():
            result.add_edge(str(source), str(target))
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CitationGraph({len(self)} nodes, {self.n_edges} edges)"
