"""Online ranking-quality observability: query analytics + shadow scoring.

Two serving-side consumers of the request-telemetry stream
(:mod:`repro.obs.request`), both surfaced by the search service's
``GET /analytics`` endpoint and the ``repro obs analytics`` CLI:

- :class:`QueryAnalytics` -- a rolling-window aggregator fed from the
  telemetry finish hook (:meth:`QueryTelemetry.add_listener`): query
  volume per endpoint kind and score function, zero-result rate, top
  query terms, result-count and top-score distributions.  Exported as
  ``search.analytics.*`` metrics (counters at observe time, windowed
  gauges from the scrape-time collector hook).

- :class:`ShadowScorer` -- samples a configurable fraction of live
  ``/search`` traffic and re-scores it *off-thread* under one or more
  non-primary registered score functions, recording the rank agreement
  (Jaccard@k, Kendall tau on the top-k; :mod:`repro.obs.quality`)
  between the primary and each shadow ranking as ``search.shadow.*``
  histograms -- the paper's offline function comparison run continuously
  against production traffic.  Shadow queries go straight to the
  captured :class:`~repro.serving.view.ServingView`'s engines, bypassing
  the pipeline, so they never pollute telemetry, analytics, or the
  result cache, and never recurse into the sampler.

The hot-path cost is bounded by construction: with no shadow functions
configured :meth:`ShadowScorer.offer` is one attribute check, and with
sampling active it is an RNG draw plus a non-blocking queue put (full
queue = drop + count, never block) -- budgets enforced by
``benchmarks/test_perf_obs_overhead.py``.
"""

from __future__ import annotations

import queue
import random
import re
import threading
import time
from collections import Counter as TermCounter, deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.obs.logs import get_logger
from repro.obs.metrics import get_registry
from repro.obs.quality import compare_rankings

__all__ = ["QueryAnalytics", "ShadowScorer", "render_analytics"]

_log = get_logger("serving.analytics")

#: Metric name segments allow ``[a-z0-9_]`` only; anything else in a
#: score-function name is flattened (mirrors scores.<function>.* idiom).
_SEGMENT_SUB = re.compile(r"[^a-z0-9_]+")

_TERM_RE = re.compile(r"[a-z0-9]+")

#: Result-count buckets for the windowed distribution ("0" is the
#: zero-result bucket the rate is computed from).
_RESULT_BUCKETS: Tuple[Tuple[str, int, int], ...] = (
    ("0", 0, 0),
    ("1-2", 1, 2),
    ("3-5", 3, 5),
    ("6-10", 6, 10),
    ("11+", 11, 1 << 62),
)


def _metric_segment(name: str) -> str:
    segment = _SEGMENT_SUB.sub("_", str(name).lower()).strip("_")
    if not segment or not segment[0].isalpha():
        segment = f"fn_{segment}" if segment else "unknown"
    return segment


class _WindowEntry:
    __slots__ = ("ts", "kind", "function", "terms", "hits", "top_score")

    def __init__(self, ts, kind, function, terms, hits, top_score):
        self.ts = ts
        self.kind = kind
        self.function = function
        self.terms = terms
        self.hits = hits
        self.top_score = top_score


class QueryAnalytics:
    """Rolling-window query analytics over finished telemetry records.

    Registered as a telemetry listener (so it only ever sees traffic
    while telemetry is enabled -- the serve CLI always enables it) and
    as a scrape-time collector for the windowed gauges.  Thread-safe:
    the window is a bounded deque behind one small lock.
    """

    def __init__(
        self,
        window_s: float = 300.0,
        max_events: int = 8192,
        top_terms: int = 10,
    ) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.window_s = window_s
        self.top_terms = top_terms
        self._entries: Deque[_WindowEntry] = deque(maxlen=max_events)
        self._lock = threading.Lock()

    # -- ingestion (telemetry listener) ----------------------------------------------

    def observe(self, record) -> None:
        """Telemetry finish-hook: fold one QueryRecord into the window."""
        registry = get_registry()
        attrs = record.attrs
        hits = attrs.get("hits")
        if not isinstance(hits, int):
            hits = None
        top_score = attrs.get("top_score")
        if not isinstance(top_score, (int, float)):
            top_score = None
        entry = _WindowEntry(
            ts=time.monotonic(),
            kind=record.kind,
            function=str(attrs.get("function", "unknown")),
            terms=tuple(_TERM_RE.findall(record.query.lower())),
            hits=hits,
            top_score=None if top_score is None else float(top_score),
        )
        with self._lock:
            self._entries.append(entry)
        registry.counter("search.analytics.queries").inc()
        if hits is not None:
            registry.histogram("search.analytics.results").observe(hits)
            if hits == 0:
                registry.counter("search.analytics.zero_results").inc()
        if entry.top_score is not None:
            registry.histogram("search.analytics.top_score").observe(
                entry.top_score
            )

    # -- windowed aggregation --------------------------------------------------------

    def _window(self, now: Optional[float] = None) -> List[_WindowEntry]:
        if now is None:
            now = time.monotonic()
        horizon = now - self.window_s
        with self._lock:
            while self._entries and self._entries[0].ts < horizon:
                self._entries.popleft()
            return list(self._entries)

    def snapshot(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Everything the ``/analytics`` endpoint reports for the window."""
        if now is None:
            now = time.monotonic()
        entries = self._window(now)
        by_kind: Dict[str, int] = {}
        by_function: Dict[str, int] = {}
        terms: TermCounter = TermCounter()
        counted = zero = 0
        result_buckets = {label: 0 for label, _, _ in _RESULT_BUCKETS}
        scores: List[float] = []
        for entry in entries:
            by_kind[entry.kind] = by_kind.get(entry.kind, 0) + 1
            by_function[entry.function] = (
                by_function.get(entry.function, 0) + 1
            )
            terms.update(entry.terms)
            if entry.hits is not None:
                counted += 1
                if entry.hits == 0:
                    zero += 1
                for label, low, high in _RESULT_BUCKETS:
                    if low <= entry.hits <= high:
                        result_buckets[label] += 1
                        break
            if entry.top_score is not None:
                scores.append(entry.top_score)
        span_s = (now - entries[0].ts) if entries else 0.0
        scores.sort()

        def _pct(p: float) -> Optional[float]:
            if not scores:
                return None
            rank = max(int(-(-p * len(scores) // 100)), 1)
            return round(scores[rank - 1], 6)

        return {
            "window_s": self.window_s,
            "queries": len(entries),
            "qps": (
                round(len(entries) / span_s, 3) if span_s > 0 else None
            ),
            "by_kind": by_kind,
            "by_function": by_function,
            "zero_result_rate": (
                round(zero / counted, 6) if counted else None
            ),
            "zero_results": zero,
            "counted_results": counted,
            "top_terms": [
                {"term": term, "count": count}
                for term, count in terms.most_common(self.top_terms)
            ],
            "result_counts": result_buckets,
            "top_score": {
                "samples": len(scores),
                "p50": _pct(50),
                "p95": _pct(95),
                "min": round(scores[0], 6) if scores else None,
                "max": round(scores[-1], 6) if scores else None,
            },
        }

    def export_gauges(self, now: Optional[float] = None) -> None:
        """Scrape-time collector: windowed volumes as gauges."""
        entries = self._window(now)
        registry = get_registry()
        registry.gauge("search.analytics.window_queries").set(len(entries))
        counted = sum(1 for entry in entries if entry.hits is not None)
        zero = sum(1 for entry in entries if entry.hits == 0)
        if counted:
            registry.gauge("search.analytics.zero_result_rate").set(
                zero / counted
            )
        by_function: Dict[str, int] = {}
        for entry in entries:
            by_function[entry.function] = (
                by_function.get(entry.function, 0) + 1
            )
        for function, count in by_function.items():
            registry.gauge(
                f"search.analytics.{_metric_segment(function)}.queries"
            ).set(count)


class _ShadowTask:
    __slots__ = (
        "query", "function", "paper_set", "strategy", "threshold",
        "primary_ids", "view",
    )

    def __init__(
        self, query, function, paper_set, strategy, threshold, primary_ids,
        view,
    ):
        self.query = query
        self.function = function
        self.paper_set = paper_set
        self.strategy = strategy
        self.threshold = threshold
        self.primary_ids = primary_ids
        self.view = view


class ShadowScorer:
    """Off-thread shadow re-scoring of sampled live search traffic.

    ``functions`` names the registered score functions to shadow under;
    a task's own primary function is skipped (shadowing a ranking
    against itself is vacuous).  Each sampled request captures the
    :class:`ServingView` it was answered from, so a racing reload can
    never make the shadow comparison cross view generations.

    Agreement lands in per-function histograms
    ``search.shadow.<function>.jaccard`` /
    ``search.shadow.<function>.kendall_tau`` plus counters
    ``search.shadow.{sampled,scored,dropped,errors}``, and a bounded
    per-function recent-agreement window feeds :meth:`snapshot` for the
    ``/analytics`` endpoint.
    """

    def __init__(
        self,
        pipeline,
        functions: Sequence[str],
        sample_rate: float = 0.1,
        k: int = 10,
        queue_depth: int = 64,
        recent: int = 512,
        seed: Optional[int] = None,
    ) -> None:
        from repro import scoring

        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        registered = scoring.function_names()
        unknown = [fn for fn in functions if fn not in registered]
        if unknown:
            raise ValueError(
                f"unknown shadow function(s) {unknown}; registered: "
                f"{tuple(registered)}"
            )
        self.pipeline = pipeline
        self.functions: Tuple[str, ...] = tuple(dict.fromkeys(functions))
        self.sample_rate = sample_rate
        self.k = k
        self._queue: "queue.Queue[Optional[_ShadowTask]]" = queue.Queue(
            maxsize=queue_depth
        )
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self._recent: Dict[str, Deque] = {
            function: deque(maxlen=recent) for function in self.functions
        }
        self._recent_lock = threading.Lock()
        self._pending = 0
        self._pending_cond = threading.Condition()
        self._thread: Optional[threading.Thread] = None
        self._stopping = False

    @property
    def enabled(self) -> bool:
        return bool(self.functions) and self.sample_rate > 0.0

    # -- lifecycle -------------------------------------------------------------------

    def start(self) -> "ShadowScorer":
        if self._thread is not None:
            raise RuntimeError("shadow scorer already started")
        self._stopping = False
        self._thread = threading.Thread(
            target=self._worker, name="repro-shadow-scorer", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stopping = True
        self._queue.put(None)  # wake the worker even when idle
        self._thread.join(timeout=10.0)
        self._thread = None

    def drain(self, timeout_s: float = 10.0) -> bool:
        """Block until every offered task is scored (tests/smoke)."""
        deadline = time.monotonic() + timeout_s
        with self._pending_cond:
            while self._pending > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._pending_cond.wait(remaining)
        return True

    # -- the sampled hot-path hook ---------------------------------------------------

    def offer(
        self,
        query: str,
        function: str,
        paper_set: str,
        strategy: str,
        threshold: float,
        primary_ids: Sequence[str],
        view,
    ) -> bool:
        """Maybe enqueue one live request for shadow scoring.

        Returns True when the request was sampled *and* enqueued.  Never
        blocks: a full queue drops the sample (counted) rather than
        adding latency to the live request.
        """
        if not self.functions:
            return False
        if self.sample_rate < 1.0:
            with self._rng_lock:
                sampled = self._rng.random() < self.sample_rate
            if not sampled:
                return False
        registry = get_registry()
        task = _ShadowTask(
            query=query, function=function, paper_set=paper_set,
            strategy=strategy, threshold=threshold,
            primary_ids=tuple(primary_ids), view=view,
        )
        try:
            self._queue.put_nowait(task)
        except queue.Full:
            registry.counter("search.shadow.dropped").inc()
            return False
        with self._pending_cond:
            self._pending += 1
        registry.counter("search.shadow.sampled").inc()
        return True

    # -- the worker ------------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            task = self._queue.get()
            if task is None:
                if self._stopping:
                    return
                continue
            try:
                self._score(task)
            except Exception as error:  # never kill the worker thread
                get_registry().counter("search.shadow.errors").inc()
                _log.warning(
                    "shadow.score_failed", query=task.query, error=str(error)
                )
            finally:
                with self._pending_cond:
                    self._pending -= 1
                    self._pending_cond.notify_all()

    def _score(self, task: _ShadowTask) -> None:
        registry = get_registry()
        for function in self.functions:
            if function == task.function:
                continue
            engine = task.view.engine(
                function, task.paper_set, task.strategy
            )
            shadow_hits = engine.search(
                task.query, threshold=task.threshold, limit=self.k
            )
            agreement = compare_rankings(
                task.primary_ids,
                [hit.paper_id for hit in shadow_hits],
                k=self.k,
            )
            segment = _metric_segment(function)
            registry.histogram(
                f"search.shadow.{segment}.jaccard"
            ).observe(agreement.jaccard)
            if agreement.kendall_tau is not None:
                registry.histogram(
                    f"search.shadow.{segment}.kendall_tau"
                ).observe(agreement.kendall_tau)
            registry.counter("search.shadow.scored").inc()
            with self._recent_lock:
                self._recent[function].append(agreement)

    # -- reporting -------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Shadow config + recent per-function agreement summaries."""
        per_function: Dict[str, Any] = {}
        with self._recent_lock:
            recent = {
                function: list(window)
                for function, window in self._recent.items()
            }
        for function, agreements in recent.items():
            taus = [
                a.kendall_tau for a in agreements
                if a.kendall_tau is not None
            ]
            per_function[function] = {
                "samples": len(agreements),
                "mean_jaccard": (
                    round(
                        sum(a.jaccard for a in agreements) / len(agreements),
                        6,
                    )
                    if agreements else None
                ),
                "mean_kendall_tau": (
                    round(sum(taus) / len(taus), 6) if taus else None
                ),
                "mean_churn": (
                    round(
                        sum(a.churn for a in agreements) / len(agreements),
                        6,
                    )
                    if agreements else None
                ),
            }
        return {
            "functions": list(self.functions),
            "sample_rate": self.sample_rate,
            "k": self.k,
            "queued": self._queue.qsize(),
            "agreement": per_function,
        }


def render_analytics(payload: Dict[str, Any]) -> str:
    """ASCII rendering of a ``/analytics`` payload (repro obs analytics)."""
    analytics = payload.get("analytics") or {}
    shadow = payload.get("shadow")
    drift = payload.get("drift")
    lines: List[str] = ["query analytics", "==============="]
    window = analytics.get("window_s")
    lines.append(
        f"window                 {window:g}s" if window is not None
        else "window                 -"
    )
    lines.append(f"queries                {analytics.get('queries', 0)}")
    qps = analytics.get("qps")
    lines.append(
        f"observed qps           {qps:.3f}" if qps is not None
        else "observed qps           -"
    )
    rate = analytics.get("zero_result_rate")
    lines.append(
        f"zero-result rate       {rate * 100.0:.2f}%"
        f" ({analytics.get('zero_results', 0)}"
        f"/{analytics.get('counted_results', 0)})"
        if rate is not None else "zero-result rate       -"
    )
    for label, mapping in (
        ("by kind", analytics.get("by_kind") or {}),
        ("by function", analytics.get("by_function") or {}),
    ):
        if mapping:
            rendered = "  ".join(
                f"{name}={count}" for name, count in sorted(mapping.items())
            )
            lines.append(f"{label:<22} {rendered}")
    top_terms = analytics.get("top_terms") or []
    if top_terms:
        lines.append(
            "top terms              "
            + "  ".join(
                f"{item['term']}({item['count']})" for item in top_terms
            )
        )
    buckets = analytics.get("result_counts") or {}
    if buckets:
        lines.append(
            "result counts          "
            + "  ".join(f"{label}:{count}" for label, count in buckets.items())
        )
    if shadow:
        lines += ["", "shadow scoring", "=============="]
        lines.append(
            f"functions              {', '.join(shadow.get('functions', []))}"
            f"  (sample_rate={shadow.get('sample_rate')}"
            f" k={shadow.get('k')})"
        )
        for function, stats in sorted(
            (shadow.get("agreement") or {}).items()
        ):
            jaccard = stats.get("mean_jaccard")
            tau = stats.get("mean_kendall_tau")
            lines.append(
                f"  {function:<20} samples={stats.get('samples', 0)}"
                f"  jaccard={'-' if jaccard is None else f'{jaccard:.3f}'}"
                f"  tau={'-' if tau is None else f'{tau:.3f}'}"
            )
    if drift:
        lines += ["", "last reload drift", "================="]
        lines.append(
            f"max churn              {drift.get('max_churn')}"
            f"  (k={drift.get('k')})"
        )
        for entry in drift.get("functions", []):
            tau = entry.get("mean_kendall_tau")
            lines.append(
                f"  {entry.get('function', '?'):<20}"
                f" churn={entry.get('churn')}"
                f"  jaccard={entry.get('mean_jaccard')}"
                f"  tau={'-' if tau is None else tau}"
                f"  queries={entry.get('queries')}"
            )
    return "\n".join(lines)
