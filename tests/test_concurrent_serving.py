"""Concurrency tests for the build/serve layer split.

Two properties the ServingView swap must guarantee:

1. Threads running ``search_many`` while ``refresh()`` /
   ``invalidate_serving_caches()`` repeatedly swap the serving view
   never observe a torn cache -- every ranking is byte-identical to the
   single-threaded baseline.
2. Concurrent *cold* prestige lookups single-flight: the expensive
   computation runs exactly once (observed via the
   ``pipeline.prestige.computed`` counter), and every caller gets the
   same object.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import get_registry, reset_registry
from repro.pipeline import build_demo_pipeline

QUERIES = (
    "gene expression regulation",
    "protein binding activity",
    "cell membrane transport",
    "dna repair mechanism",
)


@pytest.fixture(autouse=True)
def fresh_registry():
    reset_registry()
    yield
    reset_registry()


def _rows(hits):
    return tuple(
        (h.paper_id, h.context_id, h.relevancy, h.prestige, h.matching)
        for h in hits
    )


class TestSearchUnderRefresh:
    def test_rankings_identical_while_views_swap(self):
        pipeline = build_demo_pipeline(seed=7, n_papers=120, n_terms=30)
        # Single-threaded baseline, computed before any contention.
        baseline = {
            query: _rows(pipeline.search(query, limit=10)) for query in QUERIES
        }

        stop = threading.Event()
        swaps = 0

        def swapper():
            nonlocal swaps
            while not stop.is_set():
                pipeline.refresh()
                pipeline.invalidate_serving_caches()
                swaps += 2

        def searcher(_worker: int):
            mismatches = []
            for _ in range(15):
                results = pipeline.search_many(list(QUERIES), limit=10)
                for query, hits in zip(QUERIES, results):
                    if _rows(hits) != baseline[query]:
                        mismatches.append(query)
            return mismatches

        swap_thread = threading.Thread(target=swapper, daemon=True)
        swap_thread.start()
        try:
            with ThreadPoolExecutor(max_workers=4) as pool:
                all_mismatches = list(pool.map(searcher, range(4)))
        finally:
            stop.set()
            swap_thread.join(timeout=10)
        assert all(not m for m in all_mismatches), all_mismatches
        # The swapper actually raced the searchers.
        assert swaps > 0

    def test_rankings_identical_while_index_backends_swap(self, tmp_path):
        """Searches racing install_index() swaps between the memory index
        and an ondisk (mmap) load of the same artifact must stay
        byte-identical -- the backend split's concurrency guarantee."""
        from repro.index import backends

        pipeline = build_demo_pipeline(seed=7, n_papers=120, n_terms=30)
        memory_index = pipeline.index
        path = tmp_path / "index.json"
        backends.get("ondisk").save(memory_index, path)
        ondisk_index = backends.get("ondisk").load(path)
        baseline = {
            query: _rows(pipeline.search(query, limit=10)) for query in QUERIES
        }

        stop = threading.Event()
        swaps = 0

        def swapper():
            nonlocal swaps
            while not stop.is_set():
                pipeline.substrates.install_index(ondisk_index)
                pipeline.substrates.install_index(memory_index)
                swaps += 2

        def searcher(_worker: int):
            mismatches = []
            for _ in range(15):
                results = pipeline.search_many(list(QUERIES), limit=10)
                for query, hits in zip(QUERIES, results):
                    if _rows(hits) != baseline[query]:
                        mismatches.append(query)
            return mismatches

        swap_thread = threading.Thread(target=swapper, daemon=True)
        swap_thread.start()
        try:
            with ThreadPoolExecutor(max_workers=4) as pool:
                all_mismatches = list(pool.map(searcher, range(4)))
        finally:
            stop.set()
            swap_thread.join(timeout=10)
        try:
            assert all(not m for m in all_mismatches), all_mismatches
            assert swaps > 0
        finally:
            pipeline.substrates.install_index(memory_index)
            ondisk_index.close()

    def test_refresh_returns_fresh_view_atomically(self):
        pipeline = build_demo_pipeline(seed=3, n_papers=60, n_terms=20)
        first = pipeline.serving_view
        second = pipeline.refresh()
        assert second is not first
        assert pipeline.serving_view is second
        # The swap is a single reference assignment: whatever view a
        # request grabbed stays internally consistent.
        assert first.result_cache is not second.result_cache

    def test_refresh_counter_increments(self):
        pipeline = build_demo_pipeline(seed=3, n_papers=60, n_terms=20)
        before = get_registry().counter("serving.view.refresh").value
        pipeline.refresh()
        pipeline.refresh()
        after = get_registry().counter("serving.view.refresh").value
        assert after == before + 2


class TestPrestigeSingleFlight:
    def test_concurrent_cold_lookup_computes_once(self):
        pipeline = build_demo_pipeline(seed=5, n_papers=120, n_terms=30)
        # Warm every substrate the scorer needs so the barrier race is
        # about the prestige computation itself.
        pipeline.substrates.representatives
        barrier = threading.Barrier(8)

        def cold_lookup(_worker: int):
            barrier.wait()
            return pipeline.prestige("text", "text")

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(cold_lookup, range(8)))

        computed = get_registry().counter("pipeline.prestige.computed").value
        assert computed == 1
        assert all(scores is results[0] for scores in results)

    def test_distinct_keys_do_not_serialise_each_other(self):
        pipeline = build_demo_pipeline(seed=5, n_papers=80, n_terms=25)
        keys = [("citation", "text"), ("citation", "pattern"), ("hits", "text")]
        with ThreadPoolExecutor(max_workers=3) as pool:
            results = list(
                pool.map(lambda k: pipeline.prestige(*k), keys)
            )
        computed = get_registry().counter("pipeline.prestige.computed").value
        assert computed == len(keys)
        names = [scores.function_name for scores in results]
        assert names == ["citation", "citation", "hits"]

    def test_warm_lookup_skips_the_lock_path(self):
        pipeline = build_demo_pipeline(seed=5, n_papers=60, n_terms=20)
        first = pipeline.prestige("citation", "text")
        computed = get_registry().counter("pipeline.prestige.computed").value
        second = pipeline.prestige("citation", "text")
        assert second is first
        assert (
            get_registry().counter("pipeline.prestige.computed").value
            == computed
        )
