"""Corpus substrate: papers and paper collections.

Models the parsed full-text PubMed papers of the paper's testbed: every
paper carries the six similarity facets of section 3.2 (title, abstract,
body, index terms, authors, references) plus the identifiers needed to
track citations and context assignments.

- :mod:`repro.corpus.paper` -- the :class:`Paper` record and its sections.
- :mod:`repro.corpus.corpus` -- the :class:`Corpus` container with id maps,
  author and citation indexes.
- :mod:`repro.corpus.io` -- JSONL persistence.
"""

from repro.corpus.corpus import Corpus
from repro.corpus.io import read_corpus_jsonl, write_corpus_jsonl
from repro.corpus.paper import Paper, Section
from repro.corpus.validate import ValidationReport, validate_corpus

__all__ = [
    "Paper",
    "Section",
    "Corpus",
    "read_corpus_jsonl",
    "write_corpus_jsonl",
    "validate_corpus",
    "ValidationReport",
]
