"""Shared fixtures for the figure-reproduction benchmarks.

One seeded dataset + pipeline is built per session and reused by every
bench.  Scale is environment-configurable:

- ``REPRO_BENCH_PAPERS``  (default 1600)
- ``REPRO_BENCH_TERMS``   (default 400)
- ``REPRO_BENCH_QUERIES`` (default 60; the paper used ~120)
- ``REPRO_BENCH_SEED``    (default 42)

Each bench writes its table to ``benchmarks/results/<name>.txt`` in
addition to printing it, so results survive output capture.  In addition
every bench test drops ``benchmarks/results/BENCH_<test name>.json`` --
wall-clock seconds plus the delta of the observability counters the run
produced -- so per-stage cost trajectories can be compared across
commits (see docs/observability.md).
"""

import json
import os
from pathlib import Path

import pytest

from repro.datagen import CorpusGenerator, OntologyGenerator, generate_queries
from repro.eval.experiments import PrecisionExperiment
from repro.obs import get_registry
from repro.pipeline import Pipeline

RESULTS_DIR = Path(__file__).parent / "results"


def _env_int(name, default):
    return int(os.environ.get(name, default))


@pytest.fixture(scope="session")
def bench_seed():
    return _env_int("REPRO_BENCH_SEED", 42)


@pytest.fixture(scope="session")
def dataset(bench_seed):
    generator = CorpusGenerator(
        n_papers=_env_int("REPRO_BENCH_PAPERS", 1600),
        ontology_generator=OntologyGenerator(
            n_terms=_env_int("REPRO_BENCH_TERMS", 400),
            max_depth=7,
            min_children=2,
            max_children=3,
        ),
    )
    return generator.generate(seed=bench_seed)


@pytest.fixture(scope="session")
def pipeline(dataset):
    return Pipeline.from_dataset(dataset, min_context_size=10)


@pytest.fixture(scope="session")
def queries(dataset, bench_seed):
    workload = generate_queries(
        dataset, n_queries=_env_int("REPRO_BENCH_QUERIES", 60), seed=bench_seed
    )
    return [w.query for w in workload]


@pytest.fixture(scope="session")
def precision_experiment(pipeline, queries):
    """Shared so AC-answer sets are built once across figures 5.1/5.2."""
    return PrecisionExperiment(pipeline, queries)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Print a bench table and persist it under benchmarks/results/."""
    print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}")
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


# -- per-bench JSON trajectories ----------------------------------------------------

def _counter_snapshot():
    return dict(get_registry().snapshot()["counters"])


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if call.when == "setup":
        item._obs_counters_before = _counter_snapshot()
    if call.when != "call":
        return
    before = getattr(item, "_obs_counters_before", {})
    after = _counter_snapshot()
    deltas = {
        name: value - before.get(name, 0)
        for name, value in sorted(after.items())
        if value - before.get(name, 0)
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "name": item.name,
        "outcome": report.outcome,
        "wall_seconds": round(report.duration, 6),
        "counter_deltas": deltas,
    }
    out = RESULTS_DIR / f"BENCH_{item.name}.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
