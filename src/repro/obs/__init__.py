"""Observability: metrics registry, tracing spans, structured logging.

The cross-cutting layer every stage of the pipeline records into:

- :mod:`repro.obs.metrics` -- process-wide :class:`MetricsRegistry` with
  counters, gauges, histograms (p50/p95/p99), and monotonic timers;
- :mod:`repro.obs.trace` -- hierarchical ``span()`` trees with JSON-lines
  and ASCII-tree export, no-op while tracing is inactive;
- :mod:`repro.obs.logs` -- structured loggers emitting plain text or JSON
  lines (``REPRO_LOG_FORMAT=json`` / ``repro ... --log-json``);
- :mod:`repro.obs.report` -- renders saved dumps (``repro obs report``);
- :mod:`repro.obs.request` -- request-scoped query telemetry: query ids,
  head + tail sampling, the rolling SLO event window;
- :mod:`repro.obs.slowlog` -- bounded ring of the N slowest queries with
  full span trees (``repro obs slowlog``);
- :mod:`repro.obs.slo` -- SLO declarations, rolling-window evaluation,
  error budgets (``repro obs slo``);
- :mod:`repro.obs.prom` -- Prometheus text exposition rendering;
- :mod:`repro.obs.server` -- stdlib HTTP endpoint publishing
  ``/metrics``, ``/health``, ``/slo`` (``repro obs serve``).

Stdlib only, no hard dependencies; disabled-by-default tracing keeps the
instrumented hot paths at their uninstrumented speed.  Metric and span
names follow the ``stage.component.metric`` convention documented in
``docs/observability.md`` and linted by ``tools/check_metric_names.py``.
"""

from repro.obs.logs import ObsLogger, configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    METRIC_NAME_RE,
    MetricsRegistry,
    get_registry,
    reset_registry,
    validate_metric_name,
)
from repro.obs.prom import prom_name, render_prometheus
from repro.obs.report import render_metrics, render_report, render_trace
from repro.obs.request import (
    QueryRecord,
    QueryTelemetry,
    configure_telemetry,
    get_telemetry,
    reset_telemetry,
)
from repro.obs.slo import (
    DEFAULT_SLOS,
    QueryEvent,
    SLO,
    SLOStatus,
    evaluate_slo,
    evaluate_slos,
    format_slo_report,
    parse_slo,
)
from repro.obs.slowlog import SlowQueryLog, render_slowlog
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    attach_span,
    current_span,
    current_tracer,
    read_trace_jsonl,
    span,
    start_tracing,
    stop_tracing,
)

__all__ = [
    "Counter",
    "DEFAULT_SLOS",
    "Gauge",
    "Histogram",
    "METRIC_NAME_RE",
    "MetricsRegistry",
    "NULL_SPAN",
    "ObsLogger",
    "QueryEvent",
    "QueryRecord",
    "QueryTelemetry",
    "SLO",
    "SLOStatus",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "attach_span",
    "configure_logging",
    "configure_telemetry",
    "current_span",
    "current_tracer",
    "evaluate_slo",
    "evaluate_slos",
    "format_slo_report",
    "get_logger",
    "get_registry",
    "get_telemetry",
    "parse_slo",
    "prom_name",
    "read_trace_jsonl",
    "render_metrics",
    "render_prometheus",
    "render_report",
    "render_slowlog",
    "render_trace",
    "reset_registry",
    "reset_telemetry",
    "span",
    "start_tracing",
    "stop_tracing",
    "validate_metric_name",
]
