"""Kleinberg's HITS algorithm (paper reference [9]).

Section 3.1 describes authorities and hubs; the paper chose PageRank after
earlier experiments [11] showed HITS and PageRank scores to be highly
correlated on the ACM SIGMOD Anthology.  We implement HITS both for
completeness and to reproduce that correlation claim as an ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.citations.graph import CitationGraph
from repro.obs import get_logger, get_registry

logger = get_logger(__name__)


@dataclass
class HitsResult:
    """Converged authority and hub scores (each L2-normalised)."""

    authorities: Dict[str, float]
    hubs: Dict[str, float]
    iterations: int
    converged: bool

    def top_authorities(self, k: int) -> List[str]:
        ranked = sorted(
            self.authorities.items(), key=lambda item: (-item[1], item[0])
        )
        return [node for node, _ in ranked[:k]]


def hits_scores(
    graph: CitationGraph,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
) -> HitsResult:
    """Iterate authority/hub mutual reinforcement to a fixed point.

    authority(v) ∝ Σ hub(u) over citing papers u;
    hub(u)       ∝ Σ authority(v) over papers v cited by u.

    Graphs with no edges return uniform scores immediately (the iteration
    has nothing to reinforce and any normalised vector is a fixed point).
    """
    nodes = graph.nodes()
    n = len(nodes)
    if n == 0:
        return HitsResult(authorities={}, hubs={}, iterations=0, converged=True)
    index = {node: position for position, node in enumerate(nodes)}
    if graph.n_edges == 0:
        uniform = 1.0 / np.sqrt(n)
        flat = {node: float(uniform) for node in nodes}
        return HitsResult(authorities=dict(flat), hubs=dict(flat), iterations=0,
                          converged=True)

    in_lists = [[index[u] for u in graph.in_neighbors(node)] for node in nodes]
    out_lists = [[index[v] for v in graph.out_neighbors(node)] for node in nodes]

    authority = np.full(n, 1.0 / np.sqrt(n))
    hub = np.full(n, 1.0 / np.sqrt(n))
    iterations = 0
    converged = False
    delta = float("inf")
    for iterations in range(1, max_iterations + 1):
        new_authority = np.array(
            [sum(hub[u] for u in sources) for sources in in_lists]
        )
        norm = np.linalg.norm(new_authority)
        if norm > 0:
            new_authority /= norm
        new_hub = np.array(
            [sum(new_authority[v] for v in targets) for targets in out_lists]
        )
        norm = np.linalg.norm(new_hub)
        if norm > 0:
            new_hub /= norm
        delta = float(
            np.abs(new_authority - authority).sum() + np.abs(new_hub - hub).sum()
        )
        authority, hub = new_authority, new_hub
        if delta < tolerance:
            converged = True
            break

    registry = get_registry()
    registry.counter("citations.hits.runs").inc()
    registry.histogram("citations.hits.iterations").observe(iterations)
    registry.histogram("citations.hits.graph_size").observe(n)
    registry.gauge("citations.hits.residual").set(delta)
    if not converged:
        registry.counter("citations.hits.unconverged").inc()
        logger.warning(
            "hits hit the iteration cap without converging",
            iterations=iterations,
            delta=delta,
            tolerance=tolerance,
            nodes=n,
        )
    return HitsResult(
        authorities={node: float(authority[index[node]]) for node in nodes},
        hubs={node: float(hub[index[node]]) for node in nodes},
        iterations=iterations,
        converged=converged,
    )
