"""Figure 5.3 -- average top-k% overlapping ratio per context level.

Paper series (pattern-based context paper set; text scores assigned where
a representative exists): three pairs x levels {3, 5, 7} x k in
{5, 10, 15, 20}%.

Expected shapes at small k:
- text-citation overlap decreases as the level deepens;
- citation-pattern overlap decreases as the level deepens;
- text-pattern overlap *increases* with depth (they agree least near the
  root, where representatives and patterns are both diffuse).
"""

from conftest import write_result

from repro.eval.experiments import OverlapExperiment

LEVELS = (3, 5, 7)


def test_fig_5_3_topk_overlap_by_level(benchmark, pipeline, results_dir):
    paper_set = pipeline.experiment_paper_set("pattern")
    experiment = OverlapExperiment(paper_set, levels=LEVELS)

    def run():
        text = pipeline.prestige("text", "pattern")
        citation = pipeline.prestige("citation", "pattern")
        pattern = pipeline.prestige("pattern", "pattern")
        return {
            "text-citation": experiment.run(text, citation),
            "text-pattern": experiment.run(text, pattern),
            "citation-pattern": experiment.run(citation, pattern),
        }

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    from repro.eval.ascii_plot import ascii_line_chart

    chart = ascii_line_chart(
        {
            pair: [row[0] for row in result.values]  # k = 5% column
            for pair, result in series.items()
        },
        x_labels=[f"L{lv}" for lv in LEVELS],
    )
    table = "\n\n".join(
        [s.format_table() for s in series.values()]
        + ["top-5% overlap vs context level:", chart]
    )
    write_result(results_dir, "fig_5_3", table)

    def smallest_k(run_result, level):
        index = run_result.levels.index(level)
        return run_result.values[index][0]

    for pair in ("text-citation", "citation-pattern"):
        shallow = smallest_k(series[pair], LEVELS[0])
        deep = smallest_k(series[pair], LEVELS[-1])
        if shallow is not None and deep is not None:
            assert deep < shallow, (
                f"{pair} overlap must fall with depth: {shallow:.3f} -> {deep:.3f}"
            )
    shallow = smallest_k(series["text-pattern"], LEVELS[0])
    deep = smallest_k(series["text-pattern"], LEVELS[-1])
    if shallow is not None and deep is not None:
        assert deep > shallow, (
            "text-pattern overlap must rise with depth "
            f"(agree least near the root): {shallow:.3f} -> {deep:.3f}"
        )
