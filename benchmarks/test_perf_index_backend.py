"""Index-backend benchmark: ondisk mmap cold open vs memory full parse.

The ondisk backend exists so opening a workspace is "mmap, not parse":
``OndiskPostingsBackend`` maps the packed sidecar and reads only the
JSON header, deferring postings decode to first use per term.  The
memory backend's load, by contrast, parses the whole JSON snapshot and
materialises every ``Posting`` up front.  This bench persists the same
session index through both codecs, times the cold opens, and asserts
the >= 10x floor the lazy path is meant to deliver (in practice it is
far larger; the bar is conservative so CI noise cannot flake it).

Resident postings bytes are recorded for both backends after an
identical query workload, showing how much of the index the lazy
backend actually materialised.  Ranking parity over the shared query
workload is asserted too -- a faster open is worthless if the packed
format changed what a query returns.

Emits ``benchmarks/results/BENCH_index_backend.json`` (read by
``tools/check_bench_regression.py``) in addition to the per-test
``BENCH_test_perf_index_backend.json`` the conftest hook drops.
"""

import json
import time

from conftest import write_result

from repro.index import backends
from repro.index.search import KeywordSearchEngine

MIN_COLD_OPEN_SPEEDUP = 10.0
#: Cold opens per backend; best-of damps filesystem/scheduler noise.
REPEATS = 3
LIMIT = 10
PARITY_QUERIES = 20


def _best_of(repeats, action):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        result = action()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
        close = getattr(result, "close", None)
        if callable(close):
            close()
    return best


def test_perf_index_backend(pipeline, queries, results_dir, tmp_path_factory):
    workdir = tmp_path_factory.mktemp("index_backend")
    memory_path = workdir / "index_memory.json"
    ondisk_path = workdir / "index_ondisk.json"
    source = pipeline.index  # built once by the session fixture
    backends.get("memory").save(source, memory_path)
    backends.get("ondisk").save(source, ondisk_path)

    memory_open_seconds = _best_of(
        REPEATS, lambda: backends.get("memory").load(memory_path)
    )
    ondisk_open_seconds = _best_of(
        REPEATS, lambda: backends.get("ondisk").load(ondisk_path)
    )
    speedup = memory_open_seconds / max(ondisk_open_seconds, 1e-9)

    # Ranking parity + resident-bytes comparison over the same workload.
    memory_index = backends.get("memory").load(memory_path)
    ondisk_index = backends.get("ondisk").load(ondisk_path)
    memory_engine = KeywordSearchEngine(memory_index)
    ondisk_engine = KeywordSearchEngine(ondisk_index)
    workload = queries[:PARITY_QUERIES]
    for query in workload:
        assert ondisk_engine.search(query, limit=LIMIT) == memory_engine.search(
            query, limit=LIMIT
        )
    memory_resident = memory_index.resident_postings_bytes()
    ondisk_resident = ondisk_index.resident_postings_bytes()
    # Lazy decode: after a bounded workload the mmap backend must hold
    # only the touched slice of the postings, not the whole index.
    assert ondisk_resident < memory_resident

    sidecar_bytes = sum(
        p.stat().st_size for p in (ondisk_path, ondisk_path.with_suffix(".bin"))
    )
    table = "\n".join([
        f"papers                    {source.n_papers}",
        f"terms                     {source.n_terms}",
        f"memory cold open          {memory_open_seconds * 1000.0:10.2f} ms",
        f"ondisk cold open          {ondisk_open_seconds * 1000.0:10.2f} ms",
        f"cold-open speedup         {speedup:10.1f}x  "
        f"(floor {MIN_COLD_OPEN_SPEEDUP:.0f}x)",
        f"memory snapshot file      {memory_path.stat().st_size:10d} B",
        f"ondisk descriptor+sidecar {sidecar_bytes:10d} B",
        f"memory resident postings  {memory_resident:10d} B",
        f"ondisk resident postings  {ondisk_resident:10d} B  "
        f"(after {len(workload)} queries)",
    ])
    write_result(results_dir, "perf_index_backend", table)

    payload = {
        "papers": source.n_papers,
        "terms": source.n_terms,
        "cold_open_memory_seconds": round(memory_open_seconds, 6),
        "cold_open_ondisk_seconds": round(ondisk_open_seconds, 6),
        "cold_open_speedup": round(speedup, 3),
        "floor": MIN_COLD_OPEN_SPEEDUP,
        "memory_file_bytes": memory_path.stat().st_size,
        "ondisk_file_bytes": sidecar_bytes,
        "memory_resident_postings_bytes": memory_resident,
        "ondisk_resident_postings_bytes": ondisk_resident,
        "parity_queries": len(workload),
    }
    (results_dir / "BENCH_index_backend.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    ondisk_index.close()

    assert speedup >= MIN_COLD_OPEN_SPEEDUP
