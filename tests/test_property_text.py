"""Property-based tests (hypothesis) for the text substrate."""

import math
import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.analyze import Analyzer
from repro.text.similarity import dice_coefficient, jaccard_similarity
from repro.text.stem import PorterStemmer
from repro.text.tokenize import ngrams, tokenize
from repro.text.vectorize import SparseVector, TfidfModel, centroid

words = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=12)
texts = st.text(
    alphabet=string.ascii_letters + string.digits + " .,;-'!?()",
    max_size=300,
)
weight_maps = st.dictionaries(
    st.integers(min_value=0, max_value=50),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    max_size=20,
)


class TestTokenizeProperties:
    @given(texts)
    def test_tokens_are_lowercase_and_nonempty(self, text):
        for token in tokenize(text):
            assert token
            assert token == token.lower()

    @given(texts)
    def test_tokenize_idempotent_on_joined_output(self, text):
        tokens = tokenize(text)
        assert tokenize(" ".join(tokens)) == tokens

    @given(st.lists(words, max_size=20), st.integers(min_value=1, max_value=5))
    def test_ngram_count(self, tokens, n):
        grams = ngrams(tokens, n)
        assert len(grams) == max(len(tokens) - n + 1, 0)
        for gram in grams:
            assert len(gram) == n


class TestStemmerProperties:
    @given(words)
    def test_stem_idempotent(self, word):
        stemmer = PorterStemmer()
        once = stemmer.stem(word)
        assert stemmer.stem(once) == stemmer.stem(once)

    @given(words)
    def test_stem_never_longer_and_lowercase(self, word):
        stem = PorterStemmer().stem(word)
        assert len(stem) <= len(word)
        assert stem == stem.lower()

    @given(words)
    def test_stem_of_alpha_stays_alpha(self, word):
        assert PorterStemmer().stem(word).isalpha()


class TestAnalyzerProperties:
    @given(texts)
    def test_no_stopwords_survive(self, text):
        analyzer = Analyzer()
        stems_of_stopwords = set()  # stems may coincide; check raw removal
        for term in analyzer.analyze(text):
            assert len(term) >= analyzer.min_token_length

    @given(texts)
    def test_analysis_deterministic(self, text):
        analyzer = Analyzer()
        assert analyzer.analyze(text) == analyzer.analyze(text)


class TestSparseVectorProperties:
    @given(weight_maps, weight_maps)
    def test_cosine_bounds_and_symmetry(self, a, b):
        va, vb = SparseVector(a), SparseVector(b)
        value = va.cosine(vb)
        assert 0.0 <= value <= 1.0
        assert math.isclose(value, vb.cosine(va), rel_tol=1e-9, abs_tol=1e-12)

    @given(weight_maps)
    def test_self_cosine_is_one_or_zero(self, a):
        v = SparseVector(a)
        value = v.cosine(v)
        if v.norm == 0.0:
            assert value == 0.0
        else:
            assert math.isclose(value, 1.0, rel_tol=1e-9)

    @given(weight_maps)
    def test_normalized_has_unit_norm(self, a):
        v = SparseVector(a).normalized()
        if v:
            assert math.isclose(v.norm, 1.0, rel_tol=1e-9)

    @given(weight_maps, weight_maps)
    def test_dot_commutes(self, a, b):
        va, vb = SparseVector(a), SparseVector(b)
        assert math.isclose(va.dot(vb), vb.dot(va), rel_tol=1e-9, abs_tol=1e-12)

    @given(st.lists(weight_maps, max_size=6))
    def test_centroid_weights_bounded_by_max(self, maps):
        vectors = [SparseVector(m) for m in maps]
        center = centroid(vectors)
        for term, weight in center.weights.items():
            biggest = max(v.weights.get(term, 0.0) for v in vectors)
            assert weight <= biggest + 1e-9


class TestSetSimilarityProperties:
    sets = st.sets(words, max_size=15)

    @given(sets, sets)
    def test_jaccard_bounds_symmetry(self, a, b):
        value = jaccard_similarity(a, b)
        assert 0.0 <= value <= 1.0
        assert value == jaccard_similarity(b, a)

    @given(sets)
    def test_jaccard_identity(self, a):
        assert jaccard_similarity(a, a) == (1.0 if a else 0.0)

    @given(sets, sets)
    def test_dice_ge_jaccard(self, a, b):
        # Dice >= Jaccard always (2x/(s) vs x/(s-x) relation).
        assert dice_coefficient(a, b) >= jaccard_similarity(a, b) - 1e-12


class TestTfidfProperties:
    documents = st.lists(st.lists(words, min_size=1, max_size=10), min_size=1, max_size=8)

    @given(documents)
    @settings(max_examples=50)
    def test_vectorize_known_document_nonempty(self, docs):
        model = TfidfModel().fit(docs)
        vector = model.vectorize(docs[0])
        assert len(vector) == len(set(docs[0]))

    @given(documents)
    @settings(max_examples=50)
    def test_idf_positive_and_anti_monotone_in_df(self, docs):
        model = TfidfModel().fit(docs)
        vocab = model.vocabulary
        idfs = {tid: model.idf(tid) for _, tid in vocab.items()}
        assert all(value > 0 for value in idfs.values())
        for term_a, tid_a in vocab.items():
            for term_b, tid_b in vocab.items():
                if vocab.doc_freq(term_a) < vocab.doc_freq(term_b):
                    assert idfs[tid_a] >= idfs[tid_b]
