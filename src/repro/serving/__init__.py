"""Build/serve layer split (see ``docs/architecture.md``).

:class:`~repro.serving.substrate.SubstrateStore` is the mutable build
layer (index, vectors, graph, paper sets, scores, revision counter);
:class:`~repro.serving.view.ServingView` is the immutable-per-refresh
serve layer (memoised engines + LRU result cache) the pipeline swaps
atomically.
"""

from repro.serving.substrate import SubstrateStore
from repro.serving.view import SearchResultCache, ServingView

__all__ = ["SubstrateStore", "SearchResultCache", "ServingView"]
