"""The ``memory`` backend: the paper-faithful in-memory inverted index.

This is the original :class:`~repro.index.inverted.InvertedIndex`
re-registered through the backend registry.  Its codec is the existing
format-tagged JSON snapshot (``repro/inverted-index/v1``), so workspaces
built before the registry existed keep loading unchanged.
"""

from __future__ import annotations

from typing import Optional

from repro.corpus.corpus import Corpus
from repro.index.backends.base import SearchBackend
from repro.index.backends.registry import SearchBackendSpec
from repro.index.inverted import InvertedIndex
from repro.text.analyze import Analyzer

# The concrete class predates the protocol; registering it as a virtual
# subclass (rather than inheriting) keeps repro.index.inverted free of
# backend imports and thus import-cycle-proof.
SearchBackend.register(InvertedIndex)

#: Same tag :mod:`repro.core.io` has always written for the index
#: artifact -- pre-registry workspaces remain valid.
MEMORY_FORMAT = "repro/inverted-index/v1"


def build_memory_index(
    corpus: Corpus, analyzer: Optional[Analyzer] = None
) -> InvertedIndex:
    """Full analyse-and-index pass into an in-memory inverted index."""
    return InvertedIndex(analyzer=analyzer).index_corpus(corpus)


def save_memory_index(index, path) -> None:
    """Persist any backend exposing ``to_payload`` as tagged JSON."""
    from repro.core.io import write_tagged_json  # lazy: core.io imports repro.index

    write_tagged_json(index.to_payload(), path, MEMORY_FORMAT)


def load_memory_index(path, analyzer: Optional[Analyzer] = None) -> InvertedIndex:
    """Parse the JSON snapshot back into a fully materialised index."""
    from repro.core.io import read_tagged_json  # lazy: core.io imports repro.index

    payload = read_tagged_json(path, MEMORY_FORMAT)
    return InvertedIndex.from_payload(payload, analyzer=analyzer)


SPEC = SearchBackendSpec(
    name="memory",
    build=build_memory_index,
    save=save_memory_index,
    load=load_memory_index,
    format_tag=MEMORY_FORMAT,
    description=(
        "In-RAM section-aware inverted index (Posting dataclasses); "
        "fastest to query, cold open parses the full JSON snapshot."
    ),
)
