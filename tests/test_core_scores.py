"""Unit tests for the prestige score machinery and the three functions."""

import pytest

from repro.citations.graph import CitationGraph
from repro.core.assignment import PatternContextAssigner
from repro.core.context import Context, ContextPaperSet
from repro.core.patterns import AnalyzedPaperCache
from repro.core.scores import (
    CitationPrestige,
    PatternPrestige,
    TextPrestige,
    min_max_normalize,
    propagate_max_over_descendants,
)
from repro.core.scores.text import FacetWeights
from repro.core.vectors import PaperVectorStore
from repro.index.inverted import InvertedIndex
from repro.ontology.ontology import Ontology
from repro.ontology.term import Term


class TestMinMaxNormalize:
    def test_rescales_to_unit_interval(self):
        result = min_max_normalize({"a": 2.0, "b": 6.0, "c": 4.0})
        assert result == {"a": 0.0, "b": 1.0, "c": 0.5}

    def test_constant_maps_to_zero(self):
        # No discriminating evidence -> no prestige (see docstring).
        assert min_max_normalize({"a": 3.0, "b": 3.0}) == {"a": 0.0, "b": 0.0}

    def test_empty(self):
        assert min_max_normalize({}) == {}

    def test_single(self):
        assert min_max_normalize({"a": 7.0}) == {"a": 0.0}


class TestPropagation:
    @pytest.fixture
    def paper_set(self):
        ontology = Ontology(
            [
                Term("root", "process"),
                Term("child", "x process", parent_ids=("root",)),
            ]
        )
        return ContextPaperSet(
            ontology,
            [
                Context("root", ("P1", "P2")),
                Context("child", ("P1",)),
            ],
        )

    def test_max_taken_from_descendant(self, paper_set):
        by_context = {
            "root": {"P1": 0.2, "P2": 0.9},
            "child": {"P1": 0.8},
        }
        result = propagate_max_over_descendants(paper_set, by_context)
        assert result["root"]["P1"] == 0.8
        assert result["root"]["P2"] == 0.9
        # Propagation is ancestor-ward only.
        assert result["child"]["P1"] == 0.8

    def test_descendant_missing_scores_ignored(self, paper_set):
        by_context = {"root": {"P1": 0.5, "P2": 0.5}}
        result = propagate_max_over_descendants(paper_set, by_context)
        assert result["root"] == {"P1": 0.5, "P2": 0.5}

    def test_papers_absent_from_descendant_unchanged(self, paper_set):
        by_context = {"root": {"P1": 0.3, "P2": 0.3}, "child": {"P1": 0.1}}
        result = propagate_max_over_descendants(paper_set, by_context)
        assert result["root"]["P2"] == 0.3
        assert result["root"]["P1"] == 0.3  # descendant score lower


@pytest.fixture(scope="module")
def tiny_setup(request):
    corpus = request.getfixturevalue("tiny_corpus")
    ontology = request.getfixturevalue("tiny_ontology")
    index = InvertedIndex().index_corpus(corpus)
    vectors = PaperVectorStore(corpus, index.analyzer)
    graph = CitationGraph.from_corpus(corpus)
    paper_set = ContextPaperSet(
        ontology,
        [
            Context("met", ("M1", "M2", "M3"), training_paper_ids=("M1", "M2")),
            Context("sig", ("S1", "S2"), training_paper_ids=("S1",)),
            Context("glu", ("M1", "M2"), training_paper_ids=("M1",)),
        ],
    )
    return {
        "corpus": corpus,
        "ontology": ontology,
        "index": index,
        "vectors": vectors,
        "graph": graph,
        "paper_set": paper_set,
    }


class TestCitationPrestige:
    def test_most_cited_in_context_wins(self, tiny_setup):
        scorer = CitationPrestige(tiny_setup["graph"])
        scores = scorer.score_all(tiny_setup["paper_set"], propagate=False)
        met = scores.of("met")
        # Within {M1, M2, M3}: M1 cited by M2, M3; M2 cited by M3.
        assert met["M1"] > met["M2"] > met["M3"]

    def test_cross_context_citations_excluded(self, tiny_setup):
        """S2 -> M1 must not affect the sig context's internal ranking."""
        scorer = CitationPrestige(tiny_setup["graph"])
        raw = scorer.score_context(tiny_setup["paper_set"].context("sig"))
        # Within {S1, S2}: only S2 -> S1.
        assert raw["S1"] > raw["S2"]

    def test_normalized_range(self, tiny_setup):
        scorer = CitationPrestige(tiny_setup["graph"])
        scores = scorer.score_all(tiny_setup["paper_set"])
        for context_id in scores.context_ids():
            for value in scores.of(context_id).values():
                assert 0.0 <= value <= 1.0

    def test_empty_context(self, tiny_setup):
        scorer = CitationPrestige(tiny_setup["graph"])
        assert scorer.score_context(Context("met", ())) == {}

    def test_subgraph_density(self, tiny_setup):
        scorer = CitationPrestige(tiny_setup["graph"])
        context = tiny_setup["paper_set"].context("met")
        assert scorer.subgraph_density(context) == pytest.approx(3 / 6)


class TestTextPrestige:
    def test_representative_scores_highest(self, tiny_setup):
        scorer = TextPrestige(
            tiny_setup["corpus"],
            tiny_setup["vectors"],
            tiny_setup["graph"],
            {"met": "M1", "sig": "S1", "glu": "M1"},
        )
        raw = scorer.score_context(tiny_setup["paper_set"].context("met"))
        assert raw["M1"] == max(raw.values())

    def test_no_representative_no_scores(self, tiny_setup):
        scorer = TextPrestige(
            tiny_setup["corpus"],
            tiny_setup["vectors"],
            tiny_setup["graph"],
            {},
        )
        assert scorer.score_context(tiny_setup["paper_set"].context("met")) == {}

    def test_author_similarity_level0(self, tiny_setup):
        scorer = TextPrestige(
            tiny_setup["corpus"],
            tiny_setup["vectors"],
            tiny_setup["graph"],
            {"met": "M1"},
        )
        # M1 {Alpha, Beta} vs M2 {Beta, Gamma}: L0 overlap = 1/2.
        sim_shared = scorer.author_similarity("M1", "M2")
        # M1 vs S1: disjoint author sets, no co-authorship bridge.
        sim_disjoint = scorer.author_similarity("M1", "S1")
        assert sim_shared > sim_disjoint

    def test_author_similarity_level1_bridge(self, tiny_setup):
        """M1 and M3 share no authors, but Beta (M1, M2) and Delta... no
        bridge; M1-M3 relies on nothing.  Use M2 vs M1: direct overlap, and
        check the level-1 term is bounded."""
        scorer = TextPrestige(
            tiny_setup["corpus"],
            tiny_setup["vectors"],
            tiny_setup["graph"],
            {"met": "M1"},
        )
        value = scorer.author_similarity("M1", "M2")
        assert 0.0 <= value <= 1.0

    def test_facet_weights_validation(self):
        with pytest.raises(ValueError):
            FacetWeights(title=-0.1).validate()
        with pytest.raises(ValueError):
            FacetWeights(bibliographic=1.5).validate()

    def test_zero_weights_drop_facets(self, tiny_setup):
        content_only = TextPrestige(
            tiny_setup["corpus"],
            tiny_setup["vectors"],
            tiny_setup["graph"],
            {"met": "M1"},
            weights=FacetWeights(authors=0.0, references=0.0),
        )
        raw = content_only.score_context(tiny_setup["paper_set"].context("met"))
        assert raw["M1"] > raw["M3"]

    def test_topical_ordering(self, tiny_setup):
        scorer = TextPrestige(
            tiny_setup["corpus"],
            tiny_setup["vectors"],
            tiny_setup["graph"],
            {"met": "M1"},
        )
        # Score the whole corpus against met's representative.
        wide = Context("met", ("M1", "M2", "M3", "S1", "X1"))
        raw = scorer.score_context(wide)
        assert raw["M2"] > raw["S1"] > raw["X1"] or raw["M2"] > raw["X1"]


class TestPatternPrestige:
    @pytest.fixture(scope="class")
    def prestige_setup(self, request, tiny_setup):
        assigner = PatternContextAssigner(
            tiny_setup["corpus"],
            tiny_setup["ontology"],
            tiny_setup["index"],
            max_middle_coverage=0.5,
        )
        training = request.getfixturevalue("tiny_training")
        paper_set = assigner.build(training)
        cache = AnalyzedPaperCache(tiny_setup["corpus"], tiny_setup["index"].analyzer)
        scorer = PatternPrestige(assigner.pattern_sets, cache, middle_only=True)
        return scorer, paper_set

    def test_scores_topical_papers_higher(self, prestige_setup):
        scorer, paper_set = prestige_setup
        if "met" not in paper_set:
            pytest.skip("met context not built")
        raw = scorer.score_context(paper_set.context("met"))
        assert raw  # patterns matched something
        assert max(raw.values()) > 0

    def test_unknown_context_empty(self, prestige_setup, tiny_setup):
        scorer, _ = prestige_setup
        scorer_missing = PatternPrestige({}, AnalyzedPaperCache(tiny_setup["corpus"]))
        assert scorer_missing.score_context(Context("met", ("M1",))) == {}

    def test_decay_applied_via_score_all(self, prestige_setup, tiny_setup):
        scorer, _ = prestige_setup
        decayed_set = ContextPaperSet(
            tiny_setup["ontology"],
            [
                Context("met", ("M1", "M2", "M3")),
                Context(
                    "glu",
                    ("M1", "M2", "M3"),
                    inherited_from="met",
                    decay=0.5,
                ),
            ],
        )
        scores = scorer.score_all(decayed_set, propagate=False)
        met_scores = scores.of("met")
        glu_scores = scores.of("glu")
        if met_scores and glu_scores:
            assert max(glu_scores.values()) == pytest.approx(
                0.5 * max(met_scores.values())
            )
