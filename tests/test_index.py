"""Unit tests for the inverted index."""

import pytest

from repro.corpus.corpus import Corpus
from repro.corpus.paper import Paper, Section
from repro.index.inverted import InvertedIndex


@pytest.fixture
def corpus():
    return Corpus(
        [
            Paper(
                paper_id="P1",
                title="Gene expression",
                abstract="Expression of genes in yeast cells",
                body="The gene body text mentions expression twice: expression.",
                index_terms=("yeast",),
            ),
            Paper(
                paper_id="P2",
                title="Protein folding",
                abstract="Folding dynamics of proteins",
            ),
            Paper(paper_id="P3", title=""),
        ]
    )


@pytest.fixture
def index(corpus):
    return InvertedIndex().index_corpus(corpus)


class TestIndexing:
    def test_n_papers(self, index):
        assert index.n_papers == 3

    def test_postings_cover_sections(self, index):
        sections = {p.section for p in index.postings("express")}
        assert sections == {Section.TITLE, Section.ABSTRACT, Section.BODY}

    def test_document_frequency_counts_papers(self, index):
        # 'express' appears in several sections of one paper: df == 1.
        assert index.document_frequency("express") == 1

    def test_stemming_unifies_forms(self, index):
        # 'genes' and 'gene' both stem to 'gene'.
        assert index.document_frequency("gene") == 1
        assert index.term_frequency("P1", "gene") >= 2

    def test_papers_containing(self, index):
        assert index.papers_containing("fold") == ["P2"]
        assert index.papers_containing("nothing") == []

    def test_term_frequency_per_section(self, index):
        assert index.term_frequency("P1", "express", Section.BODY) == 2
        assert index.term_frequency("P1", "express", Section.TITLE) == 1

    def test_term_frequency_summed(self, index):
        assert index.term_frequency("P1", "express") == 4

    def test_term_frequency_unknown_paper(self, index):
        assert index.term_frequency("NOPE", "gene") == 0

    def test_empty_paper_indexed(self, index):
        assert index.paper_section_terms("P3", Section.TITLE) == {}

    def test_duplicate_indexing_rejected(self, index, corpus):
        with pytest.raises(ValueError, match="already indexed"):
            index.index_paper(corpus.paper("P1"))

    def test_index_terms_section(self, index):
        assert index.term_frequency("P1", "yeast", Section.INDEX_TERMS) == 1

    def test_contains(self, index):
        assert "gene" in index
        assert "zebra" not in index

    def test_stopwords_not_indexed(self, index):
        assert "the" not in index
        assert "of" not in index


class TestRemovePaper:
    @pytest.fixture
    def index(self, corpus):
        # Function-scoped: removal mutates.
        return InvertedIndex().index_corpus(corpus)

    def test_removed_paper_gone_everywhere(self, index):
        index.remove_paper("P1")
        assert index.n_papers == 2
        assert index.papers_containing("gene") == []
        assert index.term_frequency("P1", "express") == 0
        assert index.document_frequency("express") == 0

    def test_shared_terms_survive_for_other_papers(self, corpus):
        from repro.corpus.paper import Paper

        corpus2 = Corpus(list(corpus))
        corpus2.add(Paper(paper_id="P4", title="gene studies"))
        index = InvertedIndex().index_corpus(corpus2)
        assert index.document_frequency("gene") == 2
        index.remove_paper("P1")
        assert index.document_frequency("gene") == 1
        assert index.papers_containing("gene") == ["P4"]

    def test_unknown_paper_rejected(self, index):
        with pytest.raises(ValueError, match="not indexed"):
            index.remove_paper("NOPE")

    def test_reindex_after_removal(self, index, corpus):
        index.remove_paper("P1")
        index.index_paper(corpus.paper("P1"))
        assert index.n_papers == 3
        assert index.document_frequency("express") == 1

    def test_positional_index_removal(self, corpus):
        from repro.corpus.paper import Section
        from repro.index.positional import PositionalIndex

        index = PositionalIndex().index_corpus(corpus)
        index.remove_paper("P1")
        assert index.positions("P1", "gene", Section.TITLE) == []
        assert index.papers_containing_phrase(["gene", "express"]) == []

    def test_search_consistent_after_removal(self, corpus):
        from repro.index.search import KeywordSearchEngine

        index = InvertedIndex().index_corpus(corpus)
        engine = KeywordSearchEngine(index)
        assert any(h.paper_id == "P1" for h in engine.search("gene"))
        index.remove_paper("P1")
        assert all(h.paper_id != "P1" for h in engine.search("gene"))
