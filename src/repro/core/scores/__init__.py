"""The three prestige score functions of section 3.

- :mod:`repro.core.scores.base` -- the common interface, min-max
  normalisation, and hierarchy max-propagation.
- :mod:`repro.core.scores.citation` -- per-context PageRank (section 3.1).
- :mod:`repro.core.scores.text` -- representative-paper multi-facet
  similarity (section 3.2).
- :mod:`repro.core.scores.pattern` -- pattern matching scores
  (section 3.3).
"""

from repro.core.scores.base import (
    NORMALIZERS,
    PrestigeScoreFunction,
    PrestigeScores,
    max_normalize,
    min_max_normalize,
    propagate_max_over_descendants,
)
from repro.core.scores.citation import CitationPrestige
from repro.core.scores.hits_prestige import HitsPrestige
from repro.core.scores.pattern import PatternPrestige
from repro.core.scores.text import FacetWeights, TextPrestige

__all__ = [
    "PrestigeScoreFunction",
    "PrestigeScores",
    "NORMALIZERS",
    "max_normalize",
    "min_max_normalize",
    "propagate_max_over_descendants",
    "CitationPrestige",
    "HitsPrestige",
    "TextPrestige",
    "FacetWeights",
    "PatternPrestige",
]
