"""Unit tests for the composed Analyzer pipeline."""

from repro.text.analyze import Analyzer, default_analyzer


class TestAnalyzer:
    def test_full_pipeline(self):
        analyzer = Analyzer()
        assert analyzer.analyze("The binding of transcription factors") == [
            "bind",
            "transcript",
            "factor",
        ]

    def test_stopwords_removed(self):
        analyzer = Analyzer()
        assert analyzer.analyze("the and of is") == []

    def test_stemming_disabled(self):
        analyzer = Analyzer(stem=False)
        assert analyzer.analyze("binding factors") == ["binding", "factors"]

    def test_custom_stopwords(self):
        analyzer = Analyzer(stopwords=frozenset({"binding"}), stem=False)
        assert analyzer.analyze("binding factors") == ["factors"]

    def test_empty_stopword_set_keeps_everything(self):
        analyzer = Analyzer(stopwords=frozenset(), stem=False)
        assert analyzer.analyze("the cat") == ["the", "cat"]

    def test_min_token_length_filters_after_stemming(self):
        analyzer = Analyzer(min_token_length=5)
        # 'bind' (4 chars after stemming) is dropped, 'transcript' survives.
        result = analyzer.analyze("binding transcription")
        assert result == ["transcript"]

    def test_empty_text(self):
        assert Analyzer().analyze("") == []

    def test_analyze_tokens_skips_tokenisation(self):
        analyzer = Analyzer()
        assert analyzer.analyze_tokens(["binding", "the", "factors"]) == [
            "bind",
            "factor",
        ]

    def test_gene_symbols_survive(self):
        assert Analyzer().analyze("p53 regulates brca1") == ["p53", "regul", "brca1"]

    def test_stem_cache_consistency(self):
        analyzer = Analyzer()
        first = analyzer.analyze("binding binding binding")
        second = analyzer.analyze("binding")
        assert first == ["bind", "bind", "bind"]
        assert second == ["bind"]


class TestDefaultAnalyzer:
    def test_returns_shared_instance(self):
        assert default_analyzer() is default_analyzer()

    def test_shared_instance_works(self):
        assert default_analyzer().analyze("kinases") == ["kinas"]
