"""Figure 5.4 -- histogram of % contexts by separability standard deviation.

Paper series: one SD histogram per score function, for both context paper
sets (text/citation on the text-based set; text/citation/pattern on the
pattern-based set).

Expected shape: citation-based separability is the worst by a wide margin
(sparse per-context citation subgraphs produce few unique scores); text
and pattern concentrate at low SD.
"""

from conftest import write_result

from repro.eval.experiments import SeparabilityExperiment


def test_fig_5_4_separability_histograms(benchmark, pipeline, results_dir):
    text_set = pipeline.experiment_paper_set("text")
    pattern_set = pipeline.experiment_paper_set("pattern")

    def run():
        return {
            "text/text-set": SeparabilityExperiment(text_set).run(
                pipeline.prestige("text", "text")
            ),
            "citation/text-set": SeparabilityExperiment(text_set).run(
                pipeline.prestige("citation", "text")
            ),
            "text/pattern-set": SeparabilityExperiment(pattern_set).run(
                pipeline.prestige("text", "pattern")
            ),
            "pattern/pattern-set": SeparabilityExperiment(pattern_set).run(
                pipeline.prestige("pattern", "pattern")
            ),
            "citation/pattern-set": SeparabilityExperiment(pattern_set).run(
                pipeline.prestige("citation", "pattern")
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    from repro.eval.ascii_plot import ascii_histogram

    parts = []
    for arm, result in results.items():
        parts.append(
            f"[{arm}]\n{result.format_table()}\n{ascii_histogram(result.histogram)}"
        )
    write_result(results_dir, "fig_5_4", "\n\n".join(parts))

    # Citation separability is the worst on both paper sets.
    assert results["citation/text-set"].mean_sd() > results[
        "text/text-set"
    ].mean_sd(), "citation SD must exceed text SD (text set)"
    assert results["citation/pattern-set"].mean_sd() > results[
        "pattern/pattern-set"
    ].mean_sd(), "citation SD must exceed pattern SD (pattern set)"
    # Most citation contexts sit at very high deviation; text/pattern
    # contexts concentrate low (the paper's "< 15" observation).
    assert results["pattern/pattern-set"].percent_below(15.0) > results[
        "citation/pattern-set"
    ].percent_below(15.0)
