"""Ablation A3 -- which facets carry the text-based score function?

Section 3.2's Sim combines six facets.  This bench re-runs figure 5.1's
precision with facet groups removed (content-only, no-authors,
no-references, title-only) and reports the deltas, quantifying how much
the social facets (authors, references) add on top of content cosine.
"""

from conftest import write_result

from repro.core.scores.text import FacetWeights, TextPrestige
from repro.core.search import ContextSearchEngine
from repro.eval.metrics import precision

VARIANTS = {
    "full": FacetWeights(),
    "content-only": FacetWeights(authors=0.0, references=0.0),
    "no-authors": FacetWeights(authors=0.0),
    "no-references": FacetWeights(references=0.0),
    "title-only": FacetWeights(
        title=1.0, abstract=0.0, body=0.0, index_terms=0.0, authors=0.0,
        references=0.0,
    ),
}

THRESHOLD = 0.3


def test_ablation_text_facets(
    benchmark, pipeline, queries, precision_experiment, results_dir
):
    paper_set = pipeline.experiment_paper_set("text")

    def run():
        results = {}
        for name, weights in VARIANTS.items():
            scorer = TextPrestige(
                pipeline.corpus,
                pipeline.vectors,
                pipeline.citation_graph,
                pipeline.representatives,
                weights=weights,
            )
            scores = scorer.score_all(pipeline.text_paper_set)
            engine = ContextSearchEngine(
                pipeline.ontology,
                pipeline.text_paper_set,
                scores,
                pipeline.keyword_engine,
                w_prestige=pipeline.w_prestige,
                w_matching=pipeline.w_matching,
            )
            values = []
            for query in queries:
                answers = precision_experiment.answer_set(query)
                hits = engine.search(query)
                surviving = [
                    h.paper_id for h in hits if h.relevancy >= THRESHOLD
                ]
                value = precision(surviving, answers)
                values.append(0.0 if value is None else value)
            results[name] = sum(values) / len(values)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"average precision at relevancy threshold {THRESHOLD}:"]
    for name, value in results.items():
        delta = value - results["full"]
        lines.append(f"  {name:<14} {value:.3f}  (delta {delta:+.3f})")
    write_result(results_dir, "ablation_text_facets", "\n".join(lines))

    # Content facets are the backbone: title alone must not beat the full mix.
    assert results["title-only"] <= results["full"] + 0.05
    # Every variant stays a functioning ranking (sanity bound).
    for name, value in results.items():
        assert 0.0 <= value <= 1.0, name
