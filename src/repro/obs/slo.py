"""SLO declarations, rolling-window evaluation, error-budget arithmetic.

Every objective is expressed the same way: *a target fraction of good
events over a rolling window*.  That uniform shape covers the three
indicator kinds the query path cares about:

- ``latency`` -- an event is good when its per-query latency is at or
  under ``threshold_s``.  "p95 search latency <= 250ms" is exactly
  ``target=0.95, threshold_s=0.25``;
- ``error_rate`` -- an event is good when the request did not raise;
- ``cache_hit_rate`` -- goods are result-cache hits, totals are lookups.

Events come from the request-scoped telemetry layer
(:mod:`repro.obs.request`); evaluation is a pure function over them, so
``repro obs slo`` can re-render a dump and the ``/slo`` endpoint can
evaluate live with the same code.

Error budget: over a window with ``total`` events, the objective allows
``(1 - target) * total`` bad ones.  ``budget_remaining`` is the unspent
fraction of that allowance (clamped at 0 when overdrawn) -- the number
an operator pages on.

Declaration syntax (CLI ``--slo`` and the docs catalog)::

    <name>:latency:<threshold>(ms|s):<target>%[:<window>s]
    <name>:error_rate:<target>%[:<window>s]
    <name>:cache_hit_rate:<target>%[:<window>s]

e.g. ``search-p95:latency:250ms:95%:300s``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "DEFAULT_SLOS",
    "QueryEvent",
    "SLO",
    "SLOStatus",
    "evaluate_slo",
    "evaluate_slos",
    "format_slo_report",
    "parse_slo",
]

SLO_KINDS = ("latency", "error_rate", "cache_hit_rate")


@dataclass(frozen=True)
class QueryEvent:
    """One telemetry event: the SLO-relevant residue of a request.

    ``duration_s`` is per-query latency; a ``search_many`` batch records
    one event with ``queries`` > 1 and the batch's average per-query
    latency (individual worker timings live in the slow-query log's span
    trees).  ``ts`` is monotonic-clock seconds.
    """

    ts: float
    kind: str
    duration_s: float
    queries: int = 1
    error: bool = False
    cache_hits: int = 0
    cache_lookups: int = 0


@dataclass(frozen=True)
class SLO:
    """One declared objective over the rolling event window."""

    name: str
    kind: str  # one of SLO_KINDS
    target: float  # required fraction of good events, in (0, 1]
    threshold_s: Optional[float] = None  # latency kind only
    window_s: float = 300.0

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ValueError(
                f"SLO kind must be one of {SLO_KINDS}, got {self.kind!r}"
            )
        if not 0.0 < self.target <= 1.0:
            raise ValueError(f"SLO target must be in (0, 1], got {self.target}")
        if self.kind == "latency" and (
            self.threshold_s is None or self.threshold_s <= 0
        ):
            raise ValueError("latency SLOs need a positive threshold_s")
        if self.window_s <= 0:
            raise ValueError(f"SLO window must be positive, got {self.window_s}")

    def spec(self) -> str:
        """The declaration string that parses back to this SLO."""
        target = f"{self.target * 100.0:g}%"
        window = f"{self.window_s:g}s"
        if self.kind == "latency":
            return (
                f"{self.name}:latency:{self.threshold_s * 1000.0:g}ms:"
                f"{target}:{window}"
            )
        return f"{self.name}:{self.kind}:{target}:{window}"


#: The objectives ``repro obs serve`` tracks when none are declared.
DEFAULT_SLOS = (
    SLO("search-latency-p95", "latency", target=0.95, threshold_s=0.5),
    SLO("search-errors", "error_rate", target=0.999),
    SLO("result-cache-hits", "cache_hit_rate", target=0.25),
)


def _parse_target(token: str, spec: str) -> float:
    if not token.endswith("%"):
        raise ValueError(
            f"bad SLO spec {spec!r}: target {token!r} must end in '%'"
        )
    try:
        value = float(token[:-1])
    except ValueError:
        raise ValueError(f"bad SLO spec {spec!r}: target {token!r}") from None
    return value / 100.0


def _parse_window(token: str, spec: str) -> float:
    if not token.endswith("s"):
        raise ValueError(
            f"bad SLO spec {spec!r}: window {token!r} must end in 's'"
        )
    try:
        return float(token[:-1])
    except ValueError:
        raise ValueError(f"bad SLO spec {spec!r}: window {token!r}") from None


def parse_slo(spec: str) -> SLO:
    """Parse one ``--slo`` declaration string (syntax in module docs)."""
    tokens = [token.strip() for token in spec.split(":")]
    if len(tokens) < 3:
        raise ValueError(
            f"bad SLO spec {spec!r}: expected "
            "'<name>:<kind>[:<threshold>]:<target>%[:<window>s]'"
        )
    name, kind = tokens[0], tokens[1]
    if not name:
        raise ValueError(f"bad SLO spec {spec!r}: empty name")
    if kind == "latency":
        if len(tokens) < 4:
            raise ValueError(
                f"bad SLO spec {spec!r}: latency needs "
                "'<name>:latency:<threshold>(ms|s):<target>%[:<window>s]'"
            )
        threshold_token = tokens[2]
        try:
            if threshold_token.endswith("ms"):
                threshold_s = float(threshold_token[:-2]) / 1000.0
            elif threshold_token.endswith("s"):
                threshold_s = float(threshold_token[:-1])
            else:
                raise ValueError
        except ValueError:
            raise ValueError(
                f"bad SLO spec {spec!r}: threshold {threshold_token!r} "
                "must be '<number>ms' or '<number>s'"
            ) from None
        rest = tokens[3:]
    else:
        threshold_s = None
        rest = tokens[2:]
    target = _parse_target(rest[0], spec)
    window_s = _parse_window(rest[1], spec) if len(rest) > 1 else 300.0
    if len(rest) > 2:
        raise ValueError(
            f"bad SLO spec {spec!r}: trailing tokens {rest[2:]}; expected "
            "'<name>:<kind>[:<threshold>]:<target>%[:<window>s]'"
        )
    try:
        return SLO(
            name=name, kind=kind, target=target,
            threshold_s=threshold_s, window_s=window_s,
        )
    except ValueError as error:
        # Constructor invariants (unknown kind, target outside (0, 1],
        # non-positive window) re-raised with the offending spec attached.
        raise ValueError(f"bad SLO spec {spec!r}: {error}") from None


@dataclass(frozen=True)
class SLOStatus:
    """One objective evaluated over its window at a point in time."""

    slo: SLO
    total: int
    good: int
    bad: int
    #: Achieved fraction of good events (None with no data).
    sli: Optional[float]
    #: None with no data, else whether the objective currently holds.
    met: Optional[bool]
    #: Bad events the target allows over this window's totals.
    allowed_bad: float
    #: Unspent fraction of the error budget, clamped to [0, 1].
    budget_remaining: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.slo.name,
            "kind": self.slo.kind,
            "spec": self.slo.spec(),
            "target": self.slo.target,
            "threshold_s": self.slo.threshold_s,
            "window_s": self.slo.window_s,
            "total": self.total,
            "good": self.good,
            "bad": self.bad,
            "sli": self.sli,
            "met": self.met,
            "allowed_bad": self.allowed_bad,
            "budget_remaining": self.budget_remaining,
        }


def _tally(slo: SLO, events: Sequence[QueryEvent]) -> tuple:
    good = total = 0
    for event in events:
        if slo.kind == "cache_hit_rate":
            total += event.cache_lookups
            good += event.cache_hits
            continue
        total += event.queries
        if slo.kind == "error_rate":
            good += 0 if event.error else event.queries
        else:  # latency
            if not event.error and event.duration_s <= slo.threshold_s:
                good += event.queries
    return good, total


def evaluate_slo(
    slo: SLO, events: Sequence[QueryEvent], now: float
) -> SLOStatus:
    """Evaluate one objective over the events inside its window."""
    cutoff = now - slo.window_s
    windowed = [event for event in events if event.ts >= cutoff]
    good, total = _tally(slo, windowed)
    bad = total - good
    allowed_bad = (1.0 - slo.target) * total
    if total == 0:
        sli: Optional[float] = None
        met: Optional[bool] = None
        budget_remaining = 1.0
    else:
        sli = good / total
        met = sli >= slo.target
        if allowed_bad > 0.0:
            budget_remaining = max(0.0, 1.0 - bad / allowed_bad)
        else:  # target == 1.0: any bad event empties the budget
            budget_remaining = 1.0 if bad == 0 else 0.0
    return SLOStatus(
        slo=slo, total=total, good=good, bad=bad, sli=sli, met=met,
        allowed_bad=allowed_bad, budget_remaining=budget_remaining,
    )


def evaluate_slos(
    slos: Sequence[SLO], events: Sequence[QueryEvent], now: float
) -> List[SLOStatus]:
    return [evaluate_slo(slo, events, now) for slo in slos]


def format_slo_report(statuses: Sequence[Dict[str, Any]]) -> str:
    """ASCII table over status dicts (live or loaded from a dump)."""
    if not statuses:
        return "(no SLOs declared)"
    header = (
        f"{'slo':<22} {'kind':<15} {'window':>8} {'target':>8} "
        f"{'sli':>8} {'events':>7} {'bad':>6} {'budget':>7}  state"
    )
    lines = [header, "-" * len(header)]
    for status in statuses:
        sli = status.get("sli")
        met = status.get("met")
        state = "no data" if met is None else ("OK" if met else "VIOLATED")
        lines.append(
            f"{status.get('name', '?'):<22} "
            f"{status.get('kind', '?'):<15} "
            f"{status.get('window_s', 0):>7g}s "
            f"{status.get('target', 0) * 100.0:>7.2f}% "
            f"{('-' if sli is None else f'{sli * 100.0:.2f}%'):>8} "
            f"{status.get('total', 0):>7} "
            f"{status.get('bad', 0):>6} "
            f"{status.get('budget_remaining', 0) * 100.0:>6.1f}%  {state}"
        )
    return "\n".join(lines)
