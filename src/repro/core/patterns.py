"""Pattern construction, joining, scoring, and matching (section 3.3).

A (regular) pattern is three tuples ``<left, middle, right>`` of analysed
terms: ``middle`` is a *significant term* occurrence, ``left``/``right``
are the words surrounding it in a training paper.  Significant terms come
from two sources -- words/phrases of the context term itself, and frequent
phrases mined apriori-style from the context's training (annotation
evidence) papers.

Two extended pattern kinds are built "by virtually walking from one
pattern to another":

- **side-joined** -- P1's right tuple equals P2's left tuple; the join
  bridges them into one longer pattern.
- **middle-joined** -- P1's middle overlaps P2's left/right tuple; the two
  middles merge, weighted by each pattern's DegreeOfOverlap.

Pattern scores follow the published formula:

    RegularPatternScore = BaseScore * (1 / PaperCoverage)^t
    BaseScore = MiddleTypeScore + TotalTermScore
                + c * (PatternOccFreq + PatternPaperFreq)

with MiddleTypeScore graded high/higher/highest for frequent-only /
context-only / mixed middles; TotalTermScore summing the selectivity of
context-term words (selectivity = scarcity of the word across all
ontology term names); PaperCoverage the corpus-wide frequency of the
middle tuple; PatternOccFreq / PatternPaperFreq the pattern's and its
middle's frequency in the training papers.

Where the ICDE text is ambiguous (exact join tuple arithmetic, window
widths), the interpretation implemented here is documented inline; each
choice preserves the scoring semantics the evaluation relies on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.corpus.corpus import Corpus
from repro.corpus.paper import Section, TEXT_SECTIONS
from repro.index.backends.base import SearchBackend
from repro.obs import get_registry
from repro.ontology.ontology import Ontology
from repro.text.analyze import Analyzer, default_analyzer
from repro.text.phrases import FrequentPhraseMiner

Terms = Tuple[str, ...]


class PatternKind(str, enum.Enum):
    REGULAR = "regular"
    SIDE_JOINED = "side_joined"
    MIDDLE_JOINED = "middle_joined"


@dataclass(frozen=True)
class Pattern:
    """One scored pattern of a context."""

    left: Terms
    middle: Terms
    right: Terms
    kind: PatternKind
    score: float

    def key(self) -> Tuple[Terms, Terms, Terms]:
        return (self.left, self.middle, self.right)


@dataclass
class PatternSet:
    """All patterns of one context, ready for matching."""

    term_id: str
    patterns: List[Pattern] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.patterns)

    def middles(self) -> Set[Terms]:
        """Distinct middle tuples (the simplified-matching alphabet)."""
        return {p.middle for p in self.patterns}

    def by_first_middle_word(self) -> Dict[str, List[Pattern]]:
        """Index patterns by the first word of their middle, for scanning."""
        result: Dict[str, List[Pattern]] = {}
        for pattern in self.patterns:
            if pattern.middle:
                result.setdefault(pattern.middle[0], []).append(pattern)
        return result


class AnalyzedPaperCache:
    """Analysed token sequences per (paper, section), computed once."""

    def __init__(self, corpus: Corpus, analyzer: Optional[Analyzer] = None) -> None:
        self.corpus = corpus
        self.analyzer = analyzer if analyzer is not None else default_analyzer()
        self._cache: Dict[Tuple[str, Section], Terms] = {}
        # Plain ints (not registry counters): tokens() is too hot for a
        # lock per lookup.  score_paper_against_patterns flushes them.
        self.cache_hits = 0
        self.cache_misses = 0

    def tokens(self, paper_id: str, section: Section) -> Terms:
        key = (paper_id, section)
        cached = self._cache.get(key)
        if cached is None:
            self.cache_misses += 1
            text = self.corpus.paper(paper_id).section_text(section)
            cached = tuple(self.analyzer.analyze(text))
            self._cache[key] = cached
        else:
            self.cache_hits += 1
        return cached

    def all_tokens(self, paper_id: str) -> Terms:
        """Concatenation over textual sections, in section order."""
        parts: List[str] = []
        for section in TEXT_SECTIONS:
            parts.extend(self.tokens(paper_id, section))
        return tuple(parts)

    # -- (de)serialisation ------------------------------------------------------

    def warm(self) -> None:
        """Analyse every (paper, section) pair once, filling the cache."""
        for paper_id in self.corpus.paper_ids():
            for section in TEXT_SECTIONS:
                self.tokens(paper_id, section)

    def warm_paper(self, paper_id: str) -> None:
        """Analyse one paper's sections (incremental counterpart of warm)."""
        for section in TEXT_SECTIONS:
            self.tokens(paper_id, section)

    def evict_paper(self, paper_id: str) -> None:
        """Drop one paper's cached token sequences (idempotent).

        Used when a paper leaves the corpus: its entries would otherwise
        pin dead token tuples and could mask a later re-add with changed
        text under the same id.
        """
        for section in TEXT_SECTIONS:
            self._cache.pop((paper_id, section), None)

    def to_payload(self) -> Dict[str, Dict[str, List[str]]]:
        """JSON-able snapshot of every cached token sequence."""
        papers: Dict[str, Dict[str, List[str]]] = {}
        for (paper_id, section), tokens in self._cache.items():
            papers.setdefault(paper_id, {})[section.value] = list(tokens)
        return {"papers": papers}

    @classmethod
    def from_payload(
        cls, payload: Mapping, corpus: Corpus, analyzer: Optional[Analyzer] = None
    ) -> "AnalyzedPaperCache":
        """Rebuild a warmed cache from :meth:`to_payload` output."""
        cache = cls(corpus, analyzer)
        for paper_id, sections in payload["papers"].items():
            for section_value, tokens in sections.items():
                cache._cache[(paper_id, Section(section_value))] = tuple(tokens)
        return cache


def find_occurrences(tokens: Sequence[str], phrase: Terms) -> List[int]:
    """Start offsets of contiguous ``phrase`` occurrences in ``tokens``."""
    if not phrase or len(tokens) < len(phrase):
        return []
    first = phrase[0]
    n = len(phrase)
    hits = []
    for i, token in enumerate(tokens[: len(tokens) - n + 1]):
        if token == first and tuple(tokens[i : i + n]) == phrase:
            hits.append(i)
    return hits


class PatternSetBuilder:
    """Builds the scored :class:`PatternSet` of each context.

    Parameters
    ----------
    window:
        Width (in analysed terms) of the left/right surround captured
        around each significant-term occurrence.
    min_phrase_support / max_phrase_length:
        Apriori miner knobs for frequent-phrase significant terms.
    max_regular_patterns:
        Keep only the top-scored regular patterns per context (caps the
        quadratic join stage and matching cost).
    max_joined_pairs:
        Cap on pattern pairs examined for each extended-join kind.
    coverage_exponent (t) / frequency_coefficient (c):
        The ``t`` and ``c`` constants of the scoring formula.
    build_extended:
        The simplified builder of section 4 sets this False ("extended
        patterns were not used").
    """

    def __init__(
        self,
        ontology: Ontology,
        corpus: Corpus,
        index: SearchBackend,
        token_cache: Optional[AnalyzedPaperCache] = None,
        window: int = 2,
        min_phrase_support: int = 2,
        max_phrase_length: int = 3,
        max_regular_patterns: int = 40,
        max_joined_pairs: int = 400,
        coverage_exponent: float = 0.35,
        frequency_coefficient: float = 1.0,
        build_extended: bool = True,
    ) -> None:
        self.ontology = ontology
        self.corpus = corpus
        self.index = index
        self.tokens = (
            token_cache
            if token_cache is not None
            else AnalyzedPaperCache(corpus, index.analyzer)
        )
        self.window = window
        self.min_phrase_support = min_phrase_support
        self.max_phrase_length = max_phrase_length
        self.max_regular_patterns = max_regular_patterns
        self.max_joined_pairs = max_joined_pairs
        self.coverage_exponent = coverage_exponent
        self.frequency_coefficient = frequency_coefficient
        self.build_extended = build_extended
        self._term_word_df: Optional[Dict[str, int]] = None
        self._word_paper_cache: Dict[str, frozenset] = {}
        self._miner = FrequentPhraseMiner(
            min_support=min_phrase_support, max_length=max_phrase_length
        )

    # -- public API -----------------------------------------------------------

    def build(self, term_id: str, training_paper_ids: Sequence[str]) -> PatternSet:
        """Construct, join, and score the pattern set of one context."""
        registry = get_registry()
        context_words = self._context_term_words(term_id)
        training_tokens = [
            self.tokens.all_tokens(pid) for pid in training_paper_ids
        ]
        significant = self._significant_terms(term_id, training_tokens)
        if not significant:
            return PatternSet(term_id=term_id)

        raw = self._extract_regular(training_tokens, significant)
        if not raw:
            return PatternSet(term_id=term_id)

        patterns = self._score_regular(
            term_id, raw, context_words, significant, len(training_tokens)
        )
        registry.counter("patterns.builder.mined").inc(len(patterns))
        patterns.sort(key=lambda p: (-p.score, p.key()))
        patterns = patterns[: self.max_regular_patterns]
        if self.build_extended:
            patterns.extend(self._side_joined(patterns))
            patterns.extend(self._middle_joined(patterns))
        registry.counter("patterns.builder.kept").inc(len(patterns))
        registry.gauge("patterns.tokens.cache_hits").set(self.tokens.cache_hits)
        registry.gauge("patterns.tokens.cache_misses").set(
            self.tokens.cache_misses
        )
        return PatternSet(term_id=term_id, patterns=patterns)

    # -- significant terms -------------------------------------------------------

    def _context_term_words(self, term_id: str) -> Terms:
        """Analysed words of the context term name (stemmed, no stopwords)."""
        name = self.ontology.term(term_id).name
        return tuple(self.tokens.analyzer.analyze(name))

    def _significant_terms(
        self, term_id: str, training_tokens: Sequence[Terms]
    ) -> Dict[Terms, str]:
        """Map of significant phrase -> source ('context'/'frequent'/'both').

        Source (i): every analysed word of the context term and the full
        analysed name phrase.  Source (ii): apriori frequent phrases of the
        training papers.  The apriori-style *combination* happens naturally:
        multiword phrases only survive if their sub-phrases are frequent.
        """
        result: Dict[Terms, str] = {}
        context_words = self._context_term_words(term_id)
        for word in context_words:
            result[(word,)] = "context"
        if len(context_words) > 1:
            result[context_words] = "context"
        for phrase in self._miner.mine(list(training_tokens)):
            if phrase.words in result:
                result[phrase.words] = "both"
            else:
                result[phrase.words] = "frequent"
        return result

    # -- regular pattern extraction ---------------------------------------------

    def _extract_regular(
        self,
        training_tokens: Sequence[Terms],
        significant: Mapping[Terms, str],
    ) -> Dict[Tuple[Terms, Terms, Terms], Dict[str, int]]:
        """Occurrences of <left, middle, right> windows around significant terms.

        Returns pattern key -> {'occ': total occurrences,
        'papers': distinct training papers containing the pattern}.
        """
        counts: Dict[Tuple[Terms, Terms, Terms], Dict[str, int]] = {}
        # Scan longest phrases first so nested phrases both count; an
        # occurrence of "rna polymerase" also contains "rna".
        phrases = sorted(significant, key=len, reverse=True)
        for doc_index, tokens in enumerate(training_tokens):
            seen_here: Set[Tuple[Terms, Terms, Terms]] = set()
            for phrase in phrases:
                for start in find_occurrences(tokens, phrase):
                    left = tuple(tokens[max(start - self.window, 0) : start])
                    end = start + len(phrase)
                    right = tuple(tokens[end : end + self.window])
                    key = (left, phrase, right)
                    entry = counts.setdefault(key, {"occ": 0, "papers": 0})
                    entry["occ"] += 1
                    if key not in seen_here:
                        entry["papers"] += 1
                        seen_here.add(key)
        return counts

    # -- scoring -------------------------------------------------------------------

    def _score_regular(
        self,
        term_id: str,
        raw: Mapping[Tuple[Terms, Terms, Terms], Mapping[str, int]],
        context_words: Terms,
        significant: Mapping[Terms, str],
        n_training: int,
    ) -> List[Pattern]:
        context_word_set = set(context_words)
        middle_paper_freq = self._middle_training_frequency(raw, n_training)
        patterns: List[Pattern] = []
        for (left, middle, right), stats in raw.items():
            middle_type = self._middle_type_score(middle, context_word_set, significant)
            total_term = sum(
                self._word_selectivity(word)
                for word in middle
                if word in context_word_set
            )
            occ_freq = stats["occ"] / max(n_training, 1)
            paper_freq = middle_paper_freq[middle]
            base = middle_type + total_term + self.frequency_coefficient * (
                occ_freq + paper_freq
            )
            coverage = self._paper_coverage(middle)
            score = base * (1.0 / coverage) ** self.coverage_exponent
            patterns.append(
                Pattern(
                    left=left,
                    middle=middle,
                    right=right,
                    kind=PatternKind.REGULAR,
                    score=score,
                )
            )
        return patterns

    @staticmethod
    def _middle_type_score(
        middle: Terms,
        context_words: Set[str],
        significant: Mapping[Terms, str],
    ) -> float:
        """High (1) frequent-only, higher (2) context-only, highest (3) both."""
        source = significant.get(middle)
        if source == "both":
            return 3.0
        has_context = any(word in context_words for word in middle)
        if source == "frequent" and has_context:
            return 3.0
        if has_context:
            return 2.0
        return 1.0

    def _word_selectivity(self, word: str) -> float:
        """Scarcity of ``word`` across all ontology term names, in (0, 1].

        A word appearing in one term name has selectivity 1; a word in
        every term name approaches 0.  This is the "occurrence frequency
        among all context terms" of scoring criterion (2).
        """
        if self._term_word_df is None:
            df: Dict[str, int] = {}
            for tid in self.ontology.term_ids():
                words = set(self.tokens.analyzer.analyze(self.ontology.term(tid).name))
                for w in words:
                    df[w] = df.get(w, 0) + 1
            self._term_word_df = df
        count = self._term_word_df.get(word, 1)
        return 1.0 / count

    def _middle_training_frequency(
        self,
        raw: Mapping[Tuple[Terms, Terms, Terms], Mapping[str, int]],
        n_training: int,
    ) -> Dict[Terms, float]:
        """Fraction of training papers whose patterns use each middle."""
        papers_by_middle: Dict[Terms, int] = {}
        for (_, middle, __), stats in raw.items():
            papers_by_middle[middle] = papers_by_middle.get(middle, 0) + stats["papers"]
        return {
            middle: min(count / max(n_training, 1), 1.0)
            for middle, count in papers_by_middle.items()
        }

    def _paper_coverage(self, middle: Terms) -> float:
        """Fraction of all corpus papers containing the middle tuple.

        Computed conjunctively from the inverted index (papers containing
        *all* middle words) -- an upper bound on exact phrase coverage
        that is cheap and order-preserving for the (1/coverage)^t factor.
        Floors at one paper so the factor stays finite.
        """
        n_papers = max(self.index.n_papers, 1)
        return max(len(self.papers_containing_all(middle)), 1) / n_papers

    def papers_containing_all(self, words: Terms) -> frozenset:
        """Corpus papers containing every word of ``words`` (cached lookups)."""
        if not words:
            return frozenset()
        sets = []
        for word in words:
            cached = self._word_paper_cache.get(word)
            if cached is None:
                cached = frozenset(self.index.papers_containing(word))
                self._word_paper_cache[word] = cached
            sets.append(cached)
        sets.sort(key=len)
        result = set(sets[0])
        for other in sets[1:]:
            result &= other
            if not result:
                break
        return frozenset(result)

    # -- extended patterns ------------------------------------------------------------

    def _side_joined(self, patterns: Sequence[Pattern]) -> List[Pattern]:
        """Join P1, P2 where P1.right == P2.left (non-empty overlap).

        Joined pattern: <P1.left, P1.middle + P1.right + P2.middle,
        P2.right>, scored (Score(P1) + Score(P2))^2 per section 3.3.
        """
        joined: List[Pattern] = []
        by_left: Dict[Terms, List[Pattern]] = {}
        for pattern in patterns:
            if pattern.left:
                by_left.setdefault(pattern.left, []).append(pattern)
        pairs_examined = 0
        seen: Set[Tuple[Terms, Terms, Terms]] = set()
        for p1 in patterns:
            if not p1.right:
                continue
            for p2 in by_left.get(p1.right, ()):
                if p1 is p2:
                    continue
                pairs_examined += 1
                if pairs_examined > self.max_joined_pairs:
                    return joined
                middle = p1.middle + p1.right + p2.middle
                key = (p1.left, middle, p2.right)
                if key in seen:
                    continue
                seen.add(key)
                joined.append(
                    Pattern(
                        left=p1.left,
                        middle=middle,
                        right=p2.right,
                        kind=PatternKind.SIDE_JOINED,
                        score=(p1.score + p2.score) ** 2,
                    )
                )
        return joined

    def _middle_joined(self, patterns: Sequence[Pattern]) -> List[Pattern]:
        """Join P1, P2 where P1.middle overlaps P2.left/right.

        Joined middle merges both middles (P2's new words appended);
        score = DOO1 * Score(P1) + DOO2 * Score(P2) where DOOi is the
        proportion of pattern i's middle contained in the *other*
        pattern's left/right tuples.
        """
        joined: List[Pattern] = []
        pairs_examined = 0
        seen: Set[Tuple[Terms, Terms, Terms]] = set()
        for p1 in patterns:
            middle_set = set(p1.middle)
            for p2 in patterns:
                if p1 is p2:
                    continue
                pairs_examined += 1
                if pairs_examined > self.max_joined_pairs:
                    return joined
                p2_sides = set(p2.left) | set(p2.right)
                overlap1 = middle_set & p2_sides
                if not overlap1:
                    continue
                p1_sides = set(p1.left) | set(p1.right)
                overlap2 = set(p2.middle) & p1_sides
                doo1 = len(overlap1) / max(len(p1.middle), 1)
                doo2 = len(overlap2) / max(len(p2.middle), 1)
                middle = p1.middle + tuple(
                    w for w in p2.middle if w not in middle_set
                )
                key = (p1.left, middle, p2.right)
                if key in seen:
                    continue
                seen.add(key)
                joined.append(
                    Pattern(
                        left=p1.left,
                        middle=middle,
                        right=p2.right,
                        kind=PatternKind.MIDDLE_JOINED,
                        score=doo1 * p1.score + doo2 * p2.score,
                    )
                )
        return joined


#: Section weights for matching strength M(P, pt): a match in the title or
#: index terms speaks louder than one deep in the body (criterion (1) of
#: the matching-strength definition).
MATCH_SECTION_WEIGHTS: Mapping[Section, float] = {
    Section.TITLE: 1.0,
    Section.INDEX_TERMS: 0.9,
    Section.ABSTRACT: 0.8,
    Section.BODY: 0.6,
}


def match_strength(
    pattern: Pattern,
    tokens: Sequence[str],
    start: int,
    section: Section,
) -> float:
    """M(P, pt) for one occurrence of ``pattern.middle`` at ``start``.

    Combines (1) the section weight and (2) the similarity between the
    pattern's surround and the matching phrase's observed surround
    (Jaccard over the left and right windows; a middle-only match still
    counts at half strength).
    """
    weight = MATCH_SECTION_WEIGHTS.get(section, 0.6)
    window = max(len(pattern.left), len(pattern.right), 1)
    observed_left = set(tokens[max(start - window, 0) : start])
    end = start + len(pattern.middle)
    observed_right = set(tokens[end : end + window])
    side_similarity = 0.0
    sides = 0
    if pattern.left:
        sides += 1
        union = set(pattern.left) | observed_left
        side_similarity += (
            len(set(pattern.left) & observed_left) / len(union) if union else 0.0
        )
    if pattern.right:
        sides += 1
        union = set(pattern.right) | observed_right
        side_similarity += (
            len(set(pattern.right) & observed_right) / len(union) if union else 0.0
        )
    surround = side_similarity / sides if sides else 0.0
    return weight * (0.5 + 0.5 * surround)


def score_paper_against_patterns(
    pattern_set: PatternSet,
    token_cache: AnalyzedPaperCache,
    paper_id: str,
    middle_only: bool = False,
) -> float:
    """Score(P) = sum over matching patterns of Score(pt) * M(P, pt).

    With ``middle_only`` (the simplified variant of section 4), matching
    strength reduces to the section weight of each middle-tuple hit.
    """
    total = 0.0
    by_first = pattern_set.by_first_middle_word()
    if not by_first:
        return 0.0
    for section in TEXT_SECTIONS:
        tokens = token_cache.tokens(paper_id, section)
        if not tokens:
            continue
        section_weight = MATCH_SECTION_WEIGHTS.get(section, 0.6)
        for i, token in enumerate(tokens):
            for pattern in by_first.get(token, ()):
                n = len(pattern.middle)
                if tuple(tokens[i : i + n]) != pattern.middle:
                    continue
                if middle_only:
                    total += pattern.score * section_weight
                else:
                    total += pattern.score * match_strength(
                        pattern, tokens, i, section
                    )
    return total
