"""Unit tests for MEDLINE XML parsing."""

import io

import pytest

from repro.ingest.medline import iter_medline_papers, pmid_id, read_medline_xml

SAMPLE_XML = """<?xml version="1.0"?>
<PubmedArticleSet>
  <PubmedArticle>
    <MedlineCitation>
      <PMID Version="1">100</PMID>
      <DateCompleted><Year>1999</Year></DateCompleted>
      <Article>
        <Journal><JournalIssue><PubDate><Year>1998</Year></PubDate></JournalIssue></Journal>
        <ArticleTitle>Glucose metabolism in yeast</ArticleTitle>
        <Abstract>
          <AbstractText>We measured glucose flux.</AbstractText>
          <AbstractText Label="METHODS">Mass spectrometry was used.</AbstractText>
        </Abstract>
        <AuthorList>
          <Author><LastName>Smith</LastName><Initials>JA</Initials></Author>
          <Author><CollectiveName>The Yeast Consortium</CollectiveName></Author>
        </AuthorList>
      </Article>
      <MeshHeadingList>
        <MeshHeading><DescriptorName UI="D005947">Glucose</DescriptorName></MeshHeading>
        <MeshHeading><DescriptorName UI="D008660">Metabolism</DescriptorName></MeshHeading>
      </MeshHeadingList>
    </MedlineCitation>
    <PubmedData>
      <ReferenceList>
        <Reference>
          <ArticleIdList><ArticleId IdType="pubmed">99</ArticleId></ArticleIdList>
        </Reference>
        <Reference>
          <ArticleIdList><ArticleId IdType="doi">10.1/xyz</ArticleId></ArticleIdList>
        </Reference>
      </ReferenceList>
    </PubmedData>
  </PubmedArticle>
  <PubmedArticle>
    <MedlineCitation>
      <PMID>99</PMID>
      <Article>
        <ArticleTitle>Earlier work</ArticleTitle>
      </Article>
    </MedlineCitation>
  </PubmedArticle>
  <PubmedArticle>
    <MedlineCitation>
      <Article><ArticleTitle>No PMID, must be skipped</ArticleTitle></Article>
    </MedlineCitation>
  </PubmedArticle>
</PubmedArticleSet>
"""


@pytest.fixture
def corpus():
    return read_medline_xml(io.StringIO(SAMPLE_XML))


class TestPmidId:
    def test_bare_number(self):
        assert pmid_id("123") == "PMID:123"

    def test_already_prefixed(self):
        assert pmid_id("PMID:123") == "PMID:123"
        assert pmid_id("pmid:123") == "PMID:123"

    def test_whitespace(self):
        assert pmid_id("  42 ") == "PMID:42"


class TestReadMedlineXml:
    def test_paper_count_skips_pmidless(self, corpus):
        assert len(corpus) == 2

    def test_field_mapping(self, corpus):
        paper = corpus.paper("PMID:100")
        assert paper.title == "Glucose metabolism in yeast"
        assert "We measured glucose flux." in paper.abstract
        assert "METHODS: Mass spectrometry was used." in paper.abstract
        assert paper.index_terms == ("Glucose", "Metabolism")
        assert paper.authors == ("JA Smith", "The Yeast Consortium")
        assert paper.year == 1998  # PubDate preferred over DateCompleted

    def test_references_pubmed_only(self, corpus):
        paper = corpus.paper("PMID:100")
        assert paper.references == ("PMID:99",)
        # And the reference resolves within this corpus.
        assert corpus.references_of("PMID:100") == ("PMID:99",)

    def test_default_year_applied(self, corpus):
        assert corpus.paper("PMID:99").year == 2000

    def test_body_empty(self, corpus):
        assert corpus.paper("PMID:100").body == ""

    def test_duplicate_pmids_keep_first(self):
        duplicated = SAMPLE_XML.replace(
            "<ArticleTitle>Earlier work</ArticleTitle>",
            "<ArticleTitle>Earlier work</ArticleTitle>",
        )
        # Build an export with article 99 twice.
        doubled = duplicated.replace(
            "</PubmedArticleSet>",
            """<PubmedArticle><MedlineCitation><PMID>99</PMID>
            <Article><ArticleTitle>Duplicate of 99</ArticleTitle></Article>
            </MedlineCitation></PubmedArticle></PubmedArticleSet>""",
        )
        corpus = read_medline_xml(io.StringIO(doubled))
        assert corpus.paper("PMID:99").title == "Earlier work"

    def test_iterator_streams(self):
        papers = list(iter_medline_papers(io.StringIO(SAMPLE_XML)))
        assert [p.paper_id for p in papers] == ["PMID:100", "PMID:99"]

    def test_reads_from_path(self, tmp_path):
        path = tmp_path / "export.xml"
        path.write_text(SAMPLE_XML, encoding="utf-8")
        assert len(read_medline_xml(str(path))) == 2
