"""Tests for ranking explanations, precomputed loading, and subontology."""

import pytest

from repro.citations.graph import CitationGraph
from repro.core.context import Context, ContextPaperSet
from repro.core.scores import TextPrestige
from repro.core.search import ContextSearchEngine
from repro.core.vectors import PaperVectorStore
from repro.index.inverted import InvertedIndex
from repro.index.search import KeywordSearchEngine
from repro.ontology.ontology import Ontology, OntologyError
from repro.ontology.term import Term


@pytest.fixture(scope="module")
def engine(request):
    corpus = request.getfixturevalue("tiny_corpus")
    ontology = request.getfixturevalue("tiny_ontology")
    index = InvertedIndex().index_corpus(corpus)
    vectors = PaperVectorStore(corpus, index.analyzer)
    graph = CitationGraph.from_corpus(corpus)
    paper_set = ContextPaperSet(
        ontology,
        [
            Context("met", ("M1", "M2", "M3")),
            Context("sig", ("S1", "S2")),
        ],
    )
    prestige = TextPrestige(
        corpus, vectors, graph, {"met": "M1", "sig": "S1"}
    ).score_all(paper_set)
    return ContextSearchEngine(
        ontology, paper_set, prestige, KeywordSearchEngine(index)
    )


class TestExplain:
    def test_retrievable_paper(self, engine):
        explanation = engine.explain("glucose metabolic", "M1")
        assert explanation.retrievable
        assert explanation.matching > 0.0
        assert explanation.best_relevancy is not None
        context_ids = [row[0] for row in explanation.in_selected_contexts]
        assert "met" in context_ids

    def test_relevancy_decomposition_consistent(self, engine):
        explanation = engine.explain("glucose metabolic", "M1")
        for context_id, prestige, relevancy in explanation.in_selected_contexts:
            assert relevancy == pytest.approx(
                0.5 * prestige + 0.5 * explanation.matching
            )

    def test_explains_agreement_with_search(self, engine):
        hits = {h.paper_id: h for h in engine.search("glucose metabolic")}
        explanation = engine.explain("glucose metabolic", "M1")
        assert explanation.best_relevancy == pytest.approx(hits["M1"].relevancy)

    def test_paper_outside_selected_contexts(self, engine):
        explanation = engine.explain("glucose metabolic", "X1")
        assert not explanation.retrievable
        assert explanation.in_selected_contexts == ()

    def test_format_renders(self, engine):
        text = engine.explain("glucose metabolic", "M1").format()
        assert "text matching score" in text
        assert "prestige=" in text
        unretrievable = engine.explain("glucose metabolic", "X1").format()
        assert "not retrievable" in unretrievable


class TestSubontology:
    @pytest.fixture
    def mixed(self):
        return Ontology(
            [
                Term("bp_root", "process", namespace="biological_process"),
                Term(
                    "bp_child",
                    "x process",
                    namespace="biological_process",
                    parent_ids=("bp_root",),
                ),
                Term("mf_root", "activity", namespace="molecular_function"),
                Term(
                    "weird",
                    "cross-aspect child",
                    namespace="molecular_function",
                    parent_ids=("bp_root", "mf_root"),
                ),
            ]
        )

    def test_restricts_terms(self, mixed):
        bp = mixed.subontology("biological_process")
        assert set(bp.term_ids()) == {"bp_root", "bp_child"}

    def test_cross_namespace_parents_dropped(self, mixed):
        mf = mixed.subontology("molecular_function")
        assert mf.parents("weird") == ["mf_root"]

    def test_unknown_namespace_raises(self, mixed):
        with pytest.raises(OntologyError, match="no terms"):
            mixed.subontology("cellular_component")

    def test_namespaces_listed(self, mixed):
        assert mixed.namespaces() == [
            "biological_process",
            "molecular_function",
        ]

    def test_levels_recomputed(self, mixed):
        mf = mixed.subontology("molecular_function")
        assert mf.level("weird") == 2


class TestLoadPrecomputed:
    def test_round_trip_through_pipeline(self, small_dataset, tmp_path):
        from repro.core.io import write_context_paper_set, write_prestige_scores
        from repro.pipeline import Pipeline

        source = Pipeline.from_dataset(small_dataset, min_context_size=3)
        write_context_paper_set(
            source.text_paper_set, tmp_path / "text_paper_set.json"
        )
        write_prestige_scores(
            source.prestige("text", "text"), tmp_path / "scores_text_text.json"
        )

        fresh = Pipeline.from_dataset(small_dataset, min_context_size=3)
        loaded = fresh.load_precomputed(tmp_path)
        assert loaded == 2
        # The loaded artefacts short-circuit the builds and match exactly.
        assert fresh.text_paper_set.context_ids() == (
            source.text_paper_set.context_ids()
        )
        original = source.prestige("text", "text")
        restored = fresh.prestige("text", "text")
        for context_id in original.context_ids():
            assert restored.of(context_id) == pytest.approx(
                original.of(context_id)
            )

    def test_representatives_rederived_after_load(self, small_dataset, tmp_path):
        from repro.core.io import write_context_paper_set
        from repro.pipeline import Pipeline

        source = Pipeline.from_dataset(small_dataset, min_context_size=3)
        write_context_paper_set(
            source.text_paper_set, tmp_path / "text_paper_set.json"
        )
        fresh = Pipeline.from_dataset(small_dataset, min_context_size=3)
        fresh.load_precomputed(tmp_path)
        assert fresh.representatives == source.representatives

    def test_empty_directory_loads_nothing(self, small_dataset, tmp_path):
        from repro.pipeline import Pipeline

        pipeline = Pipeline.from_dataset(small_dataset)
        assert pipeline.load_precomputed(tmp_path) == 0
