"""Unit tests for repro.text.tokenize."""

import pytest

from repro.text.tokenize import (
    ngrams,
    sentences,
    sliding_windows,
    token_counts,
    tokenize,
)


class TestTokenize:
    def test_basic_words(self):
        assert tokenize("gene expression analysis") == [
            "gene",
            "expression",
            "analysis",
        ]

    def test_lowercases_by_default(self):
        assert tokenize("DNA Repair") == ["dna", "repair"]

    def test_lowercase_disabled(self):
        assert tokenize("DNA Repair", lowercase=False) == ["DNA", "Repair"]

    def test_keeps_internal_hyphens(self):
        assert tokenize("wild-type knock-out") == ["wild-type", "knock-out"]

    def test_keeps_gene_style_alphanumerics(self):
        assert tokenize("p53 and BRCA1 interact") == ["p53", "and", "brca1", "interact"]

    def test_keeps_internal_apostrophes(self):
        assert tokenize("crick's hypothesis") == ["crick's", "hypothesis"]

    def test_strips_punctuation(self):
        assert tokenize("binding, (regulation); signal!") == [
            "binding",
            "regulation",
            "signal",
        ]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("   \t\n ") == []

    def test_leading_trailing_hyphen_not_part_of_token(self):
        assert tokenize("-prefix suffix-") == ["prefix", "suffix"]


class TestSentences:
    def test_basic_split(self):
        assert sentences("First point. Second point!  Third?") == [
            "First point.",
            "Second point!",
            "Third?",
        ]

    def test_no_terminator(self):
        assert sentences("unterminated text") == ["unterminated text"]

    def test_empty(self):
        assert sentences("") == []

    def test_repeated_terminators(self):
        assert sentences("Really?!  Yes.") == ["Really?!", "Yes."]


class TestNgrams:
    def test_bigrams(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]

    def test_unigrams(self):
        assert ngrams(["a", "b"], 1) == [("a",), ("b",)]

    def test_n_longer_than_input(self):
        assert ngrams(["a"], 2) == []

    def test_n_equal_to_input(self):
        assert ngrams(["a", "b"], 2) == [("a", "b")]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)


class TestSlidingWindows:
    def test_windows_with_positions(self):
        result = list(sliding_windows(["a", "b", "c", "d"], size=2))
        assert result == [(0, ["a", "b"]), (1, ["b", "c"]), (2, ["c", "d"])]

    def test_step(self):
        result = list(sliding_windows(["a", "b", "c", "d", "e"], size=2, step=2))
        assert [start for start, _ in result] == [0, 2]

    def test_too_short_input(self):
        assert list(sliding_windows(["a"], size=3)) == []

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            list(sliding_windows(["a"], size=0))

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            list(sliding_windows(["a", "b"], size=1, step=0))


class TestTokenCounts:
    def test_counts(self):
        assert token_counts(["a", "b", "a"]) == {"a": 2, "b": 1}

    def test_empty(self):
        assert token_counts([]) == {}
