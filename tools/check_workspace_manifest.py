#!/usr/bin/env python3
"""Validate the workspace artifact registry and (optionally) a manifest.

Default mode checks the registry itself -- the invariants a bad edit to
``repro/workspace/artifact.py`` would break silently:

- every declared dependency names a registered artifact;
- the dependency graph is acyclic;
- artifact file names are unique (two nodes must never share a file);
- every artifact carries callable build/save/load/install codecs;
- every ``config_keys`` entry is a real ``Pipeline`` constructor
  parameter (a typo would silently stop invalidating anything).

With ``--manifest PATH`` it additionally validates a built workspace's
``manifest.json``: schema (via ``validate_manifest_payload``), every
entry names a registered artifact, recorded schema versions and
dependency edges match the registry, every referenced artifact file
exists on disk, and -- when the workspace carries generations -- the
lineage chain is sound: each archived ``manifest.gen-<N>.json`` hashes
to the ``parent`` fingerprint its child recorded and generation numbers
descend monotonically by one (via ``read_generation_chain``).

Exit status 1 when any violation is found; intended for tools/ci.sh.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.pipeline import Pipeline  # noqa: E402
from repro.workspace import (  # noqa: E402
    ARTIFACTS,
    read_generation_chain,
    topological_order,
    validate_manifest_payload,
)


def check_registry() -> list:
    problems = []
    pipeline_params = set(inspect.signature(Pipeline.__init__).parameters)
    filenames = {}
    for name, artifact in ARTIFACTS.items():
        if name != artifact.name:
            problems.append(f"{name}: registry key != artifact.name {artifact.name!r}")
        for dep in artifact.deps:
            if dep not in ARTIFACTS:
                problems.append(f"{name}: unknown dependency {dep!r}")
        if artifact.filename in filenames:
            problems.append(
                f"{name}: file {artifact.filename!r} already used by "
                f"{filenames[artifact.filename]!r}"
            )
        filenames[artifact.filename] = name
        for hook in ("build", "save", "load", "install", "installed"):
            if not callable(getattr(artifact, hook)):
                problems.append(f"{name}: {hook} is not callable")
        if artifact.schema_version < 1:
            problems.append(f"{name}: schema_version must be >= 1")
        for key in artifact.config_keys:
            if key not in pipeline_params:
                problems.append(
                    f"{name}: config key {key!r} is not a Pipeline parameter"
                )
    try:
        order = topological_order()
        if sorted(order) != sorted(ARTIFACTS):
            problems.append("topological order does not cover the registry")
    except (KeyError, ValueError) as error:
        problems.append(f"dependency graph invalid: {error}")
    return problems


def check_manifest(path: Path) -> list:
    problems = []
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        return [f"{path}: unreadable ({error})"]
    try:
        validate_manifest_payload(payload, origin=str(path))
    except ValueError as error:
        return [str(error)]
    workspace = path.parent
    for name, entry in payload["artifacts"].items():
        artifact = ARTIFACTS.get(name)
        if artifact is None:
            problems.append(f"{path}: {name!r} is not a registered artifact")
            continue
        if entry["file"] != artifact.filename:
            problems.append(
                f"{path}: {name}: file {entry['file']!r} != registry "
                f"{artifact.filename!r}"
            )
        if entry["schema_version"] != artifact.schema_version:
            problems.append(
                f"{path}: {name}: schema v{entry['schema_version']} != "
                f"registry v{artifact.schema_version} (stale workspace?)"
            )
        if list(entry["deps"]) != list(artifact.deps):
            problems.append(
                f"{path}: {name}: deps {entry['deps']!r} != registry "
                f"{list(artifact.deps)!r}"
            )
        if not (workspace / entry["file"]).exists():
            problems.append(f"{path}: {name}: {entry['file']} missing on disk")
    problems += check_generation_chain(workspace, payload)
    return problems


def check_generation_chain(workspace: Path, payload: dict) -> list:
    """Validate the workspace's generation lineage, if it has one.

    ``read_generation_chain`` re-verifies every link: each archived
    ``manifest.gen-<N>.json`` must validate, hash to the ``parent``
    fingerprint its child recorded, and carry a generation exactly one
    below its child's.  A pruned tail (missing archive) is fine -- the
    chain just ends there -- but a broken link is a corruption signal
    worth failing CI over.
    """
    if payload.get("generation", 0) == 0:
        return []  # fresh or legacy workspace: no lineage to walk
    try:
        read_generation_chain(workspace)
    except ValueError as error:
        return [f"{workspace}: generation chain broken: {error}"]
    return []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="additionally validate a built workspace's manifest.json",
    )
    args = parser.parse_args(argv)
    problems = check_registry()
    checked = f"{len(ARTIFACTS)} artifacts"
    if args.manifest:
        problems += check_manifest(Path(args.manifest))
        checked += f" + {args.manifest}"
    if problems:
        for problem in problems:
            print(f"workspace-manifest: {problem}")
        return 1
    print(f"workspace-manifest: OK ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
