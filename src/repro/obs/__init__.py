"""Observability: metrics registry, tracing spans, structured logging.

The cross-cutting layer every stage of the pipeline records into:

- :mod:`repro.obs.metrics` -- process-wide :class:`MetricsRegistry` with
  counters, gauges, histograms (p50/p95/p99), and monotonic timers;
- :mod:`repro.obs.trace` -- hierarchical ``span()`` trees with JSON-lines
  and ASCII-tree export, no-op while tracing is inactive;
- :mod:`repro.obs.logs` -- structured loggers emitting plain text or JSON
  lines (``REPRO_LOG_FORMAT=json`` / ``repro ... --log-json``);
- :mod:`repro.obs.report` -- renders saved dumps (``repro obs report``).

Stdlib only, no hard dependencies; disabled-by-default tracing keeps the
instrumented hot paths at their uninstrumented speed.  Metric and span
names follow the ``stage.component.metric`` convention documented in
``docs/observability.md`` and linted by ``tools/check_metric_names.py``.
"""

from repro.obs.logs import ObsLogger, configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    METRIC_NAME_RE,
    MetricsRegistry,
    get_registry,
    reset_registry,
    validate_metric_name,
)
from repro.obs.report import render_metrics, render_report, render_trace
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    current_tracer,
    read_trace_jsonl,
    span,
    start_tracing,
    stop_tracing,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "METRIC_NAME_RE",
    "MetricsRegistry",
    "NULL_SPAN",
    "ObsLogger",
    "Span",
    "Tracer",
    "configure_logging",
    "current_tracer",
    "get_logger",
    "get_registry",
    "read_trace_jsonl",
    "render_metrics",
    "render_report",
    "render_trace",
    "reset_registry",
    "span",
    "start_tracing",
    "stop_tracing",
    "validate_metric_name",
]
