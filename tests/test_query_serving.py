"""The query-serving fast path: shared evaluation, caches, batching.

Covers the serving-layer contract end to end:

- a single context-based search scans the posting lists exactly once
  (asserted through the ``index.keyword.postings_scanned`` counter);
- the pipeline's LRU result cache -- hit/miss/evict counters, capacity
  bound, and identical results with the cache on or off for all three
  prestige functions;
- cache invalidation when artifacts are (re)installed via
  ``load_precomputed`` or workspace hydration;
- engine memoisation identity and the ``representative``-strategy
  vector plumbing;
- ``search_many`` determinism and metric exactness under the thread
  pool.
"""

import pytest

from repro.core.io import write_prestige_scores
from repro.obs import get_registry, reset_registry
from repro.pipeline import SearchResultCache, build_demo_pipeline
from repro.workspace import open_workspace

QUERY = "gene expression regulation"


@pytest.fixture(autouse=True)
def fresh_registry():
    reset_registry()
    yield
    reset_registry()


@pytest.fixture(scope="module")
def pipeline():
    return build_demo_pipeline(seed=7, n_papers=150, n_terms=40)


def _counters():
    return get_registry().snapshot()["counters"]


class TestSingleScan:
    def test_context_search_scans_postings_exactly_once(self, pipeline):
        engine = pipeline.search_engine("text", "text")
        keyword = pipeline.keyword_engine
        # One scan touches every posting of every in-vocabulary distinct
        # term, exactly once.
        terms = list(dict.fromkeys(keyword.index.analyzer.analyze(QUERY)))
        expected = sum(
            len(list(keyword.index.postings(term)))
            for term in terms
            if keyword._idf(term) > 0.0
        )
        assert expected > 0
        before = _counters().get("index.keyword.postings_scanned", 0)
        engine.search(QUERY, limit=10)
        delta = _counters()["index.keyword.postings_scanned"] - before
        assert delta == expected

    def test_one_evaluation_per_context_search(self, pipeline):
        engine = pipeline.search_engine("text", "text")
        before = _counters().get("index.keyword.queries", 0)
        engine.search(QUERY, limit=10)
        assert _counters()["index.keyword.queries"] - before == 1

    def test_grouped_and_explain_also_scan_once(self, pipeline):
        engine = pipeline.search_engine("text", "text")
        paper_id = engine.search(QUERY, limit=1)[0].paper_id
        before = _counters().get("index.keyword.queries", 0)
        engine.search_grouped(QUERY)
        engine.explain(QUERY, paper_id)
        assert _counters()["index.keyword.queries"] - before == 2


class TestResultCache:
    def test_miss_then_hit_counters_and_identical_results(self, pipeline):
        pipeline.invalidate_serving_caches()
        first = pipeline.search(QUERY, limit=5)
        counters = _counters()
        assert counters["search.cache.miss"] == 1
        assert counters.get("search.cache.hit", 0) == 0
        second = pipeline.search(QUERY, limit=5)
        assert second == first
        assert _counters()["search.cache.hit"] == 1

    def test_cache_key_covers_request_shape(self, pipeline):
        pipeline.invalidate_serving_caches()
        pipeline.search(QUERY, limit=5)
        # A different limit/threshold is a different request: no false hit.
        pipeline.search(QUERY, limit=3)
        pipeline.search(QUERY, limit=5, threshold=0.5)
        assert _counters().get("search.cache.hit", 0) == 0
        assert _counters()["search.cache.miss"] == 3

    def test_eviction_is_counted_and_bounded(self):
        cache = SearchResultCache(capacity=2)
        cache.put(("a",), [])
        cache.put(("b",), [])
        cache.put(("c",), [])  # evicts ("a",)
        assert len(cache) == 2
        assert _counters()["search.cache.evict"] == 1
        assert cache.get(("a",)) is None
        assert cache.get(("b",)) == []

    def test_lru_order_refreshes_on_hit(self):
        cache = SearchResultCache(capacity=2)
        cache.put(("a",), [])
        cache.put(("b",), [])
        cache.get(("a",))  # "a" becomes most-recent
        cache.put(("c",), [])  # evicts "b", not "a"
        assert cache.get(("a",)) is not None
        assert cache.get(("b",)) is None

    def test_hit_rate_tracks_this_instance(self):
        cache = SearchResultCache(capacity=4)
        assert cache.hit_rate is None  # no lookups yet
        cache.put(("a",), [])
        cache.get(("a",))
        cache.get(("b",))
        assert cache.hit_rate == 0.5

    def test_export_gauges_publishes_view_state(self, pipeline):
        from repro.obs import get_registry

        pipeline.search("gene expression", limit=5)
        pipeline.search("gene expression", limit=5)
        view = pipeline.serving_view
        view.export_gauges()
        gauges = get_registry().snapshot()["gauges"]
        assert gauges["serving.view.revision"] == view.revision
        assert gauges["serving.view.engines"] == view.engine_count()
        assert gauges["search.cache.size"] == len(view.result_cache)
        # The shared pipeline's cache has seen other tests' lookups;
        # assert the gauge mirrors the instance, not a fixed ratio.
        assert gauges["search.cache.hit_rate"] == view.result_cache.hit_rate
        assert view.result_cache.hit_rate > 0.0
        assert gauges["serving.view.age_seconds"] >= 0.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            SearchResultCache(capacity=-1)

    def test_zero_capacity_disables_cache(self):
        cache = SearchResultCache(capacity=0)
        assert not cache.enabled
        cache.put(("a",), [])
        assert len(cache) == 0
        assert cache.get(("a",)) is None
        # Disabled caches are silent: no hit/miss/evict counters move.
        assert _counters().get("search.cache.miss", 0) == 0

    def test_pipeline_with_cache_disabled_serves_fresh_results(self):
        pipeline = build_demo_pipeline(
            seed=7, n_papers=80, n_terms=25, result_cache_size=0
        )
        first = pipeline.search(QUERY, limit=5)
        second = pipeline.search(QUERY, limit=5)
        assert second == first
        assert len(pipeline._result_cache) == 0
        counters = _counters()
        assert counters.get("search.cache.hit", 0) == 0
        assert counters.get("search.cache.miss", 0) == 0

    @pytest.mark.parametrize(
        "function,paper_set",
        [("text", "text"), ("citation", "text"), ("pattern", "pattern")],
    )
    def test_cached_results_identical_across_functions(
        self, pipeline, function, paper_set
    ):
        pipeline.invalidate_serving_caches()
        uncached = pipeline.search(
            QUERY, function=function, paper_set_name=paper_set, use_cache=False
        )
        warm = pipeline.search(
            QUERY, function=function, paper_set_name=paper_set
        )
        served = pipeline.search(
            QUERY, function=function, paper_set_name=paper_set
        )
        assert warm == uncached
        assert served == uncached


class TestEngineMemoisation:
    def test_same_key_returns_same_engine(self, pipeline):
        a = pipeline.search_engine("text", "text")
        assert pipeline.search_engine("text", "text") is a

    def test_distinct_keys_get_distinct_engines(self, pipeline):
        probe = pipeline.search_engine("text", "text", "probe")
        name = pipeline.search_engine("text", "text", "name")
        assert probe is not name

    def test_invalidation_discards_engines(self, pipeline):
        before = pipeline.search_engine("text", "text")
        pipeline.invalidate_serving_caches()
        assert pipeline.search_engine("text", "text") is not before

    def test_unknown_strategy_rejected(self, pipeline):
        with pytest.raises(ValueError):
            pipeline.search_engine("text", "text", "oracle")

    def test_representative_strategy_is_wired(self, pipeline):
        engine = pipeline.search_engine("text", "text", "representative")
        assert engine.vectors is pipeline.vectors
        assert engine.representatives
        # And it actually serves queries end to end.
        pipeline.search(QUERY, limit=5, selection_strategy="representative")


class TestInvalidation:
    def test_load_precomputed_clears_serving_caches(self, pipeline, tmp_path):
        write_prestige_scores(
            pipeline.prestige("text", "text"), tmp_path / "scores_text_text.json"
        )
        pipeline.invalidate_serving_caches()
        engine = pipeline.search_engine("text", "text")
        pipeline.search(QUERY, limit=5)
        assert len(pipeline._result_cache) == 1
        loaded = pipeline.load_precomputed(tmp_path)
        assert loaded == 1
        assert len(pipeline._result_cache) == 0
        assert pipeline.search_engine("text", "text") is not engine

    def test_load_of_nothing_keeps_caches(self, pipeline, tmp_path):
        pipeline.invalidate_serving_caches()
        engine = pipeline.search_engine("text", "text")
        pipeline.search(QUERY, limit=5)
        assert pipeline.load_precomputed(tmp_path / "empty") == 0
        assert len(pipeline._result_cache) == 1
        assert pipeline.search_engine("text", "text") is engine

    def test_open_workspace_clears_serving_caches(self, tmp_path):
        pipeline = build_demo_pipeline(seed=11, n_papers=80, n_terms=25)
        pipeline.build_workspace(tmp_path / "ws")
        engine = pipeline.search_engine("text", "text")
        pipeline.search(QUERY, limit=5)
        loaded = open_workspace(pipeline, tmp_path / "ws")
        assert loaded > 0
        assert len(pipeline._result_cache) == 0
        assert pipeline.search_engine("text", "text") is not engine


class TestSearchMany:
    QUERIES = [
        "gene expression regulation",
        "protein binding",
        "cell membrane transport",
        "gene expression regulation",  # duplicate on purpose
        "signal transduction pathway",
    ]

    def test_results_match_sequential_search_in_input_order(self, pipeline):
        engine = pipeline.search_engine("text", "text")
        sequential = [engine.search(q, limit=10) for q in self.QUERIES]
        batched = engine.search_many(self.QUERIES, max_workers=4, limit=10)
        assert batched == sequential

    def test_metrics_increment_exactly_once_per_query(self, pipeline):
        # The thread pool must produce exactly the counter increments the
        # sequential loop would (no duplicates, no losses).
        engine = pipeline.search_engine("text", "text")
        engine.search(self.QUERIES[0], limit=10)  # warm lazy state
        watched = (
            "search.context.queries",
            "search.context.papers_scored",
            "index.keyword.queries",
            "index.keyword.postings_scanned",
        )
        before = _counters()
        for query in self.QUERIES:
            engine.search(query, limit=10)
        mid = _counters()
        engine.search_many(self.QUERIES, max_workers=4, limit=10)
        after = _counters()
        for name in watched:
            sequential = mid.get(name, 0) - before.get(name, 0)
            batched = after.get(name, 0) - mid.get(name, 0)
            assert batched == sequential, name
        assert (
            after["search.batch.queries"]
            - before.get("search.batch.queries", 0)
            == len(self.QUERIES)
        )

    def test_batch_is_deterministic_across_runs(self, pipeline):
        engine = pipeline.search_engine("text", "text")
        first = engine.search_many(self.QUERIES, max_workers=4, limit=10)
        second = engine.search_many(self.QUERIES, max_workers=4, limit=10)
        assert first == second

    def test_rejects_bad_worker_count(self, pipeline):
        engine = pipeline.search_engine("text", "text")
        with pytest.raises(ValueError):
            engine.search_many(self.QUERIES, max_workers=0)

    def test_empty_batch(self, pipeline):
        engine = pipeline.search_engine("text", "text")
        assert engine.search_many([]) == []

    def test_pipeline_batch_uses_result_cache(self, pipeline):
        pipeline.invalidate_serving_caches()
        first = pipeline.search_many(self.QUERIES, limit=10)
        hits_before = _counters().get("search.cache.hit", 0)
        second = pipeline.search_many(self.QUERIES, limit=10)
        assert second == first
        # Every position (duplicates included) is answered from the cache.
        assert (
            _counters()["search.cache.hit"] - hits_before == len(self.QUERIES)
        )
