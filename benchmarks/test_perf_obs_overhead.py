"""Observability overhead benchmark: what instrumentation costs a query.

Three timed variants of the same cache-bypassing ``Pipeline.search``
loop over the shared bench workload:

- **stripped** -- the request-telemetry context and the pipeline span
  are monkeypatched out, approximating the serving code with this PR's
  instrumentation removed (inner ``span(...)`` calls stay, but with no
  active tracer they are a single attribute check each);
- **disabled** -- the real code path with telemetry off (the production
  default): one sentinel check, two clock reads, one histogram
  observation, one counter increment per request;
- **sampled** -- telemetry enabled at a 10% head-sampling rate with an
  active tracer, so every span in the request records real timings.

The variants run *interleaved*, round-robin, ``REPEATS`` times each,
and the minimum loop time per variant is kept: min-of-repeats absorbs
scheduler noise, and interleaving cancels the slow monotonic drift
(cache warmth, frequency scaling) that back-to-back blocks would pin on
whichever variant ran first.  The floors (disabled within 2% of
stripped, sampled within 10%) travel inside ``BENCH_obs_overhead.json``
and are enforced both here and by ``tools/check_bench_regression.py``
in CI.

A second test times the shadow-scoring hot path the same way: the
serving loop with a :class:`~repro.serving.analytics.ShadowScorer`
whose sample rate is 0 (one RNG draw per request, nothing queued) must
stay within the same 2% envelope of the no-shadow baseline, and a 10%
sample rate -- including draining the re-scoring backlog -- within a
generous budget.  Those numbers land in the same
``BENCH_obs_overhead.json`` under ``shadow_*`` keys.
"""

import json
import time
from contextlib import contextmanager

from conftest import write_result

from repro.obs import configure_telemetry, reset_telemetry
from repro.obs.request import QueryTelemetry
from repro.serving.analytics import ShadowScorer

#: The disabled fast path must stay within this percentage of stripped.
DISABLED_FLOOR_PCT = 2.0
#: The enabled, sampled-tracing path must stay within this percentage.
SAMPLED_FLOOR_PCT = 10.0
#: Shadow configured but sampling nothing must stay in the same envelope.
SHADOW_DISABLED_FLOOR_PCT = 2.0
#: 10% shadow sampling re-scores a tenth of traffic under a second
#: function on a worker thread; the budget covers enqueue cost plus the
#: GIL contention of draining that backlog.
SHADOW_SAMPLED_FLOOR_PCT = 50.0
REPEATS = 5
LIMIT = 10


class _NullHandle:
    def set(self, **attrs):
        pass

    def cache(self, hit):
        pass

    def cache_batch(self, hits, lookups):
        pass


_NULL_HANDLE = _NullHandle()


@contextmanager
def _null_request(kind, query="", queries=1, **attrs):
    yield _NULL_HANDLE


class _NullTelemetry:
    request = staticmethod(_null_request)


@contextmanager
def _null_span_cm():
    yield _NULL_HANDLE


def _null_span(name, **attrs):
    return _null_span_cm()


def _timed_loop(pipeline, queries):
    """Wall time of one cache-bypassing search loop."""
    started = time.perf_counter()
    for query in queries:
        pipeline.search(query, limit=LIMIT, use_cache=False)
    return time.perf_counter() - started


def test_perf_obs_overhead(pipeline, queries, results_dir, monkeypatch):
    import repro.pipeline as pipeline_module

    def time_stripped():
        with monkeypatch.context() as patched:
            patched.setattr(
                pipeline_module, "get_telemetry", lambda: _NullTelemetry()
            )
            patched.setattr(pipeline_module, "span", _null_span)
            return _timed_loop(pipeline, queries)

    def time_disabled():
        reset_telemetry()
        return _timed_loop(pipeline, queries)

    def time_sampled():
        configure_telemetry(
            enabled=True, sample_rate=0.1, slow_ms=1e12, seed=7
        )
        try:
            return _timed_loop(pipeline, queries)
        finally:
            reset_telemetry()

    variants = {
        "stripped": time_stripped,
        "disabled": time_disabled,
        "sampled": time_sampled,
    }
    # One untimed lap per variant warms every lazy substrate and code
    # path, then interleaved timed rounds with the per-variant min kept.
    best = {}
    for name, run in variants.items():
        run()
        best[name] = float("inf")
    for _ in range(REPEATS):
        for name, run in variants.items():
            best[name] = min(best[name], run())

    stripped_seconds = best["stripped"]
    disabled_seconds = best["disabled"]
    sampled_seconds = best["sampled"]

    def overhead_pct(seconds):
        return (seconds - stripped_seconds) / stripped_seconds * 100.0

    disabled_pct = overhead_pct(disabled_seconds)
    sampled_pct = overhead_pct(sampled_seconds)

    per_query_us = stripped_seconds / len(queries) * 1e6
    table = "\n".join([
        f"queries x repeats         {len(queries)} x {REPEATS}"
        " (interleaved, min kept)",
        f"stripped baseline         {stripped_seconds * 1000.0:10.2f} ms"
        f"  ({per_query_us:.0f} us/query)",
        f"telemetry disabled        {disabled_seconds * 1000.0:10.2f} ms"
        f"  ({disabled_pct:+.2f}%  floor {DISABLED_FLOOR_PCT:.0f}%)",
        f"sampled tracing (10%)     {sampled_seconds * 1000.0:10.2f} ms"
        f"  ({sampled_pct:+.2f}%  floor {SAMPLED_FLOOR_PCT:.0f}%)",
    ])
    write_result(results_dir, "perf_obs_overhead", table)

    payload = {
        "queries": len(queries),
        "repeats": REPEATS,
        "stripped_seconds": round(stripped_seconds, 6),
        "disabled_seconds": round(disabled_seconds, 6),
        "sampled_seconds": round(sampled_seconds, 6),
        "disabled_overhead_pct": round(disabled_pct, 3),
        "sampled_overhead_pct": round(sampled_pct, 3),
        "disabled_floor_pct": DISABLED_FLOOR_PCT,
        "sampled_floor_pct": SAMPLED_FLOOR_PCT,
    }
    (results_dir / "BENCH_obs_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    assert disabled_pct <= DISABLED_FLOOR_PCT, (
        f"telemetry-disabled path is {disabled_pct:.2f}% over the stripped "
        f"baseline (floor {DISABLED_FLOOR_PCT}%)"
    )
    assert sampled_pct <= SAMPLED_FLOOR_PCT, (
        f"sampled-tracing path is {sampled_pct:.2f}% over the stripped "
        f"baseline (floor {SAMPLED_FLOOR_PCT}%)"
    )


def test_perf_shadow_overhead(pipeline, queries, results_dir):
    """Shadow sampling cost on the serving hot path, same discipline."""

    def serving_lap(scorer):
        """One serving-shaped lap: search, then maybe offer to shadow."""
        view = pipeline.serving_view
        started = time.perf_counter()
        for query in queries:
            hits = pipeline.search(
                query, function="text", paper_set_name="text", limit=LIMIT,
                threshold=0.0, selection_strategy="probe", use_cache=False,
            )
            if scorer is not None:
                scorer.offer(
                    query=query, function="text", paper_set="text",
                    strategy="probe", threshold=0.0,
                    primary_ids=[hit.paper_id for hit in hits], view=view,
                )
        if scorer is not None:
            assert scorer.drain(timeout_s=60.0), "shadow backlog never drained"
        return time.perf_counter() - started

    disabled_scorer = ShadowScorer(
        pipeline, ["citation"], sample_rate=0.0, k=LIMIT, seed=11
    ).start()
    sampled_scorer = ShadowScorer(
        pipeline, ["citation"], sample_rate=0.1, k=LIMIT, seed=11
    ).start()
    try:
        variants = {
            "baseline": lambda: serving_lap(None),
            "shadow_disabled": lambda: serving_lap(disabled_scorer),
            "shadow_sampled": lambda: serving_lap(sampled_scorer),
        }
        best = {}
        for name, run in variants.items():
            run()  # warm lap: builds the citation substrate, warms caches
            best[name] = float("inf")
        for _ in range(REPEATS):
            for name, run in variants.items():
                best[name] = min(best[name], run())
    finally:
        disabled_scorer.stop()
        sampled_scorer.stop()

    baseline_seconds = best["baseline"]
    disabled_seconds = best["shadow_disabled"]
    sampled_seconds = best["shadow_sampled"]

    def overhead_pct(seconds):
        return (seconds - baseline_seconds) / baseline_seconds * 100.0

    disabled_pct = overhead_pct(disabled_seconds)
    sampled_pct = overhead_pct(sampled_seconds)

    table = "\n".join([
        f"queries x repeats         {len(queries)} x {REPEATS}"
        " (interleaved, min kept)",
        f"no-shadow baseline        {baseline_seconds * 1000.0:10.2f} ms",
        f"shadow sampling off       {disabled_seconds * 1000.0:10.2f} ms"
        f"  ({disabled_pct:+.2f}%  floor {SHADOW_DISABLED_FLOOR_PCT:.0f}%)",
        f"shadow sampling (10%)     {sampled_seconds * 1000.0:10.2f} ms"
        f"  ({sampled_pct:+.2f}%  floor {SHADOW_SAMPLED_FLOOR_PCT:.0f}%)",
    ])
    write_result(results_dir, "perf_shadow_overhead", table)

    # Merge into the payload the main overhead bench wrote (it runs
    # first in this module); both sets of gates read one file.
    bench_path = results_dir / "BENCH_obs_overhead.json"
    payload = {}
    if bench_path.exists():
        payload = json.loads(bench_path.read_text(encoding="utf-8"))
    payload.update({
        "shadow_baseline_seconds": round(baseline_seconds, 6),
        "shadow_disabled_seconds": round(disabled_seconds, 6),
        "shadow_sampled_seconds": round(sampled_seconds, 6),
        "shadow_disabled_overhead_pct": round(disabled_pct, 3),
        "shadow_sampled_overhead_pct": round(sampled_pct, 3),
        "shadow_disabled_floor_pct": SHADOW_DISABLED_FLOOR_PCT,
        "shadow_sampled_floor_pct": SHADOW_SAMPLED_FLOOR_PCT,
    })
    bench_path.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    assert disabled_pct <= SHADOW_DISABLED_FLOOR_PCT, (
        f"shadow-disabled serving path is {disabled_pct:.2f}% over the "
        f"no-shadow baseline (floor {SHADOW_DISABLED_FLOOR_PCT}%)"
    )
    assert sampled_pct <= SHADOW_SAMPLED_FLOOR_PCT, (
        f"10%-sampled shadow scoring is {sampled_pct:.2f}% over the "
        f"no-shadow baseline (floor {SHADOW_SAMPLED_FLOOR_PCT}%)"
    )


def test_obs_overhead_telemetry_defaults():
    """The process-default telemetry must be the disabled fast path."""
    telemetry = QueryTelemetry()
    assert telemetry.enabled is False
    with telemetry.request("search", query="q") as handle:
        handle.cache(hit=False)  # no-op on the null handle
    assert len(telemetry.slowlog) == 0
    assert telemetry.events() == []
