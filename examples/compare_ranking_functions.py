#!/usr/bin/env python
"""Compare the three prestige score functions on the same queries.

Reproduces, in miniature, what the paper's evaluation does: run the same
query through citation-, text-, and pattern-based ranking, print the
top results side by side, and report the pairwise top-k overlap ratios
(section 2) plus each function's separability on the searched contexts.

Run:  python examples/compare_ranking_functions.py
"""

from repro import build_demo_pipeline
from repro.eval.metrics import separability_sd, topk_overlap


def main() -> None:
    print("Building pipeline (seed=11, 800 papers, 150 contexts)...")
    pipeline = build_demo_pipeline(seed=11, n_papers=800, n_terms=150)

    # Arms exactly as in the paper's section 4: text and citation scores on
    # the text-based context paper set; pattern and citation on the
    # pattern-based one.
    arms = {
        "text": ("text", "text"),
        "citation": ("citation", "text"),
        "pattern": ("pattern", "pattern"),
    }
    engines = {
        name: pipeline.search_engine(function, paper_set)
        for name, (function, paper_set) in arms.items()
    }

    # One generated topical query (use your own string on real data).
    query = next(iter(generate_queries_for(pipeline)))
    print(f"\nQuery: {query!r}\n")

    for name, engine in engines.items():
        hits = engine.search(query, limit=5)
        print(f"--- top 5 by {name}-based ranking ---")
        if not hits:
            print("  (no results)")
        for hit in hits:
            title = pipeline.corpus.paper(hit.paper_id).title[:55]
            print(
                f"  {hit.relevancy:.3f} (prestige {hit.prestige:.2f}) "
                f"{hit.paper_id}  {title}"
            )
        print()

    # Pairwise agreement of the full prestige score maps on shared contexts
    # of the pattern paper set (the figure 5.3 measurement).
    scores = {
        "text": pipeline.prestige("text", "pattern"),
        "citation": pipeline.prestige("citation", "pattern"),
        "pattern": pipeline.prestige("pattern", "pattern"),
    }
    shared = [
        context.term_id
        for context in pipeline.experiment_paper_set("pattern")
        if all(context.term_id in s and s.of(context.term_id) for s in scores.values())
    ]
    print(f"pairwise top-10% overlap over {len(shared)} shared contexts:")
    names = list(scores)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            values = [
                topk_overlap(
                    scores[a].of(cid), scores[b].of(cid), k_percent=0.10
                )
                for cid in shared
            ]
            values = [v for v in values if v is not None]
            mean = sum(values) / len(values) if values else float("nan")
            print(f"  {a:<9} vs {b:<9} {mean:.3f}")

    print("\nmean separability SD (lower = better spread):")
    for name, score_map in scores.items():
        sds = []
        for cid in shared:
            sd = separability_sd(score_map.of(cid).values())
            if sd is not None:
                sds.append(sd)
        print(f"  {name:<9} {sum(sds) / len(sds):.2f}")


def generate_queries_for(pipeline):
    """Small helper: topical 2-3 word queries from mid-level contexts."""
    for term_id in pipeline.ontology.terms_at_level(4):
        term = pipeline.ontology.term(term_id)
        words = [w for w in term.name_words() if len(w) > 3][:3]
        if len(words) >= 2:
            yield " ".join(words)


if __name__ == "__main__":
    main()
