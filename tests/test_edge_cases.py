"""Extra edge-case coverage: OBO corners, query generation, pipeline inputs."""

import io

import pytest

from repro.datagen.corpus_gen import CorpusGenerator
from repro.datagen.ontology_gen import OntologyGenerator
from repro.datagen.queries import generate_queries
from repro.ontology.obo import read_obo
from repro.ontology.ontology import Ontology
from repro.ontology.term import Term
from repro.pipeline import Pipeline


class TestOboCorners:
    def test_empty_file(self):
        onto = read_obo(io.StringIO(""))
        assert len(onto) == 0

    def test_header_only(self):
        onto = read_obo(io.StringIO("format-version: 1.2\nontology: go\n"))
        assert len(onto) == 0

    def test_stanza_without_id_skipped(self):
        onto = read_obo(io.StringIO("[Term]\nname: orphan stanza\n"))
        assert len(onto) == 0

    def test_comment_lines_ignored(self):
        text = "! a comment\n[Term]\nid: A\nname: a\n! another\n"
        onto = read_obo(io.StringIO(text))
        assert "A" in onto

    def test_term_without_name_uses_id(self):
        onto = read_obo(io.StringIO("[Term]\nid: X\n"))
        assert onto.term("X").name == "X"

    def test_windows_line_endings(self):
        text = "[Term]\r\nid: A\r\nname: a thing\r\n"
        onto = read_obo(io.StringIO(text))
        assert onto.term("A").name == "a thing"


class TestQueryGenerationCorners:
    def test_single_term_ontology(self):
        ontology = Ontology([Term("only", "solitary process term")])
        dataset = CorpusGenerator(n_papers=10, ontology=ontology).generate(seed=0)
        workload = generate_queries(dataset, n_queries=3, seed=0, min_level=5)
        # min_level exceeds the ontology depth: falls back to all terms.
        assert len(workload) == 3
        assert all(w.source_term_id == "only" for w in workload)


class TestPipelineInputCorners:
    def test_training_referencing_unknown_papers_ignored(self, tiny_corpus,
                                                         tiny_ontology):
        pipeline = Pipeline(
            corpus=tiny_corpus,
            ontology=tiny_ontology,
            training_papers={"met": ["M1", "GHOST-1", "GHOST-2"]},
            min_context_size=1,
        )
        context = pipeline.text_paper_set.context("met")
        assert "GHOST-1" not in context.training_paper_ids
        assert "M1" in context.training_paper_ids

    def test_training_for_unknown_terms_ignored(self, tiny_corpus, tiny_ontology):
        pipeline = Pipeline(
            corpus=tiny_corpus,
            ontology=tiny_ontology,
            training_papers={"met": ["M1"], "NOT-A-TERM": ["M2"]},
            min_context_size=1,
        )
        # Builders iterate ontology terms, so the bogus key is simply unused.
        assert "NOT-A-TERM" not in pipeline.text_paper_set
        assert "met" in pipeline.text_paper_set

    def test_no_training_at_all(self, tiny_corpus, tiny_ontology):
        pipeline = Pipeline(
            corpus=tiny_corpus,
            ontology=tiny_ontology,
            training_papers={},
            min_context_size=1,
        )
        assert len(pipeline.text_paper_set) == 0
        # Search degrades gracefully to no results (no contexts exist).
        assert pipeline.search("glucose metabolic") == []

    def test_generator_with_prebuilt_ontology(self, tiny_ontology):
        dataset = CorpusGenerator(
            n_papers=25, ontology=tiny_ontology
        ).generate(seed=4)
        assert dataset.ontology is tiny_ontology
        for paper in dataset.corpus:
            assert paper.true_context_ids[0] in tiny_ontology
