"""Metrics-registry semantics: counters, gauges, histograms, timers.

Covers the contract documented in docs/observability.md -- name
validation, counter monotonicity, percentile math on known
distributions, cross-type name collisions, and a thread-safety smoke.
"""

import json
import threading

import pytest

from repro.obs import get_registry, reset_registry
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    validate_metric_name,
)


@pytest.fixture(autouse=True)
def fresh_registry():
    registry = reset_registry()
    yield registry
    reset_registry()


class TestMetricNames:
    def test_three_segments_accepted(self):
        assert validate_metric_name("search.context.queries") == (
            "search.context.queries"
        )

    def test_more_segments_accepted(self):
        validate_metric_name("a.b.c.d_e2")

    @pytest.mark.parametrize(
        "bad",
        [
            "search",  # one segment
            "search.queries",  # two segments
            "Search.context.queries",  # uppercase
            "search..queries",  # empty segment
            "search.context.2queries",  # digit-leading segment
            "search.context.queries ",  # trailing junk
        ],
    )
    def test_bad_names_rejected(self, bad):
        with pytest.raises(ValueError):
            validate_metric_name(bad)

    def test_registry_validates_on_creation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("nope")


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("a.b.c")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("a.b.c").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("a.b.c")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestHistogram:
    def test_exact_aggregates(self):
        histogram = Histogram("a.b.c")
        for value in (2.0, 4.0, 6.0, 8.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == 20.0
        assert histogram.min == 2.0
        assert histogram.max == 8.0
        assert histogram.mean == 5.0

    def test_percentiles_on_known_distribution(self):
        histogram = Histogram("a.b.c")
        for value in range(1, 101):  # 1..100
            histogram.observe(float(value))
        # Nearest-rank: p-th percentile of 1..100 is exactly p.
        assert histogram.percentile(50) == 50.0
        assert histogram.percentile(95) == 95.0
        assert histogram.percentile(99) == 99.0
        assert histogram.percentile(100) == 100.0
        assert histogram.percentile(1) == 1.0

    def test_percentile_single_sample(self):
        histogram = Histogram("a.b.c")
        histogram.observe(7.0)
        assert histogram.percentile(50) == 7.0
        assert histogram.percentile(99) == 7.0

    def test_percentile_max_samples_one(self):
        # A one-slot ring: every observation evicts the last, and
        # nearest-rank over a single retained sample is that sample for
        # every percentile, while exact aggregates keep the full stream.
        histogram = Histogram("a.b.c", max_samples=1)
        for value in (3.0, 9.0, 5.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == 17.0
        for p in (1, 50, 95, 99, 100):
            assert histogram.percentile(p) == 5.0

    def test_percentile_empty_is_none(self):
        assert Histogram("a.b.c").percentile(50) is None

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram("a.b.c").percentile(0)
        with pytest.raises(ValueError):
            Histogram("a.b.c").percentile(101)

    def test_ring_buffer_keeps_exact_count_and_sum(self):
        histogram = Histogram("a.b.c", max_samples=8)
        for value in range(100):
            histogram.observe(float(value))
        assert histogram.count == 100
        assert histogram.sum == sum(range(100))
        assert histogram.max == 99.0
        assert histogram.min == 0.0
        # Percentiles are computed over the most recent 8 samples (92..99).
        assert histogram.percentile(50) >= 92.0

    def test_summary_keys(self):
        histogram = Histogram("a.b.c")
        histogram.observe(1.0)
        summary = histogram.summary()
        assert set(summary) == {
            "count", "sum", "min", "max", "mean", "p50", "p95", "p99"
        }


class TestRegistry:
    def test_memoised_per_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b.c") is registry.counter("a.b.c")

    def test_cross_type_reuse_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a.b.c")
        with pytest.raises(ValueError):
            registry.gauge("a.b.c")
        with pytest.raises(ValueError):
            registry.histogram("a.b.c")

    def test_timer_observes_seconds(self):
        registry = MetricsRegistry()
        with registry.timer("a.b.seconds"):
            pass
        histogram = registry.histogram("a.b.seconds")
        assert histogram.count == 1
        assert histogram.max >= 0.0

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("a.b.hits").inc(3)
        registry.gauge("a.b.ratio").set(0.5)
        registry.histogram("a.b.seconds").observe(0.01)
        snapshot = registry.snapshot()
        round_tripped = json.loads(json.dumps(snapshot))
        assert round_tripped["counters"]["a.b.hits"] == 3
        assert round_tripped["gauges"]["a.b.ratio"] == 0.5
        assert round_tripped["histograms"]["a.b.seconds"]["count"] == 1

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("a.b.c").inc()
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_global_registry_reset(self):
        first = get_registry()
        first.counter("a.b.c").inc()
        second = reset_registry()
        assert second is get_registry()
        assert second is not first
        assert second.snapshot()["counters"] == {}

    def test_format_table_mentions_metrics(self):
        registry = MetricsRegistry()
        registry.counter("a.b.hits").inc(2)
        table = registry.format_table()
        assert "a.b.hits" in table
        assert "2" in table


class TestThreadSafety:
    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("smoke.thread.increments")
        histogram = registry.histogram("smoke.thread.samples")
        n_threads, per_thread = 8, 2000

        def work():
            for i in range(per_thread):
                counter.inc()
                histogram.observe(float(i))

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == n_threads * per_thread
        assert histogram.count == n_threads * per_thread
