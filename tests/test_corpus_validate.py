"""Unit tests for corpus validation."""

import pytest

from repro.corpus.corpus import Corpus
from repro.corpus.paper import Paper
from repro.corpus.validate import validate_corpus


def make_corpus(*papers):
    return Corpus(papers)


class TestValidateCorpus:
    def test_clean_corpus_ok(self):
        corpus = make_corpus(
            Paper(
                paper_id="A",
                title="Fine paper",
                abstract="With text",
                authors=("X. Writer",),
                year=2000,
            ),
            Paper(
                paper_id="B",
                title="Also fine",
                abstract="Cites A",
                authors=("Y. Writer",),
                references=("A",),
                year=2001,
            ),
        )
        report = validate_corpus(corpus)
        assert report.ok
        assert report.n_papers == 2
        assert report.findings == [] or all(
            f.severity == "warning" for f in report.findings
        )

    def test_textless_paper_is_error(self):
        report = validate_corpus(make_corpus(Paper(paper_id="E", title="")))
        assert not report.ok
        assert report.errors[0].code == "no-text"
        assert report.errors[0].paper_id == "E"

    def test_missing_title_warning(self):
        report = validate_corpus(
            make_corpus(Paper(paper_id="T", title="", abstract="has text"))
        )
        assert report.ok  # warning only
        assert any(f.code == "no-title" for f in report.warnings)

    def test_missing_authors_warning(self):
        report = validate_corpus(make_corpus(Paper(paper_id="A", title="t")))
        assert any(f.code == "no-authors" for f in report.warnings)

    def test_duplicate_authors_warning(self):
        report = validate_corpus(
            make_corpus(
                Paper(paper_id="D", title="t", authors=("Same", "Same"))
            )
        )
        assert any(f.code == "duplicate-authors" for f in report.warnings)

    def test_implausible_year_warning(self):
        report = validate_corpus(
            make_corpus(Paper(paper_id="Y", title="t", year=1492))
        )
        assert any(f.code == "implausible-year" for f in report.warnings)

    def test_all_dangling_references_warning(self):
        report = validate_corpus(
            make_corpus(
                Paper(paper_id="R", title="t", references=("GONE", "ALSO_GONE"))
            )
        )
        assert any(f.code == "all-references-dangling" for f in report.warnings)
        assert report.dangling_reference_ratio == pytest.approx(1.0)

    def test_self_reference_warning(self):
        report = validate_corpus(
            make_corpus(Paper(paper_id="S", title="t", references=("S",)))
        )
        assert any(f.code == "self-reference" for f in report.warnings)

    def test_dangling_ratio_partial(self):
        corpus = make_corpus(
            Paper(paper_id="A", title="a"),
            Paper(paper_id="B", title="b", references=("A", "MISSING")),
        )
        report = validate_corpus(corpus)
        assert report.dangling_reference_ratio == pytest.approx(0.5)

    def test_by_code_counts(self):
        corpus = make_corpus(
            Paper(paper_id="1", title="t"),
            Paper(paper_id="2", title="t"),
        )
        report = validate_corpus(corpus)
        assert report.by_code().get("no-authors") == 2

    def test_summary_renders(self):
        report = validate_corpus(make_corpus(Paper(paper_id="X", title="")))
        summary = report.summary()
        assert "1 errors" in summary
        assert "no-text" in summary

    def test_empty_corpus(self):
        report = validate_corpus(Corpus())
        assert report.ok
        assert report.n_papers == 0
        assert report.dangling_reference_ratio == 0.0

    def test_generated_corpus_is_clean(self, small_dataset):
        report = validate_corpus(small_dataset.corpus)
        assert report.ok
        assert report.dangling_reference_ratio == 0.0
