"""Related-work recommendation over the context structure.

The paradigm's motivating scenario (section 1) is a researcher drowning
in an unranked result list.  A second, equally practical use of the same
pre-processing is *related-work recommendation*: given a draft abstract
or any free text, find the contexts it belongs to and surface each
context's most prestigious papers that also resemble the input.

Pipeline: vectorise the input -> rank contexts by representative
similarity (the text-based assignment criterion applied to an unseen
document) -> score each context member by
``w_prestige * prestige + w_similarity * cosine(input, member)`` ->
merge, best context per paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.context import ContextPaperSet
from repro.core.scores.base import PrestigeScores
from repro.core.vectors import PaperVectorStore


@dataclass(frozen=True)
class Recommendation:
    """One recommended paper."""

    paper_id: str
    context_id: str
    score: float
    prestige: float
    similarity: float


@dataclass(frozen=True)
class ContextMatch:
    """One context the input text was classified into."""

    context_id: str
    similarity: float


class RelatedWorkRecommender:
    """Recommend prestigious, similar papers for unseen input text."""

    def __init__(
        self,
        paper_set: ContextPaperSet,
        prestige: PrestigeScores,
        vectors: PaperVectorStore,
        representatives: Mapping[str, str],
        w_prestige: float = 0.4,
        w_similarity: float = 0.6,
    ) -> None:
        if w_prestige < 0 or w_similarity < 0 or (w_prestige + w_similarity) == 0:
            raise ValueError(
                "w_prestige and w_similarity must be >= 0 and not both zero"
            )
        self.paper_set = paper_set
        self.prestige = prestige
        self.vectors = vectors
        self.representatives = dict(representatives)
        self.w_prestige = w_prestige
        self.w_similarity = w_similarity

    def classify(self, text: str, max_contexts: int = 3) -> List[ContextMatch]:
        """The contexts whose representatives the input resembles most.

        This is the text-based assignment criterion of section 4 applied
        to a document that is *not* in the corpus.
        """
        input_vector = self.vectors.query_vector(text)
        if not input_vector:
            return []
        matches: List[ContextMatch] = []
        for context in self.paper_set:
            representative = self.representatives.get(context.term_id)
            if representative is None:
                continue
            similarity = input_vector.cosine(
                self.vectors.full_vector(representative)
            )
            if similarity > 0.0:
                matches.append(
                    ContextMatch(context_id=context.term_id, similarity=similarity)
                )
        matches.sort(key=lambda m: (-m.similarity, m.context_id))
        return matches[:max_contexts]

    def recommend(
        self,
        text: str,
        limit: int = 10,
        max_contexts: int = 3,
        exclude: Optional[List[str]] = None,
    ) -> List[Recommendation]:
        """Top related papers for ``text``, merged across its contexts.

        ``exclude`` drops known papers (e.g. the draft's own citations).
        A paper reachable through several contexts keeps its best score.
        """
        matches = self.classify(text, max_contexts=max_contexts)
        if not matches:
            return []
        input_vector = self.vectors.query_vector(text)
        excluded = set(exclude or ())
        best: Dict[str, Recommendation] = {}
        for match in matches:
            context = self.paper_set.context(match.context_id)
            context_prestige = self.prestige.of(match.context_id)
            for paper_id in context.paper_ids:
                if paper_id in excluded:
                    continue
                similarity = input_vector.cosine(self.vectors.full_vector(paper_id))
                if similarity == 0.0:
                    continue
                prestige = context_prestige.get(paper_id, 0.0)
                score = (
                    self.w_prestige * prestige + self.w_similarity * similarity
                )
                current = best.get(paper_id)
                if current is None or score > current.score:
                    best[paper_id] = Recommendation(
                        paper_id=paper_id,
                        context_id=match.context_id,
                        score=score,
                        prestige=prestige,
                        similarity=similarity,
                    )
        ranked = sorted(best.values(), key=lambda r: (-r.score, r.paper_id))
        return ranked[:limit]
