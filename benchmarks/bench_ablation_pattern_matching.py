"""Ablation A8 -- simplified vs full pattern machinery.

Section 4 builds the pattern-based context paper set with a *simplified*
technique: "only middle tuples of patterns were considered during
pattern matching, extended patterns were not used".  The full machinery
of section 3.3 (extended side/middle-joined patterns, surround-aware
matching strength) exists in this library; this bench measures what the
simplification costs or saves:

- patterns built per context (regular vs with extended joins);
- separability of the resulting prestige scores;
- scoring time ratio.
"""

import time

from conftest import write_result

from repro.core.patterns import PatternSetBuilder
from repro.core.scores import PatternPrestige
from repro.eval.experiments import SeparabilityExperiment


def test_ablation_pattern_matching(benchmark, pipeline, dataset, results_dir):
    paper_set = pipeline.experiment_paper_set("pattern")
    # Sample contexts for the expensive full variant.
    sample_contexts = [c for c in paper_set if c.training_paper_ids][:40]

    def run():
        full_builder = PatternSetBuilder(
            pipeline.ontology,
            pipeline.corpus,
            pipeline.index,
            token_cache=pipeline.tokens,
            build_extended=True,
        )
        simple_sets = pipeline.pattern_assigner.pattern_sets
        full_sets = {}
        for context in sample_contexts:
            full_sets[context.term_id] = full_builder.build(
                context.term_id, context.training_paper_ids
            )
        n_simple = [
            len(simple_sets[c.term_id])
            for c in sample_contexts
            if c.term_id in simple_sets
        ]
        n_full = [len(full_sets[c.term_id]) for c in sample_contexts]

        sampled_ids = {c.term_id for c in sample_contexts}
        sampled_view = type(paper_set)(
            paper_set.ontology,
            [c for c in paper_set if c.term_id in sampled_ids],
        )
        timings = {}
        separability = {}
        for label, middle_only, sets in (
            ("simplified", True, simple_sets),
            ("full", False, full_sets),
        ):
            scorer = PatternPrestige(sets, pipeline.tokens, middle_only=middle_only)
            started = time.perf_counter()
            scores = scorer.score_all(sampled_view)
            timings[label] = time.perf_counter() - started
            result = SeparabilityExperiment(sampled_view).run(scores)
            separability[label] = result.mean_sd()
        return n_simple, n_full, separability, timings

    n_simple, n_full, separability, timings = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    mean_simple = sum(n_simple) / max(len(n_simple), 1)
    mean_full = sum(n_full) / max(len(n_full), 1)
    lines = [
        f"contexts sampled:                  {len(n_full)}",
        f"patterns/context (simplified):     {mean_simple:.1f}",
        f"patterns/context (with extended):  {mean_full:.1f}",
        f"mean SD (simplified matching):     {separability['simplified']:.2f}",
        f"mean SD (full matching):           {separability['full']:.2f}",
        f"scoring time simplified:           {timings['simplified']:.2f}s",
        f"scoring time full:                 {timings['full']:.2f}s",
    ]
    write_result(results_dir, "ablation_pattern_matching", "\n".join(lines))

    # Extended joins add patterns, never remove them.
    assert mean_full >= mean_simple
    # Both variants remain valid score distributions.
    for value in separability.values():
        assert 0.0 <= value <= 30.0 + 1e-9