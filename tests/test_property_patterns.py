"""Property-based tests for pattern construction and matching invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.patterns import (
    Pattern,
    PatternKind,
    PatternSet,
    find_occurrences,
    match_strength,
)
from repro.corpus.paper import Section

words = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
token_lists = st.lists(words, max_size=30)
phrases = st.lists(words, min_size=1, max_size=4).map(tuple)


class TestFindOccurrencesProperties:
    @given(token_lists, phrases)
    def test_every_occurrence_matches(self, tokens, phrase):
        for start in find_occurrences(tokens, phrase):
            assert tuple(tokens[start : start + len(phrase)]) == phrase

    @given(token_lists, phrases)
    def test_occurrences_sorted_unique(self, tokens, phrase):
        hits = find_occurrences(tokens, phrase)
        assert hits == sorted(set(hits))

    @given(token_lists, phrases)
    def test_count_never_exceeds_possible_windows(self, tokens, phrase):
        hits = find_occurrences(tokens, phrase)
        assert len(hits) <= max(len(tokens) - len(phrase) + 1, 0)

    @given(token_lists, words)
    def test_single_word_occurrences_match_count(self, tokens, word):
        hits = find_occurrences(tokens, (word,))
        assert len(hits) == tokens.count(word)

    @given(phrases)
    def test_phrase_found_in_itself(self, phrase):
        assert find_occurrences(list(phrase), phrase) == [0]


class TestMatchStrengthProperties:
    pattern_strategy = st.builds(
        Pattern,
        left=st.lists(words, max_size=2).map(tuple),
        middle=phrases,
        right=st.lists(words, max_size=2).map(tuple),
        kind=st.just(PatternKind.REGULAR),
        score=st.floats(min_value=0.1, max_value=10.0),
    )

    @given(pattern_strategy, token_lists, st.sampled_from(list(Section)))
    @settings(max_examples=80)
    def test_strength_bounded(self, pattern, tokens, section):
        if section in (Section.AUTHORS, Section.REFERENCES):
            return
        start = min(2, max(len(tokens) - len(pattern.middle), 0))
        strength = match_strength(pattern, tokens, start, section)
        assert 0.0 <= strength <= 1.0

    @given(pattern_strategy)
    def test_perfect_surround_is_section_weight(self, pattern):
        tokens = list(pattern.left) + list(pattern.middle) + list(pattern.right)
        strength = match_strength(
            pattern, tokens, len(pattern.left), Section.TITLE
        )
        # Perfect surround similarity -> weight * (0.5 + 0.5 * 1.0) = weight.
        # Jaccard over sets can fall below 1.0 only when surround words
        # repeat across tuples; allow that slack.
        assert 0.5 <= strength <= 1.0

    @given(pattern_strategy, token_lists)
    def test_title_strength_dominates_body(self, pattern, tokens):
        title = match_strength(pattern, tokens, 0, Section.TITLE)
        body = match_strength(pattern, tokens, 0, Section.BODY)
        assert title >= body


class TestPatternSetProperties:
    pattern_lists = st.lists(
        st.builds(
            Pattern,
            left=st.lists(words, max_size=2).map(tuple),
            middle=phrases,
            right=st.lists(words, max_size=2).map(tuple),
            kind=st.sampled_from(list(PatternKind)),
            score=st.floats(min_value=0.0, max_value=5.0),
        ),
        max_size=12,
    )

    @given(pattern_lists)
    def test_middles_is_set_of_all_middles(self, patterns):
        pattern_set = PatternSet(term_id="t", patterns=patterns)
        assert pattern_set.middles() == {p.middle for p in patterns}

    @given(pattern_lists)
    def test_first_word_index_complete(self, patterns):
        pattern_set = PatternSet(term_id="t", patterns=patterns)
        indexed = pattern_set.by_first_middle_word()
        total_indexed = sum(len(group) for group in indexed.values())
        with_middle = [p for p in patterns if p.middle]
        assert total_indexed == len(with_middle)
        for first_word, group in indexed.items():
            for pattern in group:
                assert pattern.middle[0] == first_word
