"""Request-scoped telemetry: contexts, sampling, capture policy, wiring.

Unit-level coverage of :mod:`repro.obs.request` (the disabled fast
path, head + tail sampling, error capture, tracer ownership, the SLO
event window) plus the integration contract: ``Pipeline.search`` /
``search_many`` / ``explain`` run inside request contexts, and a
``search_many`` batch's per-worker ``search.run`` spans are parented
under the batch root even though they execute on pool threads.

The conftest autouse fixture resets the registry and telemetry around
every test, so each starts from the disabled default.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import (
    attach_span,
    configure_telemetry,
    current_span,
    get_registry,
    get_telemetry,
    reset_telemetry,
    span,
    start_tracing,
    stop_tracing,
)
from repro.obs.request import QueryTelemetry
from repro.obs.trace import current_tracer
from repro.pipeline import build_demo_pipeline


class TestDisabledFastPath:
    def test_yields_shared_null_handle(self):
        telemetry = get_telemetry()
        assert telemetry.enabled is False
        with telemetry.request("search", query="glucose") as first:
            first.set(hits=3)
            first.cache(hit=True)
            first.cache_batch(hits=1, lookups=2)
        with telemetry.request("search") as second:
            pass
        assert first is second  # one shared do-nothing handle
        assert first.record is None

    def test_still_observes_latency_and_counts(self):
        telemetry = get_telemetry()
        with telemetry.request("search"):
            pass
        with telemetry.request("search_many", queries=3):
            pass
        registry = get_registry()
        assert registry.counter("search.request.queries").value == 2
        assert registry.histogram("search.run.latency").count == 1
        assert registry.histogram("search.batch.latency").count == 1

    def test_counts_errors_and_reraises(self):
        telemetry = get_telemetry()
        with pytest.raises(RuntimeError, match="boom"):
            with telemetry.request("search"):
                raise RuntimeError("boom")
        assert get_registry().counter("search.request.errors").value == 1
        assert len(telemetry.slowlog) == 0  # disabled: nothing captured

    def test_no_ids_no_events_no_tracer(self):
        telemetry = get_telemetry()
        with telemetry.request("search"):
            pass
        assert telemetry.events() == []
        assert current_tracer() is None


class TestEnabledCapture:
    def test_query_ids_are_unique_and_sequential(self):
        telemetry = configure_telemetry(enabled=True, sample_rate=1.0)
        ids = []
        for _ in range(3):
            with telemetry.request("search") as request:
                ids.append(request.record.query_id)
        assert ids == ["q-000001", "q-000002", "q-000003"]

    def test_head_sampling_is_seeded_and_probabilistic(self):
        telemetry = configure_telemetry(
            enabled=True, sample_rate=0.5, slow_ms=1e12, seed=42
        )
        flags = []
        for _ in range(200):
            with telemetry.request("search") as request:
                flags.append(request.record.sampled)
        expected = [x < 0.5 for x in _seeded_draws(42, 200)]
        assert flags == expected
        assert 0 < sum(flags) < 200
        sampled = get_registry().counter("telemetry.request.sampled").value
        assert sampled == sum(flags)

    def test_sample_rate_zero_and_one(self):
        telemetry = configure_telemetry(
            enabled=True, sample_rate=0.0, slow_ms=1e12
        )
        with telemetry.request("search") as request:
            assert request.record.sampled is False
        assert len(telemetry.slowlog) == 0
        telemetry = configure_telemetry(enabled=True, sample_rate=1.0)
        with telemetry.request("search") as request:
            assert request.record.sampled is True
        assert len(telemetry.slowlog) == 1

    def test_tail_capture_slow_requests_bypass_sampling(self):
        telemetry = configure_telemetry(
            enabled=True, sample_rate=0.0, slow_ms=0.0
        )
        with telemetry.request("search", query="slow one"):
            pass
        (record,) = telemetry.slowlog.records()
        assert record.slow is True and record.sampled is False
        registry = get_registry()
        assert registry.counter("telemetry.request.slow").value == 1
        assert registry.counter("telemetry.slowlog.captured").value == 1

    def test_tail_capture_errors_bypass_sampling(self):
        telemetry = configure_telemetry(
            enabled=True, sample_rate=0.0, slow_ms=1e12
        )
        with pytest.raises(ValueError):
            with telemetry.request("search", query="broken"):
                raise ValueError("no such function")
        (record,) = telemetry.slowlog.records()
        assert record.error == "ValueError: no such function"
        assert record.root.attrs["error"] == "ValueError: no such function"

    def test_unsampled_fast_healthy_requests_are_not_logged(self):
        telemetry = configure_telemetry(
            enabled=True, sample_rate=0.0, slow_ms=1e12
        )
        with telemetry.request("search"):
            pass
        assert len(telemetry.slowlog) == 0
        assert len(telemetry.events()) == 1  # SLO window still fed

    def test_record_captures_span_tree_and_attrs(self):
        telemetry = configure_telemetry(enabled=True, sample_rate=1.0)
        with telemetry.request(
            "search", query="dna repair", function="text"
        ) as request:
            with span("search.run"):
                pass
            request.set(hits=7)
            request.cache(hit=False)
            request.cache(hit=True)
        record = request.record
        assert record.kind == "search"
        assert record.attrs["function"] == "text"
        assert record.attrs["hits"] == 7
        assert record.cache_hits == 1 and record.cache_lookups == 2
        assert record.root.name == "request.search"
        assert [child.name for child in record.root.children] == ["search.run"]
        entry = record.to_dict()
        assert entry["spans"]["name"] == "request.search"
        assert entry["duration_ms"] == pytest.approx(
            record.duration_ms, abs=0.001
        )

    def test_long_queries_truncated_in_record(self):
        telemetry = configure_telemetry(enabled=True, sample_rate=1.0)
        with telemetry.request("search", query="x" * 500) as request:
            pass
        assert len(request.record.query) == 200

    def test_events_window_normalises_batch_latency(self):
        telemetry = configure_telemetry(enabled=True, sample_rate=0.0)
        with telemetry.request("search_many", queries=4):
            pass
        (event,) = telemetry.events()
        assert event.kind == "search_many"
        assert event.queries == 4
        assert event.duration_s <= 1.0  # per-query share of the batch


class TestTracerOwnership:
    def test_installs_and_discards_owned_tracer(self):
        telemetry = configure_telemetry(enabled=True, sample_rate=1.0)
        tracer = current_tracer()
        assert tracer is not None
        for _ in range(5):
            with telemetry.request("search"):
                pass
        # Roots are discarded per request: an always-on server must not
        # accumulate span trees outside the bounded slowlog.
        assert tracer.roots == []
        assert len(telemetry.slowlog) == 5

    def test_reuses_external_tracer_and_keeps_its_roots(self):
        tracer = start_tracing()
        telemetry = configure_telemetry(enabled=True, sample_rate=1.0)
        assert current_tracer() is tracer
        with telemetry.request("search"):
            pass
        assert [root.name for root in tracer.roots] == ["request.search"]
        stop_tracing()

    def test_reset_drops_owned_tracer(self):
        configure_telemetry(enabled=True)
        assert current_tracer() is not None
        reset_telemetry()
        assert current_tracer() is None

    def test_reset_leaves_external_tracer_installed(self):
        tracer = start_tracing()
        configure_telemetry(enabled=True)
        reset_telemetry()
        assert current_tracer() is tracer
        stop_tracing()


class TestValidation:
    def test_sample_rate_bounds(self):
        with pytest.raises(ValueError, match="sample_rate"):
            QueryTelemetry(sample_rate=1.5)
        with pytest.raises(ValueError, match="sample_rate"):
            QueryTelemetry(sample_rate=-0.1)

    def test_slow_ms_nonnegative(self):
        with pytest.raises(ValueError, match="slow_ms"):
            QueryTelemetry(slow_ms=-1.0)

    def test_to_dict_shape(self):
        telemetry = configure_telemetry(enabled=True, sample_rate=1.0)
        with telemetry.request("search", query="q"):
            pass
        dump = telemetry.to_dict()
        assert dump["enabled"] is True
        assert dump["window_events"] == 1
        assert len(dump["slowlog"]) == 1
        assert {status["name"] for status in dump["slo"]} == {
            "search-latency-p95", "search-errors", "result-cache-hits",
        }


class TestCrossThreadParenting:
    def test_attach_span_parents_worker_spans(self):
        start_tracing()
        with span("search.batch") as batch:
            parent = current_span()
            assert parent is batch

            def worker(i):
                with attach_span(parent):
                    with span("search.run", worker=i):
                        return i

            with ThreadPoolExecutor(max_workers=4) as pool:
                results = list(pool.map(worker, range(8)))
        tracer = stop_tracing()
        assert results == list(range(8))
        (root,) = tracer.roots
        children = [child.name for child in root.children]
        assert children == ["search.run"] * 8
        assert {child.attrs["worker"] for child in root.children} == set(
            range(8)
        )

    def test_attach_null_parent_is_noop(self):
        # No tracer, no parent: attach_span must not explode and spans
        # stay no-ops.
        with attach_span(current_span()):
            with span("search.run") as node:
                pass
        assert current_tracer() is None


class TestPipelineIntegration:
    @pytest.fixture(scope="class")
    def pipeline(self):
        return build_demo_pipeline(seed=11, n_papers=150, n_terms=30)

    def test_search_records_request_and_cache_attribution(self, pipeline):
        telemetry = configure_telemetry(enabled=True, sample_rate=1.0)
        pipeline.search("gene expression regulation", limit=5)
        pipeline.search("gene expression regulation", limit=5)  # cache hit
        records = {
            record.query_id: record for record in telemetry.slowlog.records()
        }
        assert len(records) == 2
        by_order = sorted(records.values(), key=lambda r: r.query_id)
        assert by_order[0].cache_lookups == 1 and by_order[0].cache_hits == 0
        assert by_order[1].cache_lookups == 1 and by_order[1].cache_hits == 1
        assert by_order[0].attrs["hits"] > 0
        assert get_registry().histogram("search.run.latency").count == 2

    def test_search_many_workers_parent_under_batch_root(self, pipeline):
        telemetry = configure_telemetry(enabled=True, sample_rate=1.0)
        queries = ["protein folding", "cell cycle", "dna repair"]
        pipeline.search_many(queries, limit=5, max_workers=3, use_cache=False)
        (record,) = [
            r for r in telemetry.slowlog.records() if r.kind == "search_many"
        ]
        assert record.queries == 3
        root = record.root
        assert root.name == "request.search_many"
        (pipeline_span,) = root.children
        assert pipeline_span.name == "pipeline.search_many"
        (batch,) = pipeline_span.children
        assert batch.name == "search.batch.run"
        # The satellite fix under test: worker spans land under the
        # batch span, not as orphaned roots of the pool threads.
        runs = [child for child in batch.children if child.name == "search.run"]
        assert len(runs) == 3

    def test_explain_runs_inside_request_context(self, pipeline):
        telemetry = configure_telemetry(enabled=True, sample_rate=1.0)
        query = "gene expression regulation"
        hits = pipeline.search(query, limit=1, use_cache=False)
        explanation = pipeline.explain(query, hits[0].paper_id)
        assert explanation.paper_id == hits[0].paper_id
        kinds = {record.kind for record in telemetry.slowlog.records()}
        assert "explain" in kinds
        assert get_registry().histogram("search.explain.latency").count == 1


def _seeded_draws(seed, n):
    import random

    rng = random.Random(seed)
    return [rng.random() for _ in range(n)]
