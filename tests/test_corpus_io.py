"""Unit tests for corpus JSONL persistence."""

import pytest

from repro.corpus.corpus import Corpus
from repro.corpus.io import read_corpus_jsonl, write_corpus_jsonl
from repro.corpus.paper import Paper


@pytest.fixture
def corpus():
    return Corpus(
        [
            Paper(
                paper_id="P1",
                title="Title one",
                abstract="Abstract",
                body="Body",
                index_terms=("a", "b"),
                authors=("X", "Y"),
                references=("P2",),
                year=2005,
                true_context_ids=("GO:1",),
            ),
            Paper(paper_id="P2", title="Title two"),
        ]
    )


class TestJsonlRoundTrip:
    def test_round_trip_preserves_papers(self, corpus, tmp_path):
        path = tmp_path / "corpus.jsonl"
        count = write_corpus_jsonl(corpus, path)
        assert count == 2
        loaded = read_corpus_jsonl(path)
        assert len(loaded) == 2
        assert loaded.paper("P1") == corpus.paper("P1")
        assert loaded.paper("P2") == corpus.paper("P2")

    def test_blank_lines_skipped(self, corpus, tmp_path):
        path = tmp_path / "corpus.jsonl"
        write_corpus_jsonl(corpus, path)
        content = path.read_text(encoding="utf-8")
        path.write_text("\n" + content + "\n\n", encoding="utf-8")
        assert len(read_corpus_jsonl(path)) == 2

    def test_malformed_line_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"paper_id": "P1", "title": "t"}\n{broken\n', encoding="utf-8")
        with pytest.raises(ValueError, match=":2:"):
            read_corpus_jsonl(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        assert len(read_corpus_jsonl(path)) == 0
