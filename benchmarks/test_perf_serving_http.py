"""HTTP serving benchmark: latency percentiles + max sustainable QPS.

Drives a real :class:`~repro.serving.service.SearchService` (ephemeral
port, same process) with the closed-loop generator from
``tools/loadgen.py``: N client threads issue ``GET /search`` as fast as
the service answers, a warmup phase fills caches and reaches steady
state, then a measurement window records every latency.  Closed-loop
throughput *is* the max sustainable rate -- offered load self-adjusts to
completion rate instead of collapsing the queue.

Recorded: p50/p95/p99 latency (ms) and sustained QPS, plus shed (429)
and transport-error counts, which must both be zero -- the admission
bounds are sized above the client count, so a shed here would mean
admission leaks slots.

A second, open-loop pass then offers a constant arrival rate at half
the measured closed-loop throughput and records latency from each
*scheduled* arrival time (no coordinated omission): those percentiles
land in the same JSON payload under ``open_loop`` so regressions in
queueing behaviour are visible next to the max-throughput numbers.

Emits ``benchmarks/results/BENCH_serving_http.json`` (read by
``tools/check_bench_regression.py``; the QPS floor travels in the
payload) in addition to the per-test JSON the conftest hook drops.

Scale knobs: ``REPRO_BENCH_HTTP_CLIENTS`` (default 8),
``REPRO_BENCH_HTTP_SECONDS`` (default 3), ``REPRO_BENCH_HTTP_WARMUP``
(default 1).
"""

import importlib.util
import json
import os
import sys
from pathlib import Path

from conftest import write_result

from repro.serving import SearchService

#: Conservative: loopback + result cache sustain orders of magnitude
#: more; the bar only has to catch a serving-path collapse.
MIN_SUSTAINED_QPS = 20.0
BENCH_QUERIES = 24


def _load_loadgen():
    """Import tools/loadgen.py (tools/ is deliberately not a package)."""
    path = Path(__file__).resolve().parent.parent / "tools" / "loadgen.py"
    spec = importlib.util.spec_from_file_location("loadgen", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules["loadgen"] = module
    spec.loader.exec_module(module)
    return module


def test_perf_serving_http(pipeline, queries, results_dir):
    loadgen = _load_loadgen()
    clients = int(os.environ.get("REPRO_BENCH_HTTP_CLIENTS", 8))
    duration_s = float(os.environ.get("REPRO_BENCH_HTTP_SECONDS", 3.0))
    warmup_s = float(os.environ.get("REPRO_BENCH_HTTP_WARMUP", 1.0))
    workload = queries[:BENCH_QUERIES]

    # Build the lazy substrates (graph, scores, engines) and fill the
    # result cache before any HTTP traffic: the bench measures the
    # serving path at steady state, not the one-off first-query build.
    for query in workload:
        pipeline.search(
            query, function="text", paper_set_name="text", limit=10,
            threshold=0.0, selection_strategy="probe",
        )

    service = SearchService(
        pipeline, port=0, max_in_flight=max(clients, 8), queue_depth=2 * clients
    )
    service.start()
    base_url = f"http://{service.host}:{service.port}"
    try:
        result = loadgen.run_load(
            base_url,
            workload,
            clients=clients,
            duration_s=duration_s,
            warmup_s=warmup_s,
        )
        # Open-loop pass at half the sustained rate: comfortably inside
        # capacity, so the percentiles measure queueing under a steady
        # offered load rather than saturation collapse.
        open_rate = max(result.qps / 2.0, 1.0)
        open_result = loadgen.run_load(
            base_url,
            workload,
            clients=clients,
            duration_s=duration_s,
            warmup_s=min(warmup_s, 0.5),
            mode="open",
            rate=open_rate,
        )
    finally:
        service.stop()

    table = "\n".join([
        f"papers               {len(pipeline.corpus)}",
        f"distinct queries     {len(workload)}",
        result.format_table(),
        f"floor                {MIN_SUSTAINED_QPS:.0f} qps sustained",
        "-- open loop --",
        open_result.format_table(),
    ])
    write_result(results_dir, "perf_serving_http", table)

    payload = result.to_dict()
    payload["papers"] = len(pipeline.corpus)
    payload["distinct_queries"] = len(workload)
    payload["floor"] = MIN_SUSTAINED_QPS
    payload["open_loop"] = open_result.to_dict()
    (results_dir / "BENCH_serving_http.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    assert result.errors == 0, f"transport/5xx errors under load: {result.errors}"
    assert result.shed == 0, f"admission shed {result.shed} requests"
    assert result.ok > 0 and result.latencies_s
    assert result.qps >= MIN_SUSTAINED_QPS
    assert open_result.errors == 0, (
        f"open-loop transport/5xx errors: {open_result.errors}"
    )
    assert open_result.ok > 0 and open_result.latencies_s
