#!/usr/bin/env python3
"""Fail CI when a stored benchmark result regresses below its floor.

Reads ``benchmarks/results/BENCH_query_serving_speedup.json`` (written by
``benchmarks/test_perf_query_serving.py``) and exits 1 if the recorded
single-query speedup of the single-scan serving path over the legacy
two-scan path has dropped below the floor the benchmark asserts.  The
floor travels inside the payload so bench and gate cannot drift apart.

When no result file exists (the benchmarks have not been run on this
checkout) the check is skipped with exit 0 -- the gate guards recorded
results, it does not force a bench run into every CI invocation.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_query_serving_speedup.json"
#: Fallback floor when an old payload carries none.
DEFAULT_FLOOR = 3.0


def main() -> int:
    if not RESULT_PATH.exists():
        print(
            f"check_bench_regression: {RESULT_PATH.relative_to(REPO_ROOT)} "
            "not found; skipping (run the benchmarks to record a result)"
        )
        return 0
    try:
        payload = json.loads(RESULT_PATH.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        print(f"check_bench_regression: cannot read result payload: {error}")
        return 1
    speedup = payload.get("single_query_speedup")
    floor = payload.get("floor", DEFAULT_FLOOR)
    if not isinstance(speedup, (int, float)):
        print(
            "check_bench_regression: payload has no numeric "
            f"'single_query_speedup': {payload!r}"
        )
        return 1
    if speedup < floor:
        print(
            f"check_bench_regression: single-query serving speedup {speedup}x "
            f"is below the {floor}x floor -- the single-scan fast path has "
            "regressed (see benchmarks/test_perf_query_serving.py)"
        )
        return 1
    print(
        f"check_bench_regression: serving speedup {speedup}x >= {floor}x floor"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
