"""The paper record: the unit the whole system ranks."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple


class Section(str, enum.Enum):
    """Textual facets of a paper (section 3.2's similarity components).

    ``AUTHORS`` and ``REFERENCES`` are *set-valued* facets: similarity over
    them uses overlap measures rather than TF-IDF cosine.
    """

    TITLE = "title"
    ABSTRACT = "abstract"
    BODY = "body"
    INDEX_TERMS = "index_terms"
    AUTHORS = "authors"
    REFERENCES = "references"


#: The facets carrying free text (vectorised with TF-IDF).
TEXT_SECTIONS: Tuple[Section, ...] = (
    Section.TITLE,
    Section.ABSTRACT,
    Section.BODY,
    Section.INDEX_TERMS,
)


@dataclass(frozen=True)
class Paper:
    """One publication.

    Attributes
    ----------
    paper_id:
        Stable identifier (PubMed-id-like string, e.g. ``"P0001234"``).
    title, abstract, body:
        Raw section text.
    index_terms:
        Keyword/MeSH-style index terms.
    authors:
        Ordered author names (duplicates removed by the corpus on load).
    references:
        Cited paper ids.  References may point outside the corpus
        (dangling); the citation graph keeps only resolvable edges but the
        paper record preserves the full list, as a real parser would.
    year:
        Publication year (used only for PubMed-style recency ordering in
        the keyword baseline).
    true_context_ids:
        *Generator ground truth only*: the ontology terms this paper was
        synthesised from.  Empty for real data.  Evaluation uses this to
        validate AC-answer sets, never to compute scores.
    """

    paper_id: str
    title: str
    abstract: str = ""
    body: str = ""
    index_terms: Tuple[str, ...] = field(default_factory=tuple)
    authors: Tuple[str, ...] = field(default_factory=tuple)
    references: Tuple[str, ...] = field(default_factory=tuple)
    year: int = 2000
    true_context_ids: Tuple[str, ...] = field(default_factory=tuple)

    def section_text(self, section: Section) -> str:
        """Raw text of a *textual* section (joined for index terms).

        Raises ValueError for the set-valued facets, which have no single
        text representation.
        """
        if section is Section.TITLE:
            return self.title
        if section is Section.ABSTRACT:
            return self.abstract
        if section is Section.BODY:
            return self.body
        if section is Section.INDEX_TERMS:
            return " ".join(self.index_terms)
        raise ValueError(f"section {section.value!r} is not textual")

    def all_text(self) -> str:
        """Concatenation of all textual sections (used for whole-paper vectors)."""
        return " ".join(
            part
            for part in (self.title, self.abstract, self.body, " ".join(self.index_terms))
            if part
        )

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSONL serialisation."""
        return {
            "paper_id": self.paper_id,
            "title": self.title,
            "abstract": self.abstract,
            "body": self.body,
            "index_terms": list(self.index_terms),
            "authors": list(self.authors),
            "references": list(self.references),
            "year": self.year,
            "true_context_ids": list(self.true_context_ids),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Paper":
        """Inverse of :meth:`to_dict`."""
        return cls(
            paper_id=str(data["paper_id"]),
            title=str(data.get("title", "")),
            abstract=str(data.get("abstract", "")),
            body=str(data.get("body", "")),
            index_terms=tuple(data.get("index_terms", ())),  # type: ignore[arg-type]
            authors=tuple(data.get("authors", ())),  # type: ignore[arg-type]
            references=tuple(data.get("references", ())),  # type: ignore[arg-type]
            year=int(data.get("year", 2000)),  # type: ignore[arg-type]
            true_context_ids=tuple(data.get("true_context_ids", ())),  # type: ignore[arg-type]
        )
