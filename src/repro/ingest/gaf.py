"""GO Annotation File (GAF 2.x) parsing.

GAF is the tab-separated format the GO Consortium distributes annotations
in.  The paper's pattern machinery needs, per GO term, the set of
*annotation evidence papers* -- exactly what GAF's DB:Reference column
(PMID entries) provides, filtered to experimental evidence codes so
electronically-inferred annotations don't seed patterns.

Relevant columns (1-based, per the GAF 2.2 spec):

- 5  GO ID          (``GO:0003700``)
- 6  DB:Reference   (``PMID:1234|GO_REF:0000033``)
- 7  Evidence code  (``IDA``, ``IEA``, ...)

Comment lines start with ``!``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, FrozenSet, IO, Iterable, List, Optional, Set, Union

from repro.ingest.medline import pmid_id

Source = Union[str, Path, IO]

#: The GO Consortium's experimental evidence codes -- annotations backed
#: by a publication that actually demonstrates the function.
EXPERIMENTAL_EVIDENCE_CODES: FrozenSet[str] = frozenset(
    {"EXP", "IDA", "IPI", "IMP", "IGI", "IEP", "HTP", "HDA", "HMP", "HGI", "HEP"}
)

_GO_ID_COLUMN = 4
_REFERENCE_COLUMN = 5
_EVIDENCE_COLUMN = 6
_MIN_COLUMNS = 7


def read_gaf_training_map(
    source: Source,
    evidence_codes: Optional[Iterable[str]] = None,
    restrict_to_paper_ids: Optional[Iterable[str]] = None,
    max_papers_per_term: Optional[int] = None,
) -> Dict[str, List[str]]:
    """Build ``{go_term_id: [PMID:..., ...]}`` from a GAF file.

    Parameters
    ----------
    evidence_codes:
        Keep only rows with these codes (default: the experimental set).
        Pass ``None`` explicitly via ``evidence_codes=()``? No -- an empty
        iterable keeps nothing; pass every code you want explicitly.
    restrict_to_paper_ids:
        If given, drop PMIDs not in this set (typically the corpus ids),
        so the training map never references papers you do not have.
    max_papers_per_term:
        Cap the evidence list per term (first-seen order), mirroring the
        generator's ``training_per_term``.

    Malformed rows (too few columns) are skipped silently -- real GAF
    files carry occasional ragged lines and the spec says to ignore them.
    """
    allowed_codes = (
        EXPERIMENTAL_EVIDENCE_CODES
        if evidence_codes is None
        else frozenset(evidence_codes)
    )
    allowed_papers = (
        frozenset(restrict_to_paper_ids)
        if restrict_to_paper_ids is not None
        else None
    )
    training: Dict[str, List[str]] = {}
    seen: Dict[str, Set[str]] = {}
    if isinstance(source, (str, Path)):
        handle = open(source, "r", encoding="utf-8")
        close = True
    else:
        handle = source
        close = False
    try:
        for line in handle:
            if not line.strip() or line.startswith("!"):
                continue
            columns = line.rstrip("\n").split("\t")
            if len(columns) < _MIN_COLUMNS:
                continue
            go_id = columns[_GO_ID_COLUMN].strip()
            evidence = columns[_EVIDENCE_COLUMN].strip()
            if not go_id.startswith("GO:") or evidence not in allowed_codes:
                continue
            for reference in columns[_REFERENCE_COLUMN].split("|"):
                reference = reference.strip()
                if not reference.upper().startswith("PMID:"):
                    continue
                paper_id = pmid_id(reference)
                if allowed_papers is not None and paper_id not in allowed_papers:
                    continue
                term_seen = seen.setdefault(go_id, set())
                if paper_id in term_seen:
                    continue
                papers = training.setdefault(go_id, [])
                if (
                    max_papers_per_term is not None
                    and len(papers) >= max_papers_per_term
                ):
                    continue
                papers.append(paper_id)
                term_seen.add(paper_id)
    finally:
        if close:
            handle.close()
    return training
