"""Metrics registry: counters, gauges, histograms, and monotonic timers.

Every instrumented module grabs the process-wide registry via
:func:`get_registry` and records against dotted metric names following the
``stage.component.metric`` convention (at least three lowercase segments,
e.g. ``citations.pagerank.iterations``).  Names are validated at metric
creation so a typo fails fast; ``tools/check_metric_names.py`` lints the
same convention statically.

Design constraints:

- **zero hard dependencies** -- stdlib only;
- **cheap on the hot path** -- metric objects are memoised per name, each
  update is one short critical section, and instrumented code aggregates
  inner-loop counts locally before recording once per call;
- **thread-safe** -- the registry and each metric guard their state with a
  lock (search traffic is expected to fan out across threads).

Histograms keep a bounded ring buffer of observations for percentile
queries (p50/p95/p99 via the nearest-rank method) while count/sum/min/max
stay exact over the full stream.
"""

from __future__ import annotations

import re
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

#: ``stage.component.metric`` -- three or more dot-separated lowercase
#: segments.  The documented catalog lives in docs/observability.md.
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*){2,}$")


def validate_metric_name(name: str) -> str:
    """Return ``name`` if it follows the convention; raise otherwise."""
    if not METRIC_NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} does not follow the "
            "'stage.component.metric' convention (>= 3 lowercase "
            "dot-separated segments)"
        )
    return name


class Counter:
    """A monotonically growing count (increments may be > 1)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value (last write wins)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """A stream of observations with exact aggregates + sampled percentiles.

    ``count``/``sum``/``min``/``max`` are exact over every observation;
    percentiles are computed over a ring buffer of the most recent
    ``max_samples`` observations (nearest-rank method), which bounds
    memory for long-running processes without losing the recent shape.
    """

    def __init__(self, name: str, max_samples: int = 8192) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.name = name
        self.max_samples = max_samples
        self._samples: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            if len(self._samples) < self.max_samples:
                self._samples.append(value)
            else:  # ring buffer: overwrite the oldest slot
                self._samples[self._count % self.max_samples] = value
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def min(self) -> Optional[float]:
        with self._lock:
            return self._min

    @property
    def max(self) -> Optional[float]:
        with self._lock:
            return self._max

    @property
    def mean(self) -> Optional[float]:
        with self._lock:
            return self._sum / self._count if self._count else None

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile over the sampled observations.

        ``p`` is in (0, 100]; returns None when nothing was observed.
        """
        if not 0.0 < p <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        with self._lock:
            if not self._samples:
                return None
            ordered = sorted(self._samples)
        rank = max(int(-(-p * len(ordered) // 100)), 1)  # ceil(p/100 * n)
        return ordered[rank - 1]

    def summary(self) -> Dict[str, Optional[float]]:
        """The aggregate view exported by snapshots and reports."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named metrics, memoised per name, with a JSON-able snapshot."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- metric accessors (create on first use) ------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                self._check_unused(name, self._counters)
                metric = Counter(validate_metric_name(name))
                self._counters[name] = metric
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                self._check_unused(name, self._gauges)
                metric = Gauge(validate_metric_name(name))
                self._gauges[name] = metric
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                self._check_unused(name, self._histograms)
                metric = Histogram(validate_metric_name(name))
                self._histograms[name] = metric
            return metric

    def _check_unused(self, name: str, own: Dict) -> None:
        """One name, one metric type -- catch cross-type reuse early."""
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ValueError(
                    f"metric name {name!r} already registered as a "
                    "different type"
                )

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Record a monotonic-clock duration (seconds) into a histogram."""
        histogram = self.histogram(name)
        started = time.perf_counter()
        try:
            yield
        finally:
            histogram.observe(time.perf_counter() - started)

    # -- export --------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """A plain-dict view of every metric, safe to json.dump."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(histograms.items())
            },
        }

    def format_table(self) -> str:
        """Human-readable ASCII rendering of the current snapshot."""
        from repro.obs.report import render_metrics

        return render_metrics(self.snapshot())

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_registry = MetricsRegistry()
_registry_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every instrumented module records into."""
    return _registry


def reset_registry() -> MetricsRegistry:
    """Install and return a fresh registry (test isolation / new run)."""
    global _registry
    with _registry_lock:
        _registry = MetricsRegistry()
        return _registry
