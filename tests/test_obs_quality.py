"""Rank-agreement math and reload drift evaluation (`repro.obs.quality`).

Pure-function layer: Jaccard@k / Kendall tau edge cases, the
``compare_rankings`` wrapper, ``evaluate_drift`` over per-function probe
rankings, and the gauge export the reload path publishes.
"""

import pytest

from repro.obs import get_registry
from repro.obs.quality import (
    DriftExceeded,
    RankAgreement,
    compare_rankings,
    evaluate_drift,
    export_drift_gauges,
    jaccard_at_k,
    kendall_tau_at_k,
)


class TestJaccard:
    def test_identical_rankings(self):
        assert jaccard_at_k(["a", "b", "c"], ["a", "b", "c"]) == 1.0

    def test_order_does_not_matter(self):
        assert jaccard_at_k(["a", "b", "c"], ["c", "b", "a"]) == 1.0

    def test_disjoint_rankings(self):
        assert jaccard_at_k(["a", "b"], ["c", "d"]) == 0.0

    def test_partial_overlap(self):
        # intersection {b, c} = 2, union {a, b, c, d} = 4
        assert jaccard_at_k(["a", "b", "c"], ["b", "c", "d"]) == 0.5

    def test_both_empty_is_full_agreement(self):
        assert jaccard_at_k([], []) == 1.0

    def test_one_empty_is_zero(self):
        assert jaccard_at_k(["a"], []) == 0.0
        assert jaccard_at_k([], ["a"]) == 0.0

    def test_k_truncates_before_comparing(self):
        assert jaccard_at_k(["a", "b", "x"], ["a", "b", "y"], k=2) == 1.0


class TestKendallTau:
    def test_same_order_is_plus_one(self):
        assert kendall_tau_at_k(["a", "b", "c"], ["a", "b", "c"]) == 1.0

    def test_reversed_order_is_minus_one(self):
        assert kendall_tau_at_k(["a", "b", "c"], ["c", "b", "a"]) == -1.0

    def test_tau_over_intersection_only(self):
        # Shared ids {a, c} keep their relative order despite noise ids.
        assert kendall_tau_at_k(["a", "b", "c"], ["x", "a", "c", "y"]) == 1.0

    def test_undefined_below_two_common_ids(self):
        assert kendall_tau_at_k(["a", "b"], ["a", "x"]) is None
        assert kendall_tau_at_k([], []) is None

    def test_mixed_order(self):
        # pairs: (a,b) concordant? primary a<b, shadow b<a -> discordant;
        # (a,c): concordant; (b,c): concordant => (2-1)/3
        value = kendall_tau_at_k(["a", "b", "c"], ["b", "a", "c"])
        assert value == pytest.approx(1.0 / 3.0)


class TestCompareRankings:
    def test_returns_agreement_with_churn(self):
        agreement = compare_rankings(["a", "b"], ["a", "x"], k=2)
        assert isinstance(agreement, RankAgreement)
        assert agreement.jaccard == pytest.approx(1.0 / 3.0)
        assert agreement.churn == pytest.approx(2.0 / 3.0)
        assert agreement.primary_count == 2
        assert agreement.shadow_count == 2

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError, match="k"):
            compare_rankings(["a"], ["a"], k=0)

    def test_to_dict_round_trips(self):
        payload = compare_rankings(["a"], ["a"], k=5).to_dict()
        assert payload["jaccard"] == 1.0
        assert payload["k"] == 5


class TestEvaluateDrift:
    def test_identical_rankings_report_zero_drift(self):
        rankings = {"text": {"q1": ("a", "b"), "q2": ("c",)}}
        report = evaluate_drift(rankings, rankings, k=10)
        assert report.max_churn == 0.0
        assert not report.exceeds(0.0)
        fn = report.functions[0]
        assert fn.function == "text"
        assert fn.queries == 2
        assert fn.worst_query is None

    def test_regression_produces_churn_and_worst_query(self):
        baseline = {"text": {"q1": ("a", "b"), "q2": ("c", "d")}}
        candidate = {"text": {"q1": ("a", "b"), "q2": ("x", "y")}}
        report = evaluate_drift(baseline, candidate, k=10)
        fn = report.functions[0]
        assert fn.max_churn == 1.0
        assert fn.worst_query == "q2"
        assert report.max_churn == 1.0
        assert report.exceeds(0.5)
        assert not report.exceeds(1.0)

    def test_missing_candidate_probe_counts_as_full_churn(self):
        baseline = {"text": {"q1": ("a",)}}
        report = evaluate_drift(baseline, {"text": {}}, k=10)
        assert report.max_churn == 1.0

    def test_empty_baseline_is_zero_drift(self):
        report = evaluate_drift({}, {}, k=10)
        assert report.max_churn == 0.0
        assert list(report.functions) == []
        assert not report.exceeds(0.0)

    def test_to_dict_shape(self):
        rankings = {"text": {"q": ("a",)}}
        payload = evaluate_drift(rankings, rankings, k=3).to_dict()
        assert payload["k"] == 3
        assert payload["max_churn"] == 0.0
        assert payload["functions"][0]["function"] == "text"

    def test_drift_exceeded_carries_the_report(self):
        baseline = {"text": {"q": ("a",)}}
        report = evaluate_drift(baseline, {"text": {"q": ("b",)}}, k=10)
        error = DriftExceeded(report, 0.2)
        assert error.report is report
        assert "0.2" in str(error)


class TestGaugeExport:
    def test_export_sets_the_documented_gauges(self):
        baseline = {"text": {"q": ("a", "b")}, "citation": {"q": ("a", "b")}}
        candidate = {"text": {"q": ("b", "c")}, "citation": {"q": ("a", "b")}}
        report = evaluate_drift(baseline, candidate, k=10)
        export_drift_gauges(report)
        gauges = {
            name: value
            for name, value in get_registry().snapshot()["gauges"].items()
        }
        assert gauges["serving.reload.drift.functions"] == 2
        assert gauges["serving.reload.drift.max_churn"] == pytest.approx(
            report.max_churn
        )
        assert "serving.reload.drift.text.churn" in gauges
        assert "serving.reload.drift.citation.jaccard" in gauges
