"""Background claims from the paradigm paper [2] (quoted in section 1):

"the context-based search approach was shown experimentally to reduce the
query output size by up to 70% and increase the search result accuracy by
up to 50%" relative to the PubMed-style keyword baseline.

Runs :class:`BaselineComparisonExperiment` over the query workload and
asserts the direction of both claims.
"""

from conftest import write_result

from repro.eval.experiments import BaselineComparisonExperiment


def test_context_search_vs_keyword_baseline(
    benchmark, pipeline, queries, results_dir
):
    experiment = BaselineComparisonExperiment(pipeline, queries)

    def run():
        return experiment.run()

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)

    write_result(results_dir, "context_vs_keyword", comparison.format_table())

    # Paper shape: output shrinks substantially and accuracy improves.
    assert comparison.mean_output_reduction > 0.2, (
        f"expected sizeable reduction, got "
        f"{comparison.mean_output_reduction:.1%}"
    )
    assert comparison.context_mean_precision > comparison.keyword_mean_precision, (
        f"context precision {comparison.context_mean_precision:.3f} must "
        f"beat keyword {comparison.keyword_mean_precision:.3f}"
    )
