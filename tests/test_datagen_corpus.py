"""Unit and statistical tests for the corpus generator."""

import random

import pytest

from repro.citations.graph import CitationGraph
from repro.datagen.corpus_gen import CorpusGenerator
from repro.datagen.lexicon import Lexicon
from repro.datagen.ontology_gen import OntologyGenerator
from repro.datagen.topics import TopicModel
from repro.text.tokenize import tokenize


@pytest.fixture(scope="module")
def dataset():
    generator = CorpusGenerator(
        n_papers=400,
        ontology_generator=OntologyGenerator(n_terms=80, max_depth=5),
    )
    return generator.generate(seed=11)


class TestBasicShape:
    def test_paper_count(self, dataset):
        assert len(dataset.corpus) == 400

    def test_every_paper_has_primary_term(self, dataset):
        for paper in dataset.corpus:
            assert paper.true_context_ids
            assert dataset.primary_term_of[paper.paper_id] == paper.true_context_ids[0]
            assert paper.true_context_ids[0] in dataset.ontology

    def test_papers_have_text(self, dataset):
        for paper in dataset.corpus:
            assert paper.title
            assert len(tokenize(paper.abstract)) > 20
            assert len(tokenize(paper.body)) > 80
            assert paper.index_terms

    def test_papers_have_authors(self, dataset):
        for paper in dataset.corpus:
            assert 1 <= len(paper.authors) <= 5
            assert len(set(paper.authors)) == len(paper.authors)

    def test_years_monotone_with_index(self, dataset):
        papers = list(dataset.corpus)
        years = [p.year for p in papers]
        assert years == sorted(years)
        assert min(years) >= 1985 and max(years) <= 2006

    def test_references_point_backwards(self, dataset):
        for paper in dataset.corpus:
            own_index = int(paper.paper_id[1:])
            for ref in paper.references:
                assert int(ref[1:]) < own_index

    def test_references_resolvable(self, dataset):
        # Generator only emits in-corpus references.
        assert dataset.corpus.dangling_references() == {}


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        generator = CorpusGenerator(
            n_papers=60, ontology_generator=OntologyGenerator(n_terms=30)
        )
        a = generator.generate(seed=5)
        b = generator.generate(seed=5)
        for paper_a, paper_b in zip(a.corpus, b.corpus):
            assert paper_a == paper_b

    def test_different_seed_differs(self):
        generator = CorpusGenerator(
            n_papers=60, ontology_generator=OntologyGenerator(n_terms=30)
        )
        a = generator.generate(seed=5)
        b = generator.generate(seed=6)
        assert any(pa != pb for pa, pb in zip(a.corpus, b.corpus))


class TestTrainingPapers:
    def test_training_papers_exist_for_popular_terms(self, dataset):
        non_empty = [tid for tid, pids in dataset.training_papers.items() if pids]
        assert len(non_empty) > len(dataset.training_papers) / 2

    def test_training_papers_primary_term_matches(self, dataset):
        for term_id, paper_ids in dataset.training_papers.items():
            for paper_id in paper_ids:
                assert dataset.primary_term_of[paper_id] == term_id

    def test_training_cap_respected(self, dataset):
        for paper_ids in dataset.training_papers.values():
            assert len(paper_ids) <= 6


class TestTopicalStructure:
    def test_title_contains_topic_vocabulary(self, dataset):
        """Titles draw from the primary term's topic (name words or jargon)."""
        hits = 0
        for paper in dataset.corpus:
            primary = paper.true_context_ids[0]
            topic_words = set(dataset.topics.jargon_of(primary))
            topic_words.update(dataset.ontology.term(primary).name_words())
            for ancestor in dataset.ontology.ancestors(primary):
                topic_words.update(dataset.topics.jargon_of(ancestor))
                topic_words.update(dataset.ontology.term(ancestor).name_words())
            title_words = set(tokenize(paper.title))
            if title_words & topic_words:
                hits += 1
        assert hits / len(dataset.corpus) > 0.95

    def test_citation_topical_locality(self, dataset):
        """Citations prefer the term neighbourhood over random papers."""
        graph = CitationGraph.from_corpus(dataset.corpus)
        onto = dataset.ontology
        topical = 0
        total = 0
        for citing, cited in graph.edges():
            total += 1
            t_citing = dataset.primary_term_of[citing]
            t_cited = dataset.primary_term_of[cited]
            if t_citing == t_cited or onto.are_hierarchically_related(
                t_citing, t_cited
            ):
                topical += 1
        assert total > 0
        # Neighbourhood pools dominate: well above the random baseline.
        assert topical / total > 0.4

    def test_deep_contexts_sparser_than_shallow(self, dataset):
        """The citation sparsity gradient the paper's findings rest on."""
        onto = dataset.ontology
        graph = CitationGraph.from_corpus(dataset.corpus)
        papers_in_subtree = {}
        for term_id in onto.term_ids():
            subtree = onto.descendants(term_id, include_self=True)
            papers_in_subtree[term_id] = [
                p.paper_id
                for p in dataset.corpus
                if p.true_context_ids[0] in subtree
            ]
        def mean_density(level):
            densities = [
                graph.subgraph(papers_in_subtree[t]).density()
                for t in onto.terms_at_level(level)
                if len(papers_in_subtree[t]) >= 5
            ]
            return sum(densities) / len(densities) if densities else None

        shallow = mean_density(2)
        deep = mean_density(onto.max_level)
        if shallow is not None and deep is not None:
            # Densities are per-pair so smaller sets can have higher raw
            # density; what matters is *edge count* sparsity:
            def mean_edges(level):
                counts = [
                    graph.subgraph(papers_in_subtree[t]).n_edges
                    for t in onto.terms_at_level(level)
                    if len(papers_in_subtree[t]) >= 5
                ]
                return sum(counts) / len(counts) if counts else 0.0

            assert mean_edges(2) > mean_edges(onto.max_level)


class TestValidation:
    def test_rejects_nonpositive_papers(self):
        with pytest.raises(ValueError):
            CorpusGenerator(n_papers=0).generate()


class TestTopicModel:
    def test_topics_cover_all_terms(self, dataset):
        for term_id in dataset.ontology.term_ids():
            assert dataset.topics.topic(term_id).term_id == term_id

    def test_jargon_disjoint_across_terms(self, dataset):
        seen = {}
        for term_id in dataset.ontology.term_ids():
            for word in dataset.topics.jargon_of(term_id):
                assert word not in seen, f"{word} owned by two terms"
                seen[word] = term_id

    def test_sample_chunk_returns_known_chunk(self, dataset):
        rng = random.Random(0)
        term_id = dataset.ontology.term_ids()[5]
        topic = dataset.topics.topic(term_id)
        for _ in range(50):
            assert topic.sample_chunk(rng) in topic.chunks

    def test_name_phrase_is_a_chunk(self, dataset):
        term_id = dataset.ontology.term_ids()[3]
        topic = dataset.topics.topic(term_id)
        name_words = dataset.ontology.term(term_id).name_words()
        assert name_words in topic.chunks
