"""Regression test: results must not depend on PYTHONHASHSEED.

Python randomises string hashing per process; any code path that lets a
set's iteration order influence results (rather than just performance)
produces run-to-run drift.  This test runs the core pipeline in two
subprocesses with different hash seeds and requires identical artefacts.

This guards against the class of bug fixed twice during development: the
topic model iterating ``ontology.ancestors()`` (chunk order changed which
chunk each RNG draw selected), and AC citation expansion breaking
PageRank ties by set order.
"""

import hashlib
import json
import os
import subprocess
import sys

import pytest

_PROBE = """
import hashlib, json
from repro.datagen import CorpusGenerator, OntologyGenerator, generate_queries
from repro.eval.ac_answer import ACAnswerBuilder
from repro.pipeline import Pipeline

gen = CorpusGenerator(
    n_papers=150,
    ontology_generator=OntologyGenerator(n_terms=40, max_depth=5),
)
ds = gen.generate(seed=13)
pipeline = Pipeline.from_dataset(ds, min_context_size=3)
builder = ACAnswerBuilder(
    pipeline.keyword_engine, pipeline.vectors, pipeline.citation_graph
)
queries = [w.query for w in generate_queries(ds, n_queries=3, seed=2)]
engine = pipeline.search_engine("text", "text")
artefacts = {
    "corpus": [p.to_dict() for p in ds.corpus],
    "text_set": {c.term_id: list(c.paper_ids) for c in pipeline.text_paper_set},
    "pattern_set": {
        c.term_id: list(c.paper_ids) for c in pipeline.pattern_paper_set
    },
    "scores": {
        c: {k: round(v, 12) for k, v in pipeline.prestige("text", "text").of(c).items()}
        for c in pipeline.prestige("text", "text").context_ids()
    },
    "ac": {q: sorted(builder.build(q).papers) for q in queries},
    "search": {
        q: [(h.paper_id, round(h.relevancy, 12)) for h in engine.search(q)]
        for q in queries
    },
}
digest = hashlib.md5(
    json.dumps(artefacts, sort_keys=True).encode()
).hexdigest()
print(digest)
"""


@pytest.mark.slow
def test_results_invariant_to_hash_seed():
    digests = []
    for hash_seed in ("1", "987654321"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        result = subprocess.run(
            [sys.executable, "-c", _PROBE],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        digests.append(result.stdout.strip())
    assert digests[0] == digests[1], (
        "pipeline artefacts drift with PYTHONHASHSEED: a set's iteration "
        "order is leaking into results somewhere"
    )
