"""Workspace building and hydration.

:class:`WorkspaceBuilder` walks the artifact graph in topological order
and builds only stale nodes -- a node is *fresh* when its manifest
fingerprint matches the fingerprint recomputed from the live inputs,
config, and dependency chain (see :mod:`repro.workspace.fingerprint`).
Fresh dependencies of a stale node are hydrated from disk, never rebuilt,
so changing one score function's config re-scores one file instead of
re-analysing the corpus.

:func:`open_workspace` is the serving path: hydrate every cache of an
existing pipeline from a fully-built workspace with zero rebuilds.

Observability follows the ``stage.component.metric`` convention:

- spans ``workspace.build.<artifact>`` / ``workspace.load.<artifact>``
  around each node, under ``workspace.build.run`` / ``workspace.load.run``;
- timers ``workspace.build.seconds`` / ``workspace.load.seconds``;
- counters ``workspace.build.artifacts`` (built), ``workspace.build.fresh``
  (skipped as fresh), ``workspace.load.artifacts`` (hydrated),
  ``workspace.load.stale`` (skipped as stale on a non-strict open).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.obs import get_registry, span
from repro.workspace.artifact import ARTIFACTS, topological_order
from repro.workspace.fingerprint import InputDigests, artifact_fingerprints
from repro.workspace.manifest import (
    MANIFEST_FILE,
    ManifestEntry,
    entries_from_payload,
    generation_archive_name,
    manifest_fingerprint,
    read_manifest,
    write_manifest,
)

PathLike = Union[str, Path]

#: Freshness states reported by :meth:`WorkspaceBuilder.status`.
FRESH, STALE, MISSING = "fresh", "stale", "missing"


class StaleWorkspaceError(RuntimeError):
    """A strict open found missing or stale artifacts."""


@dataclass(frozen=True)
class ArtifactStatus:
    """Freshness of one artifact relative to the live inputs."""

    name: str
    state: str  # one of FRESH / STALE / MISSING
    fingerprint: str  # the *expected* (recomputed) fingerprint
    reason: str = ""


@dataclass(frozen=True)
class BuildAction:
    """What the builder did for one artifact."""

    name: str
    action: str  # "built" | "fresh" | "loaded"
    wall_seconds: float


@dataclass(frozen=True)
class BuildReport:
    """Summary of one :meth:`WorkspaceBuilder.build` run."""

    directory: str
    actions: List[BuildAction]

    @property
    def built(self) -> List[str]:
        return [a.name for a in self.actions if a.action == "built"]

    @property
    def fresh(self) -> List[str]:
        return [a.name for a in self.actions if a.action == "fresh"]

    def is_noop(self) -> bool:
        return not self.built

    def format_table(self) -> str:
        lines = [f"workspace: {self.directory}"]
        for action in self.actions:
            lines.append(
                f"  {action.name:<24} {action.action:<6} "
                f"{action.wall_seconds * 1000.0:9.1f} ms"
            )
        lines.append(
            f"built {len(self.built)}, fresh {len(self.fresh)} "
            f"of {len(self.actions)} artifacts"
        )
        return "\n".join(lines)


class WorkspaceBuilder:
    """Incremental builder of the on-disk artifact workspace."""

    def __init__(self, pipeline, directory: PathLike) -> None:
        self.pipeline = pipeline
        self.directory = Path(directory)
        #: Lineage the *next* manifest write should carry; set by
        #: :func:`ingest_delta` before it rebuilds.  None preserves the
        #: existing manifest's generation/parent/delta (a full rebuild
        #: refreshes artifacts within the same generation).
        self._next_lineage: Optional[Dict[str, object]] = None

    # -- freshness ----------------------------------------------------------------

    def status(
        self, fingerprints: Optional[Dict[str, str]] = None
    ) -> List[ArtifactStatus]:
        """Per-artifact freshness against the current inputs and config."""
        if fingerprints is None:
            fingerprints = artifact_fingerprints(self.pipeline)
        payload = read_manifest(self.directory)
        entries = entries_from_payload(payload) if payload else {}
        statuses: List[ArtifactStatus] = []
        for name in topological_order():
            artifact = ARTIFACTS[name]
            expected = fingerprints[name]
            entry = entries.get(name)
            if entry is None:
                statuses.append(
                    ArtifactStatus(name, MISSING, expected, "not in manifest")
                )
                continue
            if not (self.directory / entry.file).exists():
                statuses.append(
                    ArtifactStatus(name, MISSING, expected, f"{entry.file} missing")
                )
                continue
            if entry.schema_version != artifact.schema_version:
                statuses.append(
                    ArtifactStatus(
                        name,
                        STALE,
                        expected,
                        f"schema v{entry.schema_version} != v{artifact.schema_version}",
                    )
                )
                continue
            if entry.fingerprint != expected:
                statuses.append(
                    ArtifactStatus(name, STALE, expected, "fingerprint changed")
                )
                continue
            statuses.append(ArtifactStatus(name, FRESH, expected))
        return statuses

    # -- building -----------------------------------------------------------------

    def build(
        self,
        only: Optional[Iterable[str]] = None,
        force: bool = False,
    ) -> BuildReport:
        """Build stale artifacts (all of them, or ``only`` + dependencies).

        Fresh artifacts are left on disk untouched; the ones a stale node
        needs are hydrated into the pipeline first so the stale build
        reuses them.  Returns a :class:`BuildReport`; re-running on an
        unchanged workspace is a no-op for every artifact.
        """
        registry = get_registry()
        self.directory.mkdir(parents=True, exist_ok=True)
        inputs = InputDigests.of_pipeline(self.pipeline)
        fingerprints = artifact_fingerprints(self.pipeline, inputs)
        statuses = {s.name: s for s in self.status(fingerprints)}
        requested = list(only) if only is not None else None
        closure = topological_order(requested)
        # ``force`` re-does the *requested* artifacts; their fresh
        # dependencies are still hydrated, not rebuilt.
        forced = set(requested if requested is not None else closure) if force else set()
        to_build = {
            name
            for name in closure
            if name in forced or statuses[name].state != FRESH
        }
        # Transitive dependencies of anything being built must be live in
        # the pipeline: hydrate the fresh ones instead of rebuilding.
        needed: set = set()
        pending = {dep for name in to_build for dep in ARTIFACTS[name].deps}
        while pending:
            dep = pending.pop()
            if dep in needed:
                continue
            needed.add(dep)
            pending.update(ARTIFACTS[dep].deps)

        payload = read_manifest(self.directory)
        entries = entries_from_payload(payload) if payload else {}
        actions: List[BuildAction] = []
        with span("workspace.build.run", directory=str(self.directory)):
            for name in closure:
                artifact = ARTIFACTS[name]
                path = self.directory / artifact.filename
                if name in to_build:
                    started = time.perf_counter()
                    with span(f"workspace.build.{name}"), registry.timer(
                        "workspace.build.seconds"
                    ):
                        obj = artifact.build(self.pipeline)
                        artifact.save(obj, path)
                    elapsed = time.perf_counter() - started
                    registry.counter("workspace.build.artifacts").inc()
                    entries[name] = ManifestEntry(
                        file=artifact.filename,
                        fingerprint=fingerprints[name],
                        schema_version=artifact.schema_version,
                        deps=list(artifact.deps),
                        built_at=time.time(),
                        wall_seconds=round(elapsed, 6),
                        size_bytes=path.stat().st_size,
                    )
                    actions.append(BuildAction(name, "built", elapsed))
                else:
                    registry.counter("workspace.build.fresh").inc()
                    if name in needed and not artifact.installed(self.pipeline):
                        started = time.perf_counter()
                        _load_artifact(self.pipeline, self.directory, name)
                        actions.append(
                            BuildAction(name, "fresh", time.perf_counter() - started)
                        )
                    else:
                        actions.append(BuildAction(name, "fresh", 0.0))
            lineage = self._next_lineage
            if lineage is None:
                lineage = {
                    "generation": int(payload.get("generation", 0)) if payload else 0,
                    "parent": payload.get("parent") if payload else None,
                    "delta": payload.get("delta") if payload else None,
                }
            write_manifest(
                self.directory,
                {
                    "corpus": inputs.corpus,
                    "ontology": inputs.ontology,
                    "training": inputs.training,
                },
                entries,
                generation=int(lineage["generation"]),
                parent=lineage["parent"],
                delta=lineage["delta"],
            )
            self._next_lineage = None
            registry.gauge("workspace.generation.current").set(
                float(lineage["generation"])
            )
        return BuildReport(directory=str(self.directory), actions=actions)


def _load_artifact(pipeline, directory: Path, name: str) -> None:
    """Load one artifact file and install it into the pipeline's caches."""
    artifact = ARTIFACTS[name]
    registry = get_registry()
    with span(f"workspace.load.{name}"), registry.timer("workspace.load.seconds"):
        obj = artifact.load(directory / artifact.filename, pipeline)
        artifact.install(pipeline, obj)
    registry.counter("workspace.load.artifacts").inc()


def open_workspace(pipeline, directory: PathLike, strict: bool = True) -> int:
    """Hydrate ``pipeline``'s caches from a built workspace.

    Returns the number of artifacts loaded.  With ``strict=True`` (the
    serving default) any missing or stale artifact raises
    :class:`StaleWorkspaceError` -- a production instance should never
    silently fall back to a multi-minute rebuild.  With ``strict=False``
    fresh artifacts are loaded and stale ones are left to lazy rebuild.
    """
    directory = Path(directory)
    registry = get_registry()
    with span("workspace.load.run", directory=str(directory), strict=strict):
        statuses = WorkspaceBuilder(pipeline, directory).status()
        not_fresh = [s for s in statuses if s.state != FRESH]
        if strict and not_fresh:
            details = ", ".join(f"{s.name} ({s.state}: {s.reason})" for s in not_fresh)
            raise StaleWorkspaceError(
                f"workspace {directory} is not fully built: {details}; "
                f"run `repro build` (or open with strict=False)"
            )
        loaded = 0
        for status in statuses:
            if status.state != FRESH:
                registry.counter("workspace.load.stale").inc()
                continue
            _load_artifact(pipeline, directory, status.name)
            loaded += 1
        if loaded:
            # Hydration replaced ranking inputs: memoised engines and
            # cached results built from the old objects must go.
            invalidate = getattr(pipeline, "invalidate_serving_caches", None)
            if invalidate is not None:
                invalidate()
    return loaded


def workspace_status(pipeline, directory: PathLike) -> List[ArtifactStatus]:
    """Convenience wrapper: per-artifact freshness for a data directory."""
    return WorkspaceBuilder(pipeline, directory).status()


def ingest_delta(
    pipeline,
    directory: PathLike,
    added_papers=(),
    removed_ids=(),
):
    """Apply a corpus delta and persist it as a new workspace generation.

    The workspace at ``directory`` must already hold a manifest (built
    against ``pipeline``'s pre-delta corpus).  The delta is applied to
    the live substrates via :meth:`SubstrateStore.apply_delta` -- the
    incremental path, not a rebuild -- then the superseded manifest is
    archived as ``manifest.gen-<N>.json`` and the changed artifacts are
    re-serialised from the already-updated in-memory state under
    generation N+1, chained to the parent by
    :func:`~repro.workspace.manifest.manifest_fingerprint`.

    Returns ``(delta_report, build_report)``; a no-op delta (both lists
    empty or cancelling) archives nothing and returns
    ``(delta_report, None)``.
    """
    directory = Path(directory)
    payload = read_manifest(directory)
    if payload is None:
        raise StaleWorkspaceError(
            f"workspace {directory} has no manifest; run a full build "
            f"before ingesting deltas"
        )
    parent_generation = int(payload.get("generation", 0))
    parent_fingerprint = manifest_fingerprint(payload)
    registry = get_registry()
    with span(
        "workspace.ingest.run",
        directory=str(directory),
        parent_generation=parent_generation,
    ) as trace:
        report = pipeline.substrates.apply_delta(
            added_papers=added_papers, removed_ids=removed_ids
        )
        if report.is_noop:
            trace.set(generation=parent_generation, noop=True)
            return report, None
        # Archive the parent manifest before build() overwrites it; the
        # artifact files themselves are overwritten in place (generations
        # share artifact storage -- the chain records *what changed*, not
        # full snapshots).
        archive = directory / generation_archive_name(parent_generation)
        archive.write_bytes((directory / MANIFEST_FILE).read_bytes())
        builder = WorkspaceBuilder(pipeline, directory)
        builder._next_lineage = {
            "generation": parent_generation + 1,
            "parent": parent_fingerprint,
            "delta": {"added": list(report.added), "removed": list(report.removed)},
        }
        build_report = builder.build()
        trace.set(
            generation=parent_generation + 1,
            added=len(report.added),
            removed=len(report.removed),
        )
    registry.counter("workspace.ingest.generations").inc()
    return report, build_report
