"""Cross-validation against reference implementations.

Our PageRank/HITS/Spearman are hand-rolled (the paper's variants differ
from library defaults in teleport handling), so these tests pin them
against networkx and scipy on shared ground: where the algorithms
coincide, the numbers must too.
"""

import random

import networkx as nx
import pytest
import scipy.stats

from repro.citations.graph import CitationGraph
from repro.citations.hits import hits_scores
from repro.citations.pagerank import pagerank
from repro.eval.stats import kendall_tau, spearman


def random_graph(seed, n=30, p=0.12):
    rng = random.Random(seed)
    graph = CitationGraph()
    for i in range(n):
        graph.add_node(f"N{i}")
    for i in range(n):
        for j in range(n):
            if i != j and rng.random() < p:
                graph.add_edge(f"N{i}", f"N{j}")
    return graph


class TestNetworkxInterop:
    def test_round_trip(self):
        graph = random_graph(1)
        back = CitationGraph.from_networkx(graph.to_networkx())
        assert sorted(back.nodes()) == sorted(graph.nodes())
        assert set(back.edges()) == set(graph.edges())

    def test_self_loops_dropped_on_import(self):
        nx_graph = nx.DiGraph()
        nx_graph.add_edge("a", "a")
        nx_graph.add_edge("a", "b")
        imported = CitationGraph.from_networkx(nx_graph)
        assert list(imported.edges()) == [("a", "b")]


class TestPagerankAgainstNetworkx:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_networkx_pagerank(self, seed):
        """Our E2 variant with dangling redistribution == nx.pagerank.

        networkx uses damping alpha = 1 - d and the same uniform teleport
        and dangling handling, so the fixed points must agree.
        """
        graph = random_graph(seed)
        ours = pagerank(graph, d=0.15, tolerance=1e-12).scores
        reference = nx.pagerank(graph.to_networkx(), alpha=0.85, tol=1e-12)
        for node in graph.nodes():
            assert ours[node] == pytest.approx(reference[node], abs=1e-8)

    def test_matches_on_graph_with_dangling_nodes(self):
        graph = CitationGraph(edges=[("a", "b"), ("c", "b"), ("b", "d")])
        graph.add_node("isolated")
        ours = pagerank(graph, d=0.15, tolerance=1e-12).scores
        reference = nx.pagerank(graph.to_networkx(), alpha=0.85, tol=1e-12)
        for node in graph.nodes():
            assert ours[node] == pytest.approx(reference[node], abs=1e-8)


class TestHitsAgainstNetworkx:
    @pytest.mark.parametrize("seed", [4, 5])
    def test_authority_ranking_matches(self, seed):
        """HITS normalisations differ (L2 here, L1 in networkx), so we
        compare *rankings*, which the normalisation cannot change."""
        graph = random_graph(seed)
        ours = hits_scores(graph, max_iterations=500, tolerance=1e-12).authorities
        _hubs, reference = nx.hits(graph.to_networkx(), max_iter=1000, tol=1e-12)
        our_ranking = sorted(graph.nodes(), key=lambda n: (-ours[n], n))
        reference_ranking = sorted(
            graph.nodes(), key=lambda n: (-reference[n], n)
        )
        # Top-10 agreement is what matters for prestige.
        assert our_ranking[:10] == reference_ranking[:10]


class TestStatsAgainstScipy:
    @pytest.mark.parametrize("seed", [7, 8, 9])
    def test_spearman_matches_scipy(self, seed):
        rng = random.Random(seed)
        keys = [f"k{i}" for i in range(25)]
        a = {k: rng.random() for k in keys}
        b = {k: rng.random() for k in keys}
        ours = spearman(a, b)
        reference = scipy.stats.spearmanr(
            [a[k] for k in sorted(keys)], [b[k] for k in sorted(keys)]
        ).statistic
        assert ours == pytest.approx(reference, abs=1e-10)

    def test_spearman_with_ties_matches_scipy(self):
        a = {"a": 1.0, "b": 2.0, "c": 2.0, "d": 3.0, "e": 1.0}
        b = {"a": 5.0, "b": 4.0, "c": 4.0, "d": 2.0, "e": 5.0}
        keys = sorted(a)
        reference = scipy.stats.spearmanr(
            [a[k] for k in keys], [b[k] for k in keys]
        ).statistic
        assert spearman(a, b) == pytest.approx(reference, abs=1e-10)

    @pytest.mark.parametrize("seed", [10, 11])
    def test_kendall_matches_scipy_tau_a_on_tieless_data(self, seed):
        rng = random.Random(seed)
        keys = [f"k{i}" for i in range(15)]
        # Sample without replacement -> no ties -> tau-a == tau-b.
        values_a = rng.sample(range(1000), len(keys))
        values_b = rng.sample(range(1000), len(keys))
        a = dict(zip(keys, map(float, values_a)))
        b = dict(zip(keys, map(float, values_b)))
        reference = scipy.stats.kendalltau(
            [a[k] for k in sorted(keys)], [b[k] for k in sorted(keys)]
        ).statistic
        assert kendall_tau(a, b) == pytest.approx(reference, abs=1e-10)
