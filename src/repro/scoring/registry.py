"""The pluggable score-function registry.

The paper's core contribution is comparing *interchangeable* prestige
score functions over pre-computed contexts (section 3).  This module
makes that interchangeability structural: every score function is a
:class:`ScoreFunctionSpec` registered by name, and every layer that used
to hard-code function names -- the pipeline's prestige dispatch, the CLI
``--function`` choices, the workspace score artifacts, the evaluation
sweeps -- derives its list from the registry instead.  Registering one
spec therefore gets a new ranking function fingerprinted persistence,
CLI exposure, and inclusion in evaluation sweeps with no edits to core
modules (see ``docs/architecture.md`` for the worked ``combined``
example).

A spec declares:

- ``name`` -- the registry key, CLI value, and metric segment;
- ``factory`` -- builds the scorer from a
  :class:`~repro.serving.substrate.SubstrateStore` (the build layer that
  owns index/vectors/graph/paper sets/representatives);
- ``substrates`` -- the workspace-artifact names the computed scores
  depend on (beyond the paper-set artifact itself), which become the
  fingerprint dependency chain of each persisted score artifact;
- ``paper_sets`` -- the context paper sets the function is persisted and
  swept on (its evaluation arms); an empty tuple keeps a function
  searchable but out of the workspace and the experiment sweeps (the
  ``hits`` road-not-taken);
- ``in_overlap`` -- whether the function joins the figure-5.3 pairwise
  overlap grid.
"""

from __future__ import annotations

import itertools
import re
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Tuple

#: The two context paper sets of section 4.  Paper-set construction is
#: structural (text assignment vs pattern assignment), not pluggable --
#: specs may only reference these names.
PAPER_SET_NAMES: Tuple[str, ...] = ("text", "pattern")

#: Registry keys double as metric segments and CLI values.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")


@dataclass(frozen=True)
class ScoreFunctionSpec:
    """Declaration of one prestige score function (see module docstring)."""

    name: str
    #: ``factory(substrates) -> PrestigeScoreFunction``; called lazily, at
    #: most once per (function, paper set) thanks to score memoisation.
    factory: Callable
    #: Workspace-artifact names the scores depend on, e.g.
    #: ``("citation_graph",)`` -- the paper-set artifact is implicit.
    substrates: Tuple[str, ...] = ()
    #: Paper sets the function is persisted on and swept over in
    #: evaluation (its arms).  Empty = searchable only.
    paper_sets: Tuple[str, ...] = ()
    description: str = ""
    #: Include in the pairwise top-k% overlap experiment (figure 5.3).
    in_overlap: bool = False
    #: How a corpus delta invalidates this function's computed scores:
    #:
    #: - ``"contexts"`` -- per-context scores depend only on structure
    #:   *induced by the context's own paper set* (e.g. PageRank/HITS on
    #:   the context's citation subgraph), so contexts whose paper sets
    #:   did not change keep byte-identical scores and only changed
    #:   contexts are re-scored;
    #: - ``"full"`` (the conservative default) -- scores couple to
    #:   corpus-global statistics (IDF, coverage, co-authorship), so any
    #:   delta drops the whole memo and the function recomputes lazily.
    delta_scope: str = "full"

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValueError(
                f"score function name {self.name!r} must match "
                f"{_NAME_RE.pattern} (it becomes a CLI value, a file-name "
                f"segment, and a metric segment)"
            )
        if not callable(self.factory):
            raise ValueError(f"score function {self.name!r}: factory not callable")
        for paper_set in self.paper_sets:
            if paper_set not in PAPER_SET_NAMES:
                raise ValueError(
                    f"score function {self.name!r}: unknown paper set "
                    f"{paper_set!r}; expected one of {PAPER_SET_NAMES}"
                )
        if self.delta_scope not in ("contexts", "full"):
            raise ValueError(
                f"score function {self.name!r}: unknown delta_scope "
                f"{self.delta_scope!r}; expected 'contexts' or 'full'"
            )

    def arms(self) -> List[Tuple[str, str]]:
        """The function's evaluation arms as (function, paper_set) pairs."""
        return [(self.name, paper_set) for paper_set in self.paper_sets]


_registry: Dict[str, ScoreFunctionSpec] = {}
_registry_lock = threading.Lock()
#: Bumped on every mutation so derived views (the workspace artifact
#: registry, memoised CLI parsers) can cheaply detect staleness.
_revision: int = 0


def register(spec: ScoreFunctionSpec, replace: bool = False) -> ScoreFunctionSpec:
    """Register ``spec``; the single entry point for built-ins and plugins.

    Raises ``ValueError`` when the name is taken (pass ``replace=True``
    to swap an experimental variant in deliberately).  Returns the spec
    for decorator-style chaining.
    """
    global _revision
    with _registry_lock:
        if spec.name in _registry and not replace:
            raise ValueError(
                f"score function {spec.name!r} is already registered "
                f"(pass replace=True to override)"
            )
        _registry[spec.name] = spec
        _revision += 1
    return spec


def unregister(name: str) -> ScoreFunctionSpec:
    """Remove a registration (tests and plugin teardown); returns it."""
    global _revision
    with _registry_lock:
        try:
            spec = _registry.pop(name)
        except KeyError:
            raise ValueError(f"score function {name!r} is not registered") from None
        _revision += 1
    return spec


@contextmanager
def temporary_registration(
    spec: ScoreFunctionSpec, replace: bool = False
) -> Iterator[ScoreFunctionSpec]:
    """Register ``spec`` for the duration of a ``with`` block.

    Restores any shadowed spec on exit -- the idiom for tests and
    short-lived experiment functions.
    """
    with _registry_lock:
        shadowed = _registry.get(spec.name)
    if shadowed is not None and not replace:
        raise ValueError(
            f"score function {spec.name!r} is already registered "
            f"(pass replace=True to shadow it temporarily)"
        )
    register(spec, replace=replace)
    try:
        yield spec
    finally:
        unregister(spec.name)
        if shadowed is not None:
            register(shadowed)


def get(name: str) -> ScoreFunctionSpec:
    """The spec registered under ``name``.

    Raises ``ValueError`` naming the known functions -- the one
    "unknown prestige function" error every layer shares.
    """
    with _registry_lock:
        spec = _registry.get(name)
        if spec is None:
            known = ", ".join(sorted(_registry))
            raise ValueError(
                f"unknown prestige function {name!r}; registered: {known}"
            )
        return spec


def is_registered(name: str) -> bool:
    with _registry_lock:
        return name in _registry


def specs() -> List[ScoreFunctionSpec]:
    """Every registered spec, in registration order."""
    with _registry_lock:
        return list(_registry.values())


def function_names() -> Tuple[str, ...]:
    """Registered function names in registration order (CLI choices)."""
    with _registry_lock:
        return tuple(_registry)


def evaluation_arms() -> Tuple[Tuple[str, str], ...]:
    """Every (function, paper_set) experiment arm, registration-ordered.

    This single list drives the workspace score artifacts, the
    ``repro evaluate`` sweep, and the report sections -- one place to
    look when asking "what gets compared?".
    """
    return tuple(
        arm for spec in specs() for arm in spec.arms()
    )


def overlap_pairs() -> Tuple[Tuple[str, str], ...]:
    """Pairs for the figure-5.3 overlap grid (functions opted in)."""
    names = [spec.name for spec in specs() if spec.in_overlap]
    return tuple(itertools.combinations(names, 2))


def registry_revision() -> int:
    """Mutation counter; derived views compare it to detect staleness."""
    with _registry_lock:
        return _revision
