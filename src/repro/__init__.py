"""Context-based literature search with prestige ranking.

Reproduction of *"Evaluating Different Ranking Functions for Context-Based
Literature Search"* (Ratprasartporn, Bani-Ahmad, Cakmak, Po, Ozsoyoglu,
ICDE 2007).

The package is organised as a set of substrates plus the paper's core
contribution:

- :mod:`repro.text` -- tokenisation, stemming, TF-IDF, similarity, phrases.
- :mod:`repro.ontology` -- GO-like ontology DAG, information content, OBO IO.
- :mod:`repro.corpus` -- papers (title/abstract/body/index terms/authors/
  references) and corpus containers with persistence.
- :mod:`repro.citations` -- citation graphs, PageRank, HITS, bibliographic
  coupling, co-citation.
- :mod:`repro.index` -- inverted index and keyword search engine (the
  PubMed-style baseline).
- :mod:`repro.datagen` -- seeded synthetic corpus/ontology/workload
  generation standing in for the 72k-paper PubMed testbed.
- :mod:`repro.core` -- contexts, context paper sets, representative papers,
  the three prestige score functions, and the context-based search engine.
- :mod:`repro.eval` -- AC-answer sets, precision, top-k% overlap,
  separability, and the per-figure experiment runners.

Quickstart::

    from repro import build_demo_pipeline

    pipeline = build_demo_pipeline(seed=7, n_papers=800)
    results = pipeline.search("dna repair pathway", limit=10)
    for hit in results:
        print(hit.relevancy, hit.paper_id, hit.context_id)
"""

from repro.corpus import Corpus, Paper
from repro.ontology import Ontology, Term
from repro.citations import CitationGraph, hits_scores, pagerank

from repro.core import (
    Context,
    ContextPaperSet,
    ContextSearchEngine,
    CitationPrestige,
    PatternPrestige,
    TextPrestige,
    SearchHit,
)
from repro.pipeline import Pipeline, build_demo_pipeline

__version__ = "1.0.0"

__all__ = [
    "Corpus",
    "Paper",
    "Ontology",
    "Term",
    "CitationGraph",
    "pagerank",
    "hits_scores",
    "Context",
    "ContextPaperSet",
    "ContextSearchEngine",
    "CitationPrestige",
    "TextPrestige",
    "PatternPrestige",
    "SearchHit",
    "Pipeline",
    "build_demo_pipeline",
    "__version__",
]
