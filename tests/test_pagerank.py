"""Unit tests for the section-3.1 PageRank variant."""

import pytest

from repro.citations.graph import CitationGraph
from repro.citations.pagerank import PageRankResult, TeleportKind, pagerank


def star_graph():
    """Everyone cites HUB."""
    return CitationGraph(edges=[("A", "HUB"), ("B", "HUB"), ("C", "HUB")])


def cycle_graph():
    return CitationGraph(edges=[("A", "B"), ("B", "C"), ("C", "A")])


class TestE2Uniform:
    def test_scores_sum_to_one(self):
        result = pagerank(star_graph())
        assert sum(result.scores.values()) == pytest.approx(1.0)

    def test_hub_wins_star(self):
        result = pagerank(star_graph())
        assert result.top(1) == ["HUB"]
        hub = result.scores["HUB"]
        for node in ("A", "B", "C"):
            assert hub > result.scores[node]

    def test_cycle_is_uniform(self):
        result = pagerank(cycle_graph())
        values = list(result.scores.values())
        assert max(values) - min(values) < 1e-9

    def test_converges(self):
        result = pagerank(cycle_graph())
        assert result.converged
        assert result.residual < 1e-9

    def test_empty_graph(self):
        result = pagerank(CitationGraph())
        assert result.scores == {}
        assert result.converged

    def test_single_node(self):
        result = pagerank(CitationGraph(nodes=["X"]))
        assert result.scores["X"] == pytest.approx(1.0)

    def test_edgeless_graph_uniform(self):
        g = CitationGraph(nodes=["A", "B", "C", "D"])
        result = pagerank(g)
        for score in result.scores.values():
            assert score == pytest.approx(0.25)

    def test_dangling_mass_preserved(self):
        # B has no outgoing citations: its mass must be redistributed.
        g = CitationGraph(edges=[("A", "B")])
        result = pagerank(g)
        assert sum(result.scores.values()) == pytest.approx(1.0)
        assert result.scores["B"] > result.scores["A"]

    def test_initial_vector_does_not_change_fixed_point(self):
        g = star_graph()
        uniform = pagerank(g)
        skewed = pagerank(g, initial={"A": 1.0})
        for node in g.nodes():
            assert uniform.scores[node] == pytest.approx(
                skewed.scores[node], abs=1e-6
            )

    def test_hand_computed_two_node_chain(self):
        # A -> B with d = 0.15:
        #   p(A) = 0.15/2 + 0.85 * dangling(B)/2
        #   p(B) = 0.15/2 + 0.85 * (p(A) + dangling(B)/2)
        # Solve: p_A = (d/2 + 0.85*p_B/2) with dangling B donating p_B/2...
        # easier to just assert the converged invariants:
        result = pagerank(CitationGraph(edges=[("A", "B")]), d=0.15)
        p_a, p_b = result.scores["A"], result.scores["B"]
        assert p_a + p_b == pytest.approx(1.0)
        # Fixed point equations with dangling redistribution:
        assert p_a == pytest.approx(0.15 / 2 + 0.85 * (p_b / 2), abs=1e-8)
        assert p_b == pytest.approx(0.15 / 2 + 0.85 * (p_a + p_b / 2), abs=1e-8)


class TestE1Constant:
    def test_scores_exceed_teleport_floor(self):
        result = pagerank(star_graph(), teleport=TeleportKind.E1_CONSTANT, d=0.15)
        for score in result.scores.values():
            assert score >= 0.15 - 1e-12

    def test_ranking_matches_e2(self):
        g = CitationGraph(
            edges=[("A", "B"), ("C", "B"), ("B", "D"), ("A", "D"), ("D", "A")]
        )
        rank_e1 = pagerank(g, teleport=TeleportKind.E1_CONSTANT).top(4)
        rank_e2 = pagerank(g, teleport=TeleportKind.E2_UNIFORM).top(4)
        assert rank_e1 == rank_e2

    def test_converges(self):
        result = pagerank(cycle_graph(), teleport=TeleportKind.E1_CONSTANT)
        assert result.converged


class TestValidation:
    @pytest.mark.parametrize("bad_d", [0.0, 1.0, -0.1, 1.5])
    def test_d_range(self, bad_d):
        with pytest.raises(ValueError):
            pagerank(star_graph(), d=bad_d)

    def test_zero_mass_initial_rejected(self):
        with pytest.raises(ValueError, match="positive mass"):
            pagerank(star_graph(), initial={"A": 0.0})


class TestResult:
    def test_top_k_tie_break_by_id(self):
        result = PageRankResult(
            scores={"b": 0.5, "a": 0.5, "c": 0.1},
            iterations=1,
            converged=True,
            residual=0.0,
        )
        assert result.top(2) == ["a", "b"]
