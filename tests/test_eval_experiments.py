"""Integration tests for the experiment runners."""

import pytest

from repro.datagen.queries import generate_queries
from repro.eval.experiments import (
    OverlapExperiment,
    PrecisionExperiment,
    SeparabilityExperiment,
)
from repro.pipeline import Pipeline


@pytest.fixture(scope="module")
def pipeline(small_dataset):
    return Pipeline.from_dataset(small_dataset, min_context_size=3)


@pytest.fixture(scope="module")
def queries(small_dataset):
    return [w.query for w in generate_queries(small_dataset, n_queries=8, seed=2)]


class TestPrecisionExperiment:
    @pytest.fixture(scope="class")
    def experiment(self, pipeline, queries):
        return PrecisionExperiment(
            pipeline, queries, thresholds=(0.1, 0.3, 0.5)
        )

    def test_curve_shape(self, experiment):
        curve = experiment.run("text", "text")
        assert curve.function_name == "text"
        assert len(curve.average) == 3
        assert len(curve.median_) == 3
        assert len(curve.empty_queries) == 3
        for value in curve.average:
            assert 0.0 <= value <= 1.0

    def test_empty_queries_monotone_in_threshold(self, experiment):
        curve = experiment.run("text", "text")
        assert curve.empty_queries == sorted(curve.empty_queries)

    def test_answer_sets_cached(self, experiment, queries):
        first = experiment.answer_set(queries[0])
        second = experiment.answer_set(queries[0])
        assert first is second

    def test_citation_curve_runs(self, experiment):
        curve = experiment.run("citation", "text")
        assert curve.function_name == "citation"

    def test_format_table(self, experiment):
        text = experiment.run("text", "text").format_table()
        assert "precision[text]" in text
        assert "avg" in text


class TestOverlapExperiment:
    def test_series_shape(self, pipeline):
        paper_set = pipeline.experiment_paper_set("text")
        experiment = OverlapExperiment(paper_set, levels=(2, 3), k_percents=(0.1, 0.2))
        series = experiment.run(
            pipeline.prestige("text", "text"),
            pipeline.prestige("citation", "text"),
        )
        assert series.pair == ("text", "citation")
        assert len(series.values) == 2
        assert len(series.values[0]) == 2
        for row in series.values:
            for value in row:
                assert value is None or 0.0 <= value <= 1.0

    def test_self_overlap_is_one(self, pipeline):
        paper_set = pipeline.experiment_paper_set("text")
        experiment = OverlapExperiment(paper_set, levels=(2,), k_percents=(0.2,))
        series = experiment.run(
            pipeline.prestige("text", "text"),
            pipeline.prestige("text", "text"),
        )
        value = series.values[0][0]
        if value is not None:
            assert value == pytest.approx(1.0)

    def test_format_table(self, pipeline):
        paper_set = pipeline.experiment_paper_set("text")
        experiment = OverlapExperiment(paper_set, levels=(2,), k_percents=(0.1,))
        series = experiment.run(
            pipeline.prestige("text", "text"),
            pipeline.prestige("citation", "text"),
        )
        assert "overlap[text-citation]" in series.format_table()


class TestBaselineComparisonExperiment:
    def test_comparison_shape(self, pipeline, queries):
        from repro.eval.experiments import BaselineComparisonExperiment

        experiment = BaselineComparisonExperiment(pipeline, queries)
        comparison = experiment.run()
        assert comparison.queries_evaluated >= 1
        assert comparison.mean_output_reduction <= 1.0
        assert 0.0 <= comparison.keyword_mean_precision <= 1.0
        assert 0.0 <= comparison.context_mean_precision <= 1.0
        assert comparison.max_output_reduction >= comparison.mean_output_reduction

    def test_format_table(self, pipeline, queries):
        from repro.eval.experiments import BaselineComparisonExperiment

        comparison = BaselineComparisonExperiment(pipeline, queries).run()
        table = comparison.format_table()
        assert "mean output reduction" in table
        assert "accuracy improvement" in table

    def test_empty_queries_rejected(self, pipeline):
        from repro.eval.experiments import BaselineComparisonExperiment

        with pytest.raises(ValueError, match="at least one"):
            BaselineComparisonExperiment(pipeline, [])

    def test_unanswerable_workload_raises(self, pipeline):
        from repro.eval.experiments import BaselineComparisonExperiment

        experiment = BaselineComparisonExperiment(
            pipeline, ["zzzz qqqq xxxx"]
        )
        with pytest.raises(ValueError, match="keyword output"):
            experiment.run()


class TestSeparabilityExperiment:
    def test_result_shape(self, pipeline):
        paper_set = pipeline.experiment_paper_set("text")
        experiment = SeparabilityExperiment(paper_set, levels=(2, 3))
        result = experiment.run(pipeline.prestige("text", "text"))
        assert result.function_name == "text"
        assert result.sd_by_context
        for sd in result.sd_by_context.values():
            assert 0.0 <= sd <= 30.0 + 1e-9
        total = sum(percent for _, percent in result.histogram)
        assert total == pytest.approx(100.0)

    def test_per_level_histograms_present(self, pipeline):
        paper_set = pipeline.experiment_paper_set("text")
        experiment = SeparabilityExperiment(paper_set, levels=(2, 3))
        result = experiment.run(pipeline.prestige("citation", "text"))
        assert set(result.histogram_by_level) == {2, 3}

    def test_percent_below(self, pipeline):
        paper_set = pipeline.experiment_paper_set("text")
        result = SeparabilityExperiment(paper_set).run(
            pipeline.prestige("text", "text")
        )
        assert 0.0 <= result.percent_below(15.0) <= 100.0
        assert result.percent_below(1000.0) == pytest.approx(100.0)

    def test_format_table(self, pipeline):
        paper_set = pipeline.experiment_paper_set("text")
        result = SeparabilityExperiment(paper_set).run(
            pipeline.prestige("text", "text")
        )
        assert "separability[text]" in result.format_table()
