"""Unit tests for CitationGraph."""

import pytest

from repro.citations.graph import CitationGraph
from repro.corpus.corpus import Corpus
from repro.corpus.paper import Paper


@pytest.fixture
def graph():
    """A -> B -> C, A -> C, D isolated."""
    g = CitationGraph(edges=[("A", "B"), ("B", "C"), ("A", "C")])
    g.add_node("D")
    return g


class TestConstruction:
    def test_nodes_and_edges(self, graph):
        assert set(graph.nodes()) == {"A", "B", "C", "D"}
        assert set(graph.edges()) == {("A", "B"), ("B", "C"), ("A", "C")}
        assert graph.n_edges == 3

    def test_self_loop_ignored(self):
        g = CitationGraph(edges=[("A", "A")])
        assert g.n_edges == 0
        assert "A" in g

    def test_duplicate_edge_ignored(self):
        g = CitationGraph(edges=[("A", "B"), ("A", "B")])
        assert g.n_edges == 1

    def test_from_corpus(self):
        corpus = Corpus(
            [
                Paper(paper_id="P1", title="t", references=("P2", "GONE")),
                Paper(paper_id="P2", title="t"),
            ]
        )
        g = CitationGraph.from_corpus(corpus)
        assert set(g.nodes()) == {"P1", "P2"}
        assert list(g.edges()) == [("P1", "P2")]


class TestDegrees:
    def test_degrees(self, graph):
        assert graph.out_degree("A") == 2
        assert graph.in_degree("C") == 2
        assert graph.out_degree("D") == 0
        assert graph.in_degree("D") == 0

    def test_neighbors(self, graph):
        assert set(graph.out_neighbors("A")) == {"B", "C"}
        assert set(graph.in_neighbors("C")) == {"A", "B"}

    def test_unknown_node_neighbors_empty(self, graph):
        assert graph.out_neighbors("ZZ") == []


class TestDensity:
    def test_density_value(self, graph):
        # 3 edges over 4*3 ordered pairs.
        assert graph.density() == pytest.approx(3 / 12)

    def test_density_tiny_graph(self):
        assert CitationGraph(nodes=["solo"]).density() == 0.0
        assert CitationGraph().density() == 0.0


class TestSubgraph:
    def test_induced_edges_only(self, graph):
        sub = graph.subgraph({"A", "B"})
        assert set(sub.nodes()) == {"A", "B"}
        assert list(sub.edges()) == [("A", "B")]

    def test_unknown_ids_become_isolated(self, graph):
        sub = graph.subgraph({"A", "NEW"})
        assert set(sub.nodes()) == {"A", "NEW"}
        assert sub.n_edges == 0

    def test_empty_selection(self, graph):
        sub = graph.subgraph(set())
        assert len(sub) == 0


class TestPathExpansion:
    def test_zero_hops(self, graph):
        assert graph.within_path_length({"A"}, 0) == {"A"}

    def test_one_hop_undirected(self, graph):
        assert graph.within_path_length({"B"}, 1) == {"A", "B", "C"}

    def test_one_hop_directed(self, graph):
        assert graph.within_path_length({"B"}, 1, directed=True) == {"B", "C"}

    def test_two_hops(self):
        g = CitationGraph(edges=[("A", "B"), ("B", "C"), ("C", "D")])
        assert g.within_path_length({"A"}, 2) == {"A", "B", "C"}

    def test_unknown_source_ignored(self, graph):
        assert graph.within_path_length({"GHOST"}, 2) == set()

    def test_negative_hops_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.within_path_length({"A"}, -1)

    def test_isolated_node(self, graph):
        assert graph.within_path_length({"D"}, 3) == {"D"}
