"""Contexts and context paper sets.

A *context* is an ontology term plus the set of papers assigned to it.
A :class:`ContextPaperSet` is a full assignment of a corpus into contexts
-- the artefact the two pre-processing builders of section 4 produce and
every score function consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.ontology.ontology import Ontology


@dataclass(frozen=True)
class Context:
    """One context: an ontology term with its assigned papers.

    Attributes
    ----------
    term_id:
        The ontology term this context represents.
    paper_ids:
        Papers assigned to the context, in assignment order.
    training_paper_ids:
        Annotation-evidence papers used to build patterns / pick the
        representative.  Subset of the corpus, not necessarily of
        ``paper_ids``.
    inherited_from:
        If the context had no papers of its own and inherited its closest
        ancestor's paper set (section 4, pattern-based builder), the
        ancestor's term id; otherwise None.
    decay:
        RateOfDecay applied to scores of inherited papers (1.0 when not
        inherited).
    """

    term_id: str
    paper_ids: Tuple[str, ...]
    training_paper_ids: Tuple[str, ...] = ()
    inherited_from: Optional[str] = None
    decay: float = 1.0

    @property
    def size(self) -> int:
        return len(self.paper_ids)

    @cached_property
    def paper_id_set(self) -> frozenset:
        """Membership set, built once (``paper_ids`` stays the ordered view)."""
        return frozenset(self.paper_ids)

    def __contains__(self, paper_id: str) -> bool:
        return paper_id in self.paper_id_set


class ContextPaperSet:
    """An assignment of papers to ontology contexts."""

    def __init__(self, ontology: Ontology, contexts: Iterable[Context]) -> None:
        self.ontology = ontology
        self._contexts: Dict[str, Context] = {}
        for context in contexts:
            if context.term_id not in ontology:
                raise ValueError(
                    f"context {context.term_id!r} is not an ontology term"
                )
            if context.term_id in self._contexts:
                raise ValueError(f"duplicate context {context.term_id!r}")
            self._contexts[context.term_id] = context
        self._paper_to_contexts: Optional[Dict[str, Tuple[str, ...]]] = None

    # -- access ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._contexts)

    def __contains__(self, term_id: str) -> bool:
        return term_id in self._contexts

    def __iter__(self) -> Iterator[Context]:
        return iter(self._contexts.values())

    def context(self, term_id: str) -> Context:
        """The context for ``term_id`` (KeyError if absent)."""
        return self._contexts[term_id]

    def context_ids(self) -> List[str]:
        return list(self._contexts)

    def contexts_of_paper(self, paper_id: str) -> Tuple[str, ...]:
        """All context ids containing ``paper_id``."""
        if self._paper_to_contexts is None:
            reverse: Dict[str, List[str]] = {}
            for context in self._contexts.values():
                for pid in context.paper_ids:
                    reverse.setdefault(pid, []).append(context.term_id)
            self._paper_to_contexts = {
                pid: tuple(cids) for pid, cids in reverse.items()
            }
        return self._paper_to_contexts.get(paper_id, ())

    # -- filtering / statistics ---------------------------------------------------

    def filter_small(self, min_size: int) -> "ContextPaperSet":
        """Drop contexts with fewer than ``min_size`` papers.

        The paper excludes small contexts ("<= 100 papers" at PubMed scale)
        because their prestige scores are "potentially misleading".
        """
        return ContextPaperSet(
            self.ontology,
            [c for c in self._contexts.values() if c.size >= min_size],
        )

    def contexts_at_level(self, level: int) -> List[Context]:
        """Contexts whose term sits at the given ontology level."""
        return [
            c
            for c in self._contexts.values()
            if self.ontology.level(c.term_id) == level
        ]

    def descendants_in_set(self, term_id: str) -> List[str]:
        """Context ids in this set that are strict descendants of ``term_id``.

        Used by hierarchy max-propagation of prestige scores (section 3).
        """
        return [
            tid
            for tid in self.ontology.descendants(term_id)
            if tid in self._contexts
        ]

    def size_histogram(self) -> Dict[int, int]:
        """Context count by paper-set size (diagnostics)."""
        histogram: Dict[int, int] = {}
        for context in self._contexts.values():
            histogram[context.size] = histogram.get(context.size, 0) + 1
        return histogram

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        sizes = [c.size for c in self._contexts.values()]
        mean = sum(sizes) / len(sizes) if sizes else 0.0
        return f"ContextPaperSet({len(self)} contexts, mean size {mean:.1f})"
