#!/usr/bin/env python
"""Quickstart: build a demo pipeline and run a context-based search.

Generates a small seeded synthetic literature corpus (the stand-in for
the paper's PubMed testbed), builds the text-based context paper set with
text prestige scores, and runs one search end to end.

Run:  python examples/quickstart.py
"""

from repro import build_demo_pipeline


def main() -> None:
    print("Building demo pipeline (seed=7, 600 papers, 100 contexts)...")
    pipeline = build_demo_pipeline(seed=7, n_papers=600, n_terms=100)

    # Pick a query from a real context's vocabulary so it finds something;
    # with your own corpus you would just pass any free-text query.
    term_id = pipeline.ontology.terms_at_level(3)[0]
    term = pipeline.ontology.term(term_id)
    query = " ".join(term.name_words()[:2])
    print(f"Query: {query!r}  (inspired by context {term})\n")

    engine = pipeline.search_engine(function="text", paper_set_name="text")
    selections = engine.select_contexts(query, max_contexts=3)
    print("Selected contexts:")
    for selection in selections:
        selected_term = pipeline.ontology.term(selection.context_id)
        print(f"  {selected_term}  strength={selection.strength:.3f}")

    print("\nTop results (relevancy = 0.7*prestige + 0.3*matching):")
    for hit in engine.search(query, limit=8):
        paper = pipeline.corpus.paper(hit.paper_id)
        print(
            f"  {hit.relevancy:.3f}  prestige={hit.prestige:.2f} "
            f"match={hit.matching:.2f}  [{hit.paper_id}] {paper.title[:60]}"
        )


if __name__ == "__main__":
    main()
