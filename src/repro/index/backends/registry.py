"""The pluggable index-backend registry.

PR 4 made score functions structural plug-ins; this registry does the
same for the index itself.  Every backend is a :class:`SearchBackendSpec`
registered by name, and every layer that used to hard-code the concrete
``InvertedIndex`` -- the serving substrate's lazy build, the workspace
index artifact's codec, the CLI ``--index-backend`` choices -- derives
its behaviour from the registry instead.  Registering one spec therefore
surfaces a new storage engine in builds, workspaces, and the CLI with no
edits under ``repro/core/`` or ``repro/serving/``.

A spec declares:

- ``name`` -- the registry key and CLI value;
- ``build`` -- constructs a fresh :class:`~repro.index.backends.base.SearchBackend`
  from a corpus (full analysis pass);
- ``save`` / ``load`` -- the workspace codec pair: persist any backend
  object to the index artifact path, and open that artifact back into a
  ready-to-serve backend;
- ``format_tag`` -- the format tag ``save`` writes as the artifact's
  first JSON key, used to sniff which backend owns a file on disk.

Backends stamp the objects ``build``/``load`` return with a
``backend_name`` attribute so the workspace save path can round-trip an
installed index through the codec that produced it.
"""

from __future__ import annotations

import re
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Tuple

#: The backend used when none is configured -- the paper-faithful
#: in-memory inverted index.
DEFAULT_BACKEND = "memory"

#: Registry keys double as CLI values and artifact-format discriminators.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")


@dataclass(frozen=True)
class SearchBackendSpec:
    """Declaration of one index backend (see module docstring)."""

    name: str
    #: ``build(corpus, analyzer=None) -> SearchBackend``; the full
    #: analyse-and-index pass used by ``repro build`` and lazy substrate
    #: builds.
    build: Callable
    #: ``save(backend, path) -> None``; persists any backend object (not
    #: just this spec's own class) as this spec's on-disk format.
    save: Callable
    #: ``load(path, analyzer=None) -> SearchBackend``; opens the artifact
    #: ``save`` wrote.  For lazy backends this must *not* parse the full
    #: postings data.
    load: Callable
    #: The format tag ``save`` writes first in the artifact file, e.g.
    #: ``repro/inverted-index/v1`` -- sniffed by :func:`open_index`.
    format_tag: str
    description: str = ""

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValueError(
                f"index backend name {self.name!r} must match "
                f"{_NAME_RE.pattern} (it becomes a CLI value and an "
                f"artifact discriminator)"
            )
        for role in ("build", "save", "load"):
            if not callable(getattr(self, role)):
                raise ValueError(f"index backend {self.name!r}: {role} not callable")
        if not self.format_tag or "/" not in self.format_tag:
            raise ValueError(
                f"index backend {self.name!r}: format_tag {self.format_tag!r} "
                f"must look like 'repro/<name>/v<N>'"
            )


_registry: Dict[str, SearchBackendSpec] = {}
_registry_lock = threading.Lock()
#: Bumped on every mutation so derived views (memoised CLI parsers) can
#: cheaply detect staleness.
_revision: int = 0


def register(spec: SearchBackendSpec, replace: bool = False) -> SearchBackendSpec:
    """Register ``spec``; the single entry point for built-ins and plugins.

    Raises ``ValueError`` when the name or format tag is already taken
    (pass ``replace=True`` to swap a variant in deliberately).  Returns
    the spec for decorator-style chaining.
    """
    global _revision
    with _registry_lock:
        if spec.name in _registry and not replace:
            raise ValueError(
                f"index backend {spec.name!r} is already registered "
                f"(pass replace=True to override)"
            )
        for other in _registry.values():
            if other.name != spec.name and other.format_tag == spec.format_tag:
                raise ValueError(
                    f"index backend {spec.name!r} reuses format tag "
                    f"{spec.format_tag!r} already claimed by {other.name!r}; "
                    f"format tags must identify exactly one backend"
                )
        _registry[spec.name] = spec
        _revision += 1
    return spec


def unregister(name: str) -> SearchBackendSpec:
    """Remove a registration (tests and plugin teardown); returns it."""
    global _revision
    with _registry_lock:
        try:
            spec = _registry.pop(name)
        except KeyError:
            raise ValueError(f"index backend {name!r} is not registered") from None
        _revision += 1
    return spec


@contextmanager
def temporary_registration(
    spec: SearchBackendSpec, replace: bool = False
) -> Iterator[SearchBackendSpec]:
    """Register ``spec`` for the duration of a ``with`` block.

    Restores any shadowed spec on exit -- the idiom for tests and
    short-lived experimental backends.
    """
    with _registry_lock:
        shadowed = _registry.get(spec.name)
    if shadowed is not None and not replace:
        raise ValueError(
            f"index backend {spec.name!r} is already registered "
            f"(pass replace=True to shadow it temporarily)"
        )
    register(spec, replace=replace)
    try:
        yield spec
    finally:
        unregister(spec.name)
        if shadowed is not None:
            register(shadowed)


def get(name: str) -> SearchBackendSpec:
    """The spec registered under ``name``.

    Raises ``ValueError`` naming the known backends -- the one "unknown
    index backend" error every layer shares.
    """
    with _registry_lock:
        spec = _registry.get(name)
        if spec is None:
            known = ", ".join(sorted(_registry))
            raise ValueError(f"unknown index backend {name!r}; registered: {known}")
        return spec


def is_registered(name: str) -> bool:
    with _registry_lock:
        return name in _registry


def specs() -> List[SearchBackendSpec]:
    """Every registered spec, in registration order."""
    with _registry_lock:
        return list(_registry.values())


def backend_names() -> Tuple[str, ...]:
    """Registered backend names in registration order (CLI choices)."""
    with _registry_lock:
        return tuple(_registry)


def spec_for_format(format_tag: str) -> SearchBackendSpec:
    """The spec whose codec owns ``format_tag`` (ValueError if none)."""
    with _registry_lock:
        for spec in _registry.values():
            if spec.format_tag == format_tag:
                return spec
        known = ", ".join(sorted(s.format_tag for s in _registry.values()))
        raise ValueError(
            f"no index backend claims format {format_tag!r}; known formats: {known}"
        )


def registry_revision() -> int:
    """Mutation counter; derived views compare it to detect staleness."""
    with _registry_lock:
        return _revision
