"""Representative-paper selection.

Section 3.2: "a paper that best characterizes the context is selected as a
representative paper of the context".  Contexts are short phrases, far too
short for TF-IDF comparison against full papers, so the representative
stands in for the context term.

Selection rule: among the context's candidate papers (its training /
annotation-evidence papers when available, otherwise its assigned papers),
pick the paper whose whole-paper vector is closest to the candidates'
centroid -- the medoid-by-centroid-proximity rule.  Ties break on paper id
for determinism.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.core.context import Context, ContextPaperSet
from repro.core.vectors import PaperVectorStore


def select_representative(
    vectors: PaperVectorStore, candidate_ids: Sequence[str]
) -> Optional[str]:
    """The candidate closest to the candidates' centroid (None if empty).

    Candidates with empty vectors (no analysable text) lose against any
    candidate with text, but a lone text-less candidate is still returned:
    a degenerate representative beats none for downstream bookkeeping.
    """
    candidates = list(dict.fromkeys(candidate_ids))
    if not candidates:
        return None
    if len(candidates) == 1:
        return candidates[0]
    center = vectors.centroid_of(candidates)
    best_id: Optional[str] = None
    best_similarity = -1.0
    for paper_id in sorted(candidates):
        similarity = vectors.full_vector(paper_id).cosine(center)
        if similarity > best_similarity:
            best_similarity = similarity
            best_id = paper_id
    return best_id


def select_representatives(
    vectors: PaperVectorStore,
    paper_set: ContextPaperSet,
    prefer_training: bool = True,
) -> Dict[str, str]:
    """Representative paper per context id.

    Contexts with no candidates at all are omitted from the result (the
    text-based score function cannot be evaluated for them -- exactly the
    situation section 4 describes for the pattern-based context paper set,
    where text scores were only assigned to the 5,632 contexts that had a
    representative).
    """
    representatives: Dict[str, str] = {}
    for context in paper_set:
        candidates: Iterable[str] = (
            context.training_paper_ids
            if prefer_training and context.training_paper_ids
            else context.paper_ids
        )
        chosen = select_representative(vectors, list(candidates))
        if chosen is not None:
            representatives[context.term_id] = chosen
    return representatives
