"""JSONL persistence for corpora.

One JSON object per line keeps memory flat when streaming large corpora and
makes the on-disk form greppable.  Round-trips exactly through
:meth:`Paper.to_dict` / :meth:`Paper.from_dict`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.corpus.corpus import Corpus
from repro.corpus.paper import Paper

PathLike = Union[str, Path]


def write_corpus_jsonl(corpus: Corpus, path: PathLike) -> int:
    """Write ``corpus`` to ``path`` as JSONL; returns the paper count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for paper in corpus:
            handle.write(json.dumps(paper.to_dict(), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_corpus_jsonl(path: PathLike) -> Corpus:
    """Load a corpus written by :func:`write_corpus_jsonl`.

    Blank lines are skipped; malformed lines raise ``ValueError`` with the
    offending line number so a truncated file fails loudly, not silently.
    """
    corpus = Corpus()
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                data = json.loads(stripped)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: malformed JSONL record: {error}"
                ) from error
            corpus.add(Paper.from_dict(data))
    return corpus
