"""Unit tests for the lexicon."""

import random

import pytest

from repro.datagen.lexicon import FILLER_WORDS, TERM_HEADS, TERM_MODIFIERS, Lexicon
from repro.text.tokenize import tokenize


class TestLexicon:
    def test_jargon_words_distinct(self):
        lexicon = Lexicon(random.Random(1))
        words = lexicon.new_jargon_words(500)
        assert len(set(words)) == 500

    def test_jargon_never_collides_with_curated_pools(self):
        lexicon = Lexicon(random.Random(2))
        reserved = set(TERM_HEADS) | set(TERM_MODIFIERS) | set(FILLER_WORDS)
        for word in lexicon.new_jargon_words(300):
            assert word not in reserved

    def test_jargon_single_token(self):
        lexicon = Lexicon(random.Random(3))
        for word in lexicon.new_jargon_words(50):
            assert tokenize(word) == [word]

    def test_jargon_min_length(self):
        lexicon = Lexicon(random.Random(4))
        assert all(len(w) >= 5 for w in lexicon.new_jargon_words(100))

    def test_deterministic(self):
        a = Lexicon(random.Random(7)).new_jargon_words(20)
        b = Lexicon(random.Random(7)).new_jargon_words(20)
        assert a == b

    def test_different_seeds_differ(self):
        a = Lexicon(random.Random(1)).new_jargon_words(20)
        b = Lexicon(random.Random(2)).new_jargon_words(20)
        assert a != b

    def test_filler_word_from_pool(self):
        lexicon = Lexicon(random.Random(5))
        assert lexicon.filler_word() in FILLER_WORDS

    def test_author_name_format(self):
        lexicon = Lexicon(random.Random(6))
        name = lexicon.author_name()
        initial, surname = name.split(" ")
        assert initial.endswith(".")
        assert surname[0].isupper()
