"""Word supply for synthetic text.

Two sources:

- a curated pool of real biomedical/genomics vocabulary (gives the corpus
  a recognisable register and exercises the stemmer on natural morphology);
- a syllable-based pseudo-word generator (supplies an unbounded stream of
  *distinct* jargon words so every ontology term can own vocabulary no
  other term uses -- the selectivity structure pattern scoring relies on).

All draws go through a :class:`random.Random` owned by the caller, so the
whole data-generation stack is reproducible from one seed.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Set

#: Head nouns for ontology term names ("... process", "... activity").
TERM_HEADS: Sequence[str] = (
    "process",
    "activity",
    "binding",
    "transport",
    "regulation",
    "signaling",
    "biogenesis",
    "assembly",
    "localization",
    "response",
)

#: Modifier vocabulary for ontology term names.
TERM_MODIFIERS: Sequence[str] = (
    "cellular", "metabolic", "nuclear", "mitochondrial", "ribosomal",
    "cytoplasmic", "membrane", "protein", "dna", "rna", "lipid", "glucose",
    "amino", "acid", "ion", "calcium", "potassium", "oxidative", "catabolic",
    "anabolic", "transcription", "translation", "replication", "repair",
    "kinase", "phosphatase", "polymerase", "transferase", "hydrolase",
    "receptor", "channel", "vesicle", "chromatin", "histone", "telomere",
    "spindle", "microtubule", "actin", "apoptotic", "immune", "hormonal",
    "developmental", "embryonic", "neural", "synaptic", "vascular",
    "positive", "negative", "primary", "secondary", "early", "late",
)

#: General scientific filler words (beyond stopwords) for sentence glue.
FILLER_WORDS: Sequence[str] = (
    "analysis", "approach", "assay", "cells", "conditions", "data",
    "effect", "evidence", "experiments", "expression", "factors",
    "function", "interaction", "levels", "mechanism", "method", "model",
    "mutants", "observed", "pathway", "phenotype", "results", "role",
    "samples", "sequence", "significant", "structure", "studies", "study",
    "suggest", "system", "treatment", "type", "variation", "experiments",
    "measured", "increased", "decreased", "induced", "inhibited",
    "demonstrated", "identified", "characterized", "examined", "compared",
    "revealed", "indicates", "associated", "required", "essential",
    "specific", "distinct", "novel", "putative", "conserved", "homologous",
)

_ONSETS: Sequence[str] = (
    "b", "c", "d", "f", "g", "h", "k", "l", "m", "n", "p", "r", "s", "t",
    "v", "z", "br", "cr", "dr", "gl", "gr", "kl", "pr", "st", "str", "tr",
    "th", "ph", "ch",
)
_NUCLEI: Sequence[str] = ("a", "e", "i", "o", "u", "ae", "ia", "io", "ou")
_CODAS: Sequence[str] = ("", "n", "m", "r", "s", "x", "l", "st", "nd", "rt")
_JARGON_SUFFIXES: Sequence[str] = (
    "in", "ase", "ose", "ol", "ide", "ine", "ome", "yl", "an", "on",
)


class Lexicon:
    """A deterministic supply of distinct pseudo-biomedical words."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._issued: Set[str] = set(TERM_HEADS) | set(TERM_MODIFIERS) | set(
            FILLER_WORDS
        )

    def new_jargon_word(self) -> str:
        """Mint a pseudo-word never issued before by this lexicon.

        Words look like plausible biochemistry ("glaxorin", "prethiose"),
        tokenise to a single token, and never collide with the curated
        pools or earlier mints.
        """
        for _ in range(1000):
            n_syllables = self._rng.choice((2, 2, 3))
            parts = []
            for _ in range(n_syllables):
                parts.append(self._rng.choice(_ONSETS))
                parts.append(self._rng.choice(_NUCLEI))
                parts.append(self._rng.choice(_CODAS))
            word = "".join(parts) + self._rng.choice(_JARGON_SUFFIXES)
            if word not in self._issued and len(word) >= 5:
                self._issued.add(word)
                return word
        raise RuntimeError("lexicon exhausted: could not mint a fresh word")

    def new_jargon_words(self, count: int) -> List[str]:
        """Mint ``count`` distinct fresh words."""
        return [self.new_jargon_word() for _ in range(count)]

    def filler_word(self) -> str:
        """Draw one general scientific filler word."""
        return self._rng.choice(FILLER_WORDS)

    def author_name(self) -> str:
        """Mint an author name ("J. Kravone" style); collisions allowed.

        Author-name collisions exist in real bibliographies too; the
        generator draws from a pool wide enough that they stay rare.
        """
        initial = chr(ord("A") + self._rng.randrange(26))
        surname_root = self.new_jargon_word().capitalize()
        return f"{initial}. {surname_root}"
