"""Unit tests for pattern construction, joining, scoring, and matching."""

import pytest

from repro.core.patterns import (
    AnalyzedPaperCache,
    Pattern,
    PatternKind,
    PatternSet,
    PatternSetBuilder,
    find_occurrences,
    match_strength,
    score_paper_against_patterns,
)
from repro.corpus.paper import Section
from repro.index.inverted import InvertedIndex


@pytest.fixture(scope="module")
def builder(request):
    corpus = request.getfixturevalue("tiny_corpus")
    ontology = request.getfixturevalue("tiny_ontology")
    index = InvertedIndex().index_corpus(corpus)
    return PatternSetBuilder(ontology, corpus, index, min_phrase_support=2)


class TestFindOccurrences:
    def test_single_word(self):
        assert find_occurrences(["a", "b", "a"], ("a",)) == [0, 2]

    def test_phrase(self):
        tokens = ["x", "gene", "expression", "y", "gene", "expression"]
        assert find_occurrences(tokens, ("gene", "expression")) == [1, 4]

    def test_no_match(self):
        assert find_occurrences(["a", "b"], ("c",)) == []

    def test_empty_phrase(self):
        assert find_occurrences(["a"], ()) == []

    def test_phrase_longer_than_tokens(self):
        assert find_occurrences(["a"], ("a", "b")) == []

    def test_overlapping_occurrences(self):
        assert find_occurrences(["a", "a", "a"], ("a", "a")) == [0, 1]


class TestPatternConstruction:
    def test_patterns_built_for_context_with_training(self, builder):
        pattern_set = builder.build("met", ["M1", "M2", "M3"])
        assert len(pattern_set) > 0
        assert pattern_set.term_id == "met"

    def test_middles_include_context_words(self, builder):
        pattern_set = builder.build("met", ["M1", "M2", "M3"])
        # 'metabolic process' analyses to ('metabol', 'process').
        middles = pattern_set.middles()
        flat = {word for middle in middles for word in middle}
        assert "metabol" in flat
        assert "process" in flat

    def test_empty_training_set_no_patterns(self, builder):
        assert len(builder.build("met", [])) == 0

    def test_patterns_scored_positive(self, builder):
        pattern_set = builder.build("met", ["M1", "M2", "M3"])
        assert all(p.score > 0 for p in pattern_set.patterns)

    def test_regular_pattern_cap(self, request, builder):
        corpus = request.getfixturevalue("tiny_corpus")
        ontology = request.getfixturevalue("tiny_ontology")
        index = InvertedIndex().index_corpus(corpus)
        capped = PatternSetBuilder(
            ontology, corpus, index, max_regular_patterns=3, build_extended=False
        )
        pattern_set = capped.build("met", ["M1", "M2", "M3"])
        assert len(pattern_set) <= 3

    def test_simplified_builder_only_regular(self, request):
        corpus = request.getfixturevalue("tiny_corpus")
        ontology = request.getfixturevalue("tiny_ontology")
        index = InvertedIndex().index_corpus(corpus)
        simplified = PatternSetBuilder(
            ontology, corpus, index, build_extended=False
        )
        pattern_set = simplified.build("met", ["M1", "M2", "M3"])
        assert all(p.kind is PatternKind.REGULAR for p in pattern_set.patterns)

    def test_window_respected(self, builder):
        pattern_set = builder.build("met", ["M1", "M2", "M3"])
        for pattern in pattern_set.patterns:
            if pattern.kind is PatternKind.REGULAR:
                assert len(pattern.left) <= builder.window
                assert len(pattern.right) <= builder.window


class TestScoringComponents:
    def test_selectivity_rarer_word_higher(self, builder):
        # 'glucos' appears in one term name, 'process' in all four.
        builder.build("met", ["M1"])  # force df computation
        assert builder._word_selectivity("glucos") > builder._word_selectivity(
            "process"
        )

    def test_paper_coverage_fraction(self, builder):
        coverage = builder._paper_coverage(("glucos",))
        # glucose appears in M1 and M2 of 6 papers.
        assert coverage == pytest.approx(2 / 6)

    def test_paper_coverage_unknown_word_floors(self, builder):
        assert builder._paper_coverage(("neverseen",)) == pytest.approx(1 / 6)

    def test_rare_middle_outranks_common_middle(self, builder):
        """(1/PaperCoverage)^t rewards selective middles."""
        pattern_set = builder.build("glu", ["M1"])
        by_middle = {}
        for pattern in pattern_set.patterns:
            if pattern.kind is PatternKind.REGULAR:
                by_middle.setdefault(pattern.middle, []).append(pattern.score)
        glucose_scores = [
            max(scores) for middle, scores in by_middle.items() if "glucos" in middle
        ]
        process_only = [
            max(scores)
            for middle, scores in by_middle.items()
            if middle == ("process",)
        ]
        if glucose_scores and process_only:
            assert max(glucose_scores) > max(process_only)


class TestExtendedPatterns:
    def test_side_join_construction(self, builder):
        p1 = Pattern(("a",), ("b",), ("c",), PatternKind.REGULAR, 2.0)
        p2 = Pattern(("c",), ("d",), ("e",), PatternKind.REGULAR, 3.0)
        joined = builder._side_joined([p1, p2])
        assert len(joined) == 1
        (side,) = joined
        assert side.left == ("a",)
        assert side.middle == ("b", "c", "d")
        assert side.right == ("e",)
        assert side.score == pytest.approx((2.0 + 3.0) ** 2)
        assert side.kind is PatternKind.SIDE_JOINED

    def test_side_join_requires_overlap(self, builder):
        p1 = Pattern(("a",), ("b",), ("c",), PatternKind.REGULAR, 1.0)
        p2 = Pattern(("z",), ("d",), ("e",), PatternKind.REGULAR, 1.0)
        assert builder._side_joined([p1, p2]) == []

    def test_middle_join_construction(self, builder):
        # P1.middle 'b' appears in P2.left.
        p1 = Pattern(("a",), ("b",), ("c",), PatternKind.REGULAR, 4.0)
        p2 = Pattern(("b",), ("x",), ("y",), PatternKind.REGULAR, 2.0)
        joined = builder._middle_joined([p1, p2])
        assert joined
        first = joined[0]
        assert first.kind is PatternKind.MIDDLE_JOINED
        assert set(first.middle) == {"b", "x"}
        # DOO1 = 1 (all of P1.middle in P2 sides); DOO2 = 0.
        assert first.score == pytest.approx(1.0 * 4.0 + 0.0 * 2.0)

    def test_middle_join_degree_of_overlap(self, builder):
        p1 = Pattern(("x",), ("b", "q"), ("c",), PatternKind.REGULAR, 4.0)
        p2 = Pattern(("b",), ("c", "z"), ("w",), PatternKind.REGULAR, 2.0)
        joined = builder._middle_joined([p1, p2])
        first = next(p for p in joined if p.middle[0] == "b")
        # DOO1: {'b'} of P1.middle {b,q} in P2 sides {b,w} -> 1/2.
        # DOO2: {'c'} of P2.middle {c,z} in P1 sides {x,c} -> 1/2.
        assert first.score == pytest.approx(0.5 * 4.0 + 0.5 * 2.0)


class TestMatching:
    @pytest.fixture(scope="class")
    def cache(self, request):
        corpus = request.getfixturevalue("tiny_corpus")
        return AnalyzedPaperCache(corpus)

    def test_match_strength_full_surround(self):
        pattern = Pattern(("x",), ("m",), ("y",), PatternKind.REGULAR, 1.0)
        tokens = ["x", "m", "y"]
        strength = match_strength(pattern, tokens, 1, Section.TITLE)
        assert strength == pytest.approx(1.0)  # weight 1.0 * (0.5 + 0.5 * 1.0)

    def test_match_strength_no_surround_match(self):
        pattern = Pattern(("x",), ("m",), ("y",), PatternKind.REGULAR, 1.0)
        tokens = ["q", "m", "r"]
        strength = match_strength(pattern, tokens, 1, Section.TITLE)
        assert strength == pytest.approx(0.5)

    def test_match_strength_section_weighting(self):
        pattern = Pattern((), ("m",), (), PatternKind.REGULAR, 1.0)
        title = match_strength(pattern, ["m"], 0, Section.TITLE)
        body = match_strength(pattern, ["m"], 0, Section.BODY)
        assert title > body

    def test_score_paper_positive_for_topical_paper(self, builder, cache):
        pattern_set = builder.build("met", ["M1", "M2", "M3"])
        score_topical = score_paper_against_patterns(pattern_set, cache, "M1")
        score_off = score_paper_against_patterns(pattern_set, cache, "X1")
        assert score_topical > score_off
        assert score_off == 0.0

    def test_middle_only_mode(self, builder, cache):
        pattern_set = builder.build("met", ["M1", "M2", "M3"])
        full = score_paper_against_patterns(pattern_set, cache, "M1")
        simplified = score_paper_against_patterns(
            pattern_set, cache, "M1", middle_only=True
        )
        assert simplified > 0
        assert full > 0

    def test_empty_pattern_set_scores_zero(self, cache):
        empty = PatternSet(term_id="met")
        assert score_paper_against_patterns(empty, cache, "M1") == 0.0


class TestAnalyzedPaperCache:
    def test_tokens_cached(self, request):
        corpus = request.getfixturevalue("tiny_corpus")
        cache = AnalyzedPaperCache(corpus)
        a = cache.tokens("M1", Section.BODY)
        b = cache.tokens("M1", Section.BODY)
        assert a is b

    def test_all_tokens_concatenates_sections(self, request):
        corpus = request.getfixturevalue("tiny_corpus")
        cache = AnalyzedPaperCache(corpus)
        combined = cache.all_tokens("M1")
        assert len(combined) == sum(
            len(cache.tokens("M1", s))
            for s in (
                Section.TITLE,
                Section.ABSTRACT,
                Section.BODY,
                Section.INDEX_TERMS,
            )
        )
