"""Reader/writer for the OBO 1.2 subset needed to load the Gene Ontology.

Only ``[Term]`` stanzas with ``id``, ``name``, ``namespace``, ``is_a`` and
``is_obsolete`` tags are interpreted; everything else (synonyms, xrefs,
other relationship types) is skipped.  That is exactly the structural
information the paper's pipeline consumes, and it means a real
``go-basic.obo`` download loads directly into :class:`Ontology`.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, Iterable, List, TextIO, Union

from repro.ontology.ontology import Ontology
from repro.ontology.term import Term

PathOrFile = Union[str, Path, TextIO]


def read_obo(source: PathOrFile, skip_obsolete: bool = True) -> Ontology:
    """Parse an OBO file (path, or open text handle) into an :class:`Ontology`.

    ``is_a`` references to terms missing from the file (e.g. obsolete
    parents that were skipped) are dropped rather than failing, so partial
    extracts load cleanly.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            stanzas = _parse_stanzas(handle)
    else:
        stanzas = _parse_stanzas(source)

    raw_terms: List[Dict[str, object]] = []
    known_ids = set()
    for stanza in stanzas:
        term_id = stanza.get("id")
        if not term_id:
            continue
        if skip_obsolete and stanza.get("is_obsolete") == "true":
            continue
        known_ids.add(term_id)
        raw_terms.append(
            {
                "id": term_id,
                "name": stanza.get("name", term_id),
                "namespace": stanza.get("namespace", "unknown"),
                "is_a": stanza.get("is_a_list", []),
            }
        )

    terms = [
        Term(
            term_id=str(raw["id"]),
            name=str(raw["name"]),
            namespace=str(raw["namespace"]),
            parent_ids=tuple(
                parent for parent in raw["is_a"] if parent in known_ids  # type: ignore[union-attr]
            ),
        )
        for raw in raw_terms
    ]
    return Ontology(terms)


def _parse_stanzas(handle: TextIO) -> List[Dict[str, object]]:
    """Split an OBO stream into ``[Term]`` stanza dictionaries."""
    stanzas: List[Dict[str, object]] = []
    current: "Dict[str, object] | None" = None
    for raw_line in handle:
        line = raw_line.strip()
        if not line or line.startswith("!"):
            continue
        if line.startswith("["):
            if line == "[Term]":
                current = {"is_a_list": []}
                stanzas.append(current)
            else:
                current = None  # [Typedef] etc. -- ignored
            continue
        if current is None or ":" not in line:
            continue
        tag, _, value = line.partition(":")
        tag = tag.strip()
        value = value.split("!", 1)[0].strip()  # drop trailing comments
        if tag == "is_a":
            # value looks like "GO:0008150 ! biological_process"
            current["is_a_list"].append(value.split()[0])  # type: ignore[union-attr]
        elif tag in ("id", "name", "namespace", "is_obsolete"):
            current[tag] = value
    return stanzas


def write_obo(ontology: Ontology, destination: PathOrFile) -> None:
    """Serialise ``ontology`` as minimal OBO (round-trips with :func:`read_obo`)."""
    buffer = io.StringIO()
    buffer.write("format-version: 1.2\n")
    buffer.write("ontology: repro-synthetic\n")
    for term in ontology:
        buffer.write("\n[Term]\n")
        buffer.write(f"id: {term.term_id}\n")
        buffer.write(f"name: {term.name}\n")
        buffer.write(f"namespace: {term.namespace}\n")
        for parent in term.parent_ids:
            buffer.write(f"is_a: {parent}\n")
    text = buffer.getvalue()
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        destination.write(text)
