"""Unit tests for set similarity measures."""

import pytest

from repro.text.similarity import (
    cosine_similarity,
    dice_coefficient,
    jaccard_similarity,
    overlap_coefficient,
)
from repro.text.vectorize import SparseVector


class TestJaccard:
    def test_known_value(self):
        assert jaccard_similarity({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_identical(self):
        assert jaccard_similarity({"a"}, {"a"}) == 1.0

    def test_disjoint(self):
        assert jaccard_similarity({"a"}, {"b"}) == 0.0

    def test_both_empty(self):
        assert jaccard_similarity(set(), set()) == 0.0

    def test_accepts_lists(self):
        assert jaccard_similarity(["a", "a", "b"], ["b"]) == pytest.approx(0.5)


class TestDice:
    def test_known_value(self):
        assert dice_coefficient({"a", "b"}, {"b", "c"}) == pytest.approx(0.5)

    def test_both_empty(self):
        assert dice_coefficient(set(), set()) == 0.0

    def test_identical(self):
        assert dice_coefficient({"a", "b"}, {"a", "b"}) == 1.0


class TestOverlapCoefficient:
    def test_subset_scores_one(self):
        assert overlap_coefficient({"a"}, {"a", "b", "c"}) == 1.0

    def test_one_empty(self):
        assert overlap_coefficient(set(), {"a"}) == 0.0

    def test_partial(self):
        assert overlap_coefficient({"a", "b"}, {"b", "c"}) == pytest.approx(0.5)


class TestCosineSimilarityWrapper:
    def test_delegates_to_sparse_vector(self):
        a = SparseVector({0: 1.0})
        b = SparseVector({0: 2.0})
        assert cosine_similarity(a, b) == pytest.approx(1.0)
