"""Unit tests for sparse vectors, TF-IDF, and vocabulary."""

import math

import pytest

from repro.text.vectorize import SparseVector, TfidfModel, centroid
from repro.text.vocabulary import Vocabulary


class TestVocabulary:
    def test_add_term_assigns_dense_ids(self):
        vocab = Vocabulary()
        assert vocab.add_term("alpha") == 0
        assert vocab.add_term("beta") == 1
        assert vocab.add_term("alpha") == 0

    def test_add_document_counts_df_once_per_doc(self):
        vocab = Vocabulary()
        vocab.add_document(["a", "a", "b"])
        vocab.add_document(["a", "c"])
        assert vocab.doc_freq("a") == 2
        assert vocab.doc_freq("b") == 1
        assert vocab.doc_freq("c") == 1
        assert vocab.n_documents == 2

    def test_unknown_term(self):
        vocab = Vocabulary()
        assert vocab.id_of("nope") is None
        assert vocab.doc_freq("nope") == 0

    def test_round_trip_term_of(self):
        vocab = Vocabulary()
        tid = vocab.add_term("gene")
        assert vocab.term_of(tid) == "gene"

    def test_contains_len_iter(self):
        vocab = Vocabulary()
        vocab.add_document(["x", "y"])
        assert "x" in vocab and "z" not in vocab
        assert len(vocab) == 2
        assert sorted(vocab) == ["x", "y"]


class TestSparseVector:
    def test_norm(self):
        v = SparseVector({0: 3.0, 1: 4.0})
        assert v.norm == pytest.approx(5.0)

    def test_empty_norm(self):
        assert SparseVector().norm == 0.0

    def test_dot_product(self):
        a = SparseVector({0: 1.0, 1: 2.0})
        b = SparseVector({1: 3.0, 2: 5.0})
        assert a.dot(b) == pytest.approx(6.0)

    def test_dot_disjoint(self):
        assert SparseVector({0: 1.0}).dot(SparseVector({1: 1.0})) == 0.0

    def test_cosine_identical(self):
        v = SparseVector({0: 2.0, 3: 1.0})
        assert v.cosine(v) == pytest.approx(1.0)

    def test_cosine_orthogonal(self):
        assert SparseVector({0: 1.0}).cosine(SparseVector({1: 1.0})) == 0.0

    def test_cosine_empty_is_zero(self):
        assert SparseVector().cosine(SparseVector({0: 1.0})) == 0.0

    def test_cosine_bounded(self):
        a = SparseVector({0: 1.0, 1: 1e-9})
        b = SparseVector({0: 1.0, 1: 2e-9})
        assert 0.0 <= a.cosine(b) <= 1.0

    def test_normalized(self):
        v = SparseVector({0: 3.0, 1: 4.0}).normalized()
        assert v.norm == pytest.approx(1.0)
        assert v.weights[0] == pytest.approx(0.6)

    def test_normalized_empty(self):
        assert len(SparseVector().normalized()) == 0

    def test_add(self):
        total = SparseVector({0: 1.0}).add(SparseVector({0: 2.0, 1: 1.0}))
        assert total.weights == {0: 3.0, 1: 1.0}

    def test_scaled(self):
        assert SparseVector({0: 2.0}).scaled(0.5).weights == {0: 1.0}

    def test_top_terms(self):
        v = SparseVector({0: 1.0, 1: 5.0, 2: 3.0})
        assert v.top_terms(2) == [(1, 5.0), (2, 3.0)]

    def test_bool(self):
        assert not SparseVector()
        assert SparseVector({0: 1.0})


class TestCentroid:
    def test_mean_of_vectors(self):
        c = centroid([SparseVector({0: 2.0}), SparseVector({0: 0.0, 1: 4.0})])
        assert c.weights[0] == pytest.approx(1.0)
        assert c.weights[1] == pytest.approx(2.0)

    def test_empty_input(self):
        assert len(centroid([])) == 0


class TestTfidfModel:
    @pytest.fixture
    def model(self):
        docs = [
            ["gene", "expression", "gene"],
            ["gene", "regulation"],
            ["protein", "binding"],
        ]
        return TfidfModel().fit(docs)

    def test_idf_ordering(self, model):
        # 'gene' appears in 2 docs, 'protein' in 1: rarer term has higher idf.
        gene_id = model.vocabulary.id_of("gene")
        protein_id = model.vocabulary.id_of("protein")
        assert model.idf(protein_id) > model.idf(gene_id)

    def test_vectorize_normalises_by_default(self, model):
        v = model.vectorize(["gene", "expression"])
        assert v.norm == pytest.approx(1.0)

    def test_vectorize_unknown_terms_ignored(self, model):
        assert len(model.vectorize(["zebra"])) == 0

    def test_vectorize_unnormalised(self, model):
        v = model.vectorize(["protein"], normalize=False)
        protein_id = model.vocabulary.id_of("protein")
        assert v.weights[protein_id] == pytest.approx(model.idf(protein_id))

    def test_sublinear_tf(self, model):
        v1 = model.vectorize(["gene"], normalize=False)
        v3 = model.vectorize(["gene", "gene", "gene"], normalize=False)
        gene_id = model.vocabulary.id_of("gene")
        expected_ratio = 1.0 + math.log(3)
        assert v3.weights[gene_id] / v1.weights[gene_id] == pytest.approx(
            expected_ratio
        )

    def test_raw_tf_mode(self):
        model = TfidfModel(sublinear_tf=False).fit([["a"], ["a", "b"]])
        v = model.vectorize(["a", "a"], normalize=False)
        a_id = model.vocabulary.id_of("a")
        assert v.weights[a_id] == pytest.approx(2.0 * model.idf(a_id))

    def test_unsmoothed_idf_zero_for_unknown(self):
        model = TfidfModel(smooth_idf=False).fit([["a"]])
        vocab_id = model.vocabulary.add_term("never-in-doc")
        assert model.idf(vocab_id) == 0.0

    def test_identical_docs_cosine_one(self, model):
        a = model.vectorize(["gene", "expression"])
        b = model.vectorize(["gene", "expression"])
        assert a.cosine(b) == pytest.approx(1.0)
