"""The artifact-graph workspace: a persistent build layer under the Pipeline.

The paper's paradigm is build-once/query-many: contexts, representatives,
patterns, and prestige scores are "pre-computed before search time".  This
package makes that explicit.  Every expensive pipeline substrate is an
:class:`~repro.workspace.artifact.Artifact` node in a small dependency
graph with a typed save/load codec and a content fingerprint;
:class:`~repro.workspace.builder.WorkspaceBuilder` topologically builds
only stale nodes into an on-disk *workspace* directory, and
:func:`~repro.workspace.builder.open_workspace` hydrates a pipeline from
that directory with zero rebuilds.

See ``docs/architecture.md`` for the graph, directory layout, and
manifest schema.
"""

from repro.workspace.artifact import (
    ARTIFACTS,
    Artifact,
    artifact_names,
    topological_order,
)
from repro.workspace.builder import (
    ArtifactStatus,
    BuildReport,
    StaleWorkspaceError,
    WorkspaceBuilder,
    ingest_delta,
    open_workspace,
    workspace_status,
)
from repro.workspace.fingerprint import InputDigests, artifact_fingerprints
from repro.workspace.manifest import (
    MANIFEST_FILE,
    MANIFEST_FORMAT,
    ManifestEntry,
    manifest_fingerprint,
    read_generation_chain,
    read_manifest,
    validate_manifest_payload,
    write_manifest,
)

__all__ = [
    "ARTIFACTS",
    "Artifact",
    "ArtifactStatus",
    "BuildReport",
    "InputDigests",
    "MANIFEST_FILE",
    "MANIFEST_FORMAT",
    "ManifestEntry",
    "StaleWorkspaceError",
    "WorkspaceBuilder",
    "artifact_fingerprints",
    "artifact_names",
    "ingest_delta",
    "manifest_fingerprint",
    "open_workspace",
    "read_generation_chain",
    "read_manifest",
    "topological_order",
    "validate_manifest_payload",
    "workspace_status",
    "write_manifest",
]
