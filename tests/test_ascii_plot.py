"""Unit tests for ASCII chart rendering."""

import pytest

from repro.eval.ascii_plot import ascii_bar_chart, ascii_histogram, ascii_line_chart


class TestBarChart:
    def test_proportional_bars(self):
        chart = ascii_bar_chart({"a": 1.0, "b": 0.5}, width=4)
        lines = chart.splitlines()
        assert lines[0].count("█") == 4
        assert lines[1].count("█") == 2

    def test_values_printed(self):
        chart = ascii_bar_chart({"x": 0.25}, width=8)
        assert "0.250" in chart

    def test_labels_aligned(self):
        chart = ascii_bar_chart({"a": 1.0, "longer": 1.0}, width=3)
        lines = chart.splitlines()
        assert lines[0].index("█") == lines[1].index("█")

    def test_empty(self):
        assert ascii_bar_chart({}) == "(no data)"

    def test_zero_values_no_crash(self):
        chart = ascii_bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in chart

    def test_explicit_max(self):
        chart = ascii_bar_chart({"a": 0.5}, width=4, max_value=1.0)
        assert chart.count("█") == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_bar_chart({"a": 1.0}, width=0)


class TestLineChart:
    def test_renders_markers_and_legend(self):
        chart = ascii_line_chart(
            {"text": [0.1, 0.5, 0.9], "citation": [0.9, 0.5, 0.1]},
            x_labels=["t1", "t2", "t3"],
        )
        assert "o=text" in chart
        assert "x=citation" in chart
        assert "o" in chart and "x" in chart

    @staticmethod
    def grid_lines(chart):
        """Chart rows above the x axis (excludes labels and legend)."""
        lines = chart.splitlines()
        axis_index = next(i for i, line in enumerate(lines) if "+--" in line)
        return lines[:axis_index]

    def test_higher_value_higher_row(self):
        chart = ascii_line_chart({"s": [0.0, 1.0]}, x_labels=["lo", "hi"])
        rows_with_marker = [
            i for i, line in enumerate(self.grid_lines(chart)) if "o" in line
        ]
        # The 1.0 point sits on an earlier (higher) line than the 0.0 point.
        assert len(rows_with_marker) == 2
        assert rows_with_marker[0] < rows_with_marker[1]

    def test_none_leaves_gap(self):
        chart = ascii_line_chart({"s": [0.5, None, 0.5]}, x_labels=["a", "b", "c"])
        grid = "\n".join(self.grid_lines(chart))
        assert grid.count("o") == 2

    def test_overlap_marker(self):
        chart = ascii_line_chart(
            {"one": [0.5], "two": [0.5]}, x_labels=["x"]
        )
        assert "&" in chart

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="points"):
            ascii_line_chart({"s": [1.0]}, x_labels=["a", "b"])

    def test_empty(self):
        assert ascii_line_chart({}, x_labels=[]) == "(no data)"
        assert ascii_line_chart({"s": [None]}, x_labels=["a"]) == "(no data)"

    def test_height_validation(self):
        with pytest.raises(ValueError):
            ascii_line_chart({"s": [1.0]}, x_labels=["a"], height=1)

    def test_x_labels_present(self):
        chart = ascii_line_chart({"s": [0.3, 0.6]}, x_labels=["alpha", "beta"])
        assert "alpha" in chart and "beta" in chart


class TestHistogram:
    def test_renders_percentages(self):
        chart = ascii_histogram([(0, 60.0), (5, 40.0)], width=10)
        assert "60.0%" in chart
        assert "40.0%" in chart

    def test_bin_edges_as_labels(self):
        chart = ascii_histogram([(0, 50.0), (15, 50.0)])
        assert "0" in chart and "15" in chart
